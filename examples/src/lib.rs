//! Shared helpers for the gmreg examples (the runnable binaries live in
//! `src/bin/`). Run them with e.g. `cargo run -p gmreg-examples --release
//! --bin quickstart`.

//! Quickstart: the GM regularization tool in four steps.
//!
//! 1. create a [`GmRegTool`] for a weight vector;
//! 2. ask it for responsibilities and the regularization gradient;
//! 3. run EM steps so the mixture adapts to the weights;
//! 4. plug the schedule-driven [`GmRegularizer`] into a training loop via
//!    the [`Regularizer`] trait.
//!
//! ```text
//! cargo run -p gmreg-examples --release --bin quickstart
//! ```

use gmreg_core::gm::{GmConfig, GmRegTool};
use gmreg_core::{Regularizer, StepCtx};
use gmreg_tensor::SampleExt;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A toy weight vector with two populations: most dimensions are small
    // "noise" weights, a few are large "informative" ones — the structure
    // the paper observes in real models.
    let mut rng = StdRng::seed_from_u64(7);
    let w: Vec<f32> = (0..400)
        .map(|i| {
            let std = if i % 8 == 0 { 0.9 } else { 0.05 };
            rng.normal(0.0, std) as f32
        })
        .collect();

    // Step 1: a tool for 400 weight dimensions initialized with std 0.1.
    // All hyper-parameters follow the paper's recipe (K=4, b=gamma*M,
    // alpha=M^0.5, linear initialization).
    let mut tool =
        GmRegTool::new(w.len(), 0.1, GmConfig::default()).expect("default configuration is valid");
    println!("initial mixture: pi={:?}", tool.mixture().pi());
    println!("                 lambda={:?}", tool.mixture().lambda());

    // Step 2: responsibilities (Eq. 9) and the regularization gradient
    // g_reg (Eq. 10) under the current mixture.
    let resp = tool.cal_responsibility(&w).expect("dims match");
    println!(
        "\nresponsibility of the tightest component for w[0]={:+.3}: {:.3}",
        w[0],
        resp[0].last().expect("K components")
    );
    let greg = tool.calc_reg_grad(&w).expect("dims match");
    println!("g_reg[0] = {:+.5} (shrinks w[0] toward zero)", greg[0]);

    // Step 3: adapt the mixture with EM until it fits the two populations.
    for _ in 0..100 {
        tool.upt_gm_param(&w).expect("EM step");
    }
    let learned = tool.learned_mixture().expect("valid mixture");
    println!("\nlearned mixture after 100 EM steps (merged components):");
    println!("  pi     = {:?}", learned.pi());
    println!("  lambda = {:?}", learned.lambda());
    println!(
        "  -> {} effective components: a tight one for the noise weights, a wide one for the informative weights",
        learned.k()
    );

    // Step 4: the same machinery as a drop-in `Regularizer` for a training
    // loop — one call per SGD step; the lazy schedule inside decides when
    // to recompute what.
    let mut reg = tool.into_regularizer();
    let mut grad = vec![0.0f32; w.len()];
    for it in 0..5u64 {
        grad.fill(0.0);
        // (a real loop would first fill `grad` with the data-misfit term)
        reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, 0));
    }
    println!(
        "\ndrove {} regularizer steps ({} E-steps, {} M-steps, penalty {:.1})",
        reg.grad_call_count(),
        reg.e_step_count(),
        reg.m_step_count(),
        reg.penalty(&w),
    );
}

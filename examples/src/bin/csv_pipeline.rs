//! End-to-end pipeline on CSV data: import a (real or exported) CSV file,
//! preprocess it, train GM-regularized logistic regression, report
//! clinical-style metrics, and checkpoint the learned mixture.
//!
//! Point `GMREG_CSV` at your own file (label in the first column by
//! default); without it, the example exports the synthetic hepatitis
//! dataset to CSV first and round-trips through the same code path.
//!
//! ```text
//! cargo run -p gmreg-examples --release --bin csv_pipeline
//! GMREG_CSV=path/to/uci.csv cargo run -p gmreg-examples --release --bin csv_pipeline
//! ```

use gmreg_core::gm::{GmConfig, GmRegularizer};
use gmreg_data::csv::{parse_csv, to_csv, CsvOptions};
use gmreg_data::metrics::{roc_auc, ConfusionMatrix};
use gmreg_data::stratified_split;
use gmreg_data::synthetic::small_dataset;
use gmreg_linear::{LogisticRegression, LrConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Obtain CSV text: the user's file, or a synthetic export.
    let (text, options) = match std::env::var("GMREG_CSV") {
        Ok(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            println!("loaded {path} ({} bytes)", text.len());
            (text, CsvOptions::default())
        }
        Err(_) => {
            let raw = small_dataset("hepatitis")
                .expect("dataset in suite")
                .generate()
                .expect("generator spec is valid");
            let text = to_csv(&raw);
            println!(
                "no GMREG_CSV set — exported the synthetic hepatitis dataset ({} rows) to CSV and re-importing it",
                raw.len()
            );
            let options = CsvOptions {
                label_column: raw.columns().len(), // exported label is last
                missing_markers: vec!["?".into()],
                ..CsvOptions::default()
            };
            (text, options)
        }
    };

    // 2. Parse with schema inference, then run the paper's preprocessing:
    //    one-hot (missing gets its own class), mean imputation, z-scaling.
    let raw = parse_csv(&text, &options).expect("CSV parses");
    let ds = raw.encode().expect("preprocessing");
    println!(
        "parsed {} samples, {} raw columns -> {} encoded features\n",
        ds.len(),
        raw.columns().len(),
        ds.n_features()
    );

    // 3. Train GM-regularized logistic regression on an 80/20 split.
    let mut rng = StdRng::seed_from_u64(42);
    let split = stratified_split(&ds, 0.2, &mut rng).expect("dataset is large enough");
    let cfg = LrConfig {
        epochs: 40,
        ..LrConfig::default()
    };
    let m = ds.n_features();
    let mut lr = LogisticRegression::new(m, cfg).expect("config is valid");
    lr.set_regularizer(Some(Box::new(
        GmRegularizer::new(m, cfg.init_std, GmConfig::default()).expect("valid config"),
    )));
    lr.fit(&split.train).expect("training");

    // 4. Clinical-style evaluation.
    let mut predicted = Vec::with_capacity(split.test.len());
    let mut scores = Vec::with_capacity(split.test.len());
    for i in 0..split.test.len() {
        let x = split.test.sample(i).expect("row");
        predicted.push(lr.predict(x).expect("prediction"));
        scores.push(lr.predict_proba(x).expect("probability"));
    }
    let cm = ConfusionMatrix::new(split.test.y(), &predicted, 2).expect("binary task");
    println!("test accuracy : {:.3}", cm.accuracy());
    println!("macro F1      : {:.3}", cm.macro_f1());
    if let (Some(p), Some(r)) = (cm.precision(1), cm.recall(1)) {
        println!("class-1 P / R : {p:.3} / {r:.3}");
    }
    match roc_auc(split.test.y(), &scores) {
        Ok(auc) => println!("ROC-AUC       : {auc:.3}"),
        Err(e) => println!("ROC-AUC       : n/a ({e})"),
    }

    // 5. Checkpoint the learned mixture alongside the model.
    let gm = lr
        .regularizer()
        .and_then(|r| r.as_gm())
        .expect("GM regularizer attached above");
    let snapshot = gm.snapshot();
    let json = serde_json::to_string_pretty(&snapshot).expect("serializes");
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/csv_pipeline_gm.json", &json).expect("writes checkpoint");
    let learned = gm.learned_mixture().expect("valid mixture");
    println!(
        "\nlearned prior: pi {:?}, lambda {:?} ({} effective components)",
        learned.pi(),
        learned.lambda(),
        learned.k()
    );
    println!("GM checkpoint written to results/csv_pipeline_gm.json");
}

//! Per-layer adaptive regularization on a convolutional network: trains
//! the paper's Alex-CIFAR-10 architecture (at reduced scale) on the
//! synthetic image dataset, with and without GM regularization, and prints
//! the per-layer mixtures — a miniature of the paper's Tables IV and VI.
//!
//! ```text
//! cargo run -p gmreg-examples --release --bin image_classification
//! ```

use gmreg_core::gm::{GmConfig, GmRegularizer, LazySchedule};
use gmreg_core::Regularizer;
use gmreg_data::synthetic::ImageSpec;
use gmreg_nn::models::alex_cifar10;
use gmreg_nn::{Network, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZE: usize = 16;
const EPOCHS: usize = 30;
const BATCH: usize = 25;

fn train(with_gm: bool, seed: u64) -> (f64, Vec<String>) {
    let spec = ImageSpec {
        n_classes: 10,
        n_train: 150,
        n_test: 250,
        channels: 3,
        height: SIZE,
        width: SIZE,
        noise_std: 1.2,
        max_shift: 2,
        seed,
    };
    let (train, test) = spec.generate().expect("spec is valid");

    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut net = Network::new(alex_cifar10(3, SIZE, 10, &mut rng).expect("architecture builds"));
    if with_gm {
        // One independently learned GM per layer's weights — the paper's
        // per-layer setup, with the same hyper-parameter recipe for all.
        net.attach_regularizers(|name, dims, init_std| {
            if name.ends_with("/weight") {
                let cfg = GmConfig {
                    lazy: LazySchedule::paper_default(),
                    // Strength cap suited to this run's N and lr; see the
                    // repro_table6 binary for the tuning grid.
                    gamma: 0.3,
                    ..GmConfig::default()
                };
                Some(Box::new(
                    GmRegularizer::new(dims, init_std.max(1e-3), cfg).expect("valid config"),
                ) as Box<dyn Regularizer>)
            } else {
                None
            }
        });
        net.set_reg_scale(1.0 / train.len() as f32);
    }

    let mut opt = Sgd::new(0.02, 0.9).expect("valid settings");
    for epoch in 0..EPOCHS {
        let stats = net
            .train_epoch(&train, BATCH, &mut opt, None, &mut rng)
            .expect("epoch");
        if epoch % 10 == 9 {
            println!(
                "  epoch {:>2}: train loss {:.3}, train acc {:.3}",
                epoch + 1,
                stats.loss,
                stats.accuracy
            );
        }
    }
    let acc = net.evaluate(&test, BATCH).expect("evaluation");
    let mixtures = net
        .learned_mixtures()
        .into_iter()
        .map(|m| {
            format!(
                "  {:14} pi {:?} lambda {:?}",
                m.name,
                m.pi.iter()
                    .map(|v| (v * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>(),
                m.lambda
                    .iter()
                    .map(|v| (v * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            )
        })
        .collect();
    (acc, mixtures)
}

fn main() {
    println!("training Alex-CIFAR-10 (16x16, 500 images) WITHOUT regularization:");
    let (acc_plain, _) = train(false, 5);
    println!("test accuracy: {acc_plain:.3}\n");

    println!("training the same model WITH per-layer GM regularization:");
    let (acc_gm, mixtures) = train(true, 5);
    println!("test accuracy: {acc_gm:.3}\n");

    println!("learned per-layer mixtures (cf. Table IV):");
    for m in mixtures {
        println!("{m}");
    }
    println!(
        "\nGM {} the unregularized model by {:+.3} accuracy.",
        if acc_gm >= acc_plain {
            "improves on"
        } else {
            "trails"
        },
        acc_gm - acc_plain
    );
}

//! Tuning the lazy-update schedule (Algorithm 2): shows how the `E`
//! (warm-up epochs), `Im` (E-step interval) and `Ig` (M-step interval)
//! knobs trade wall-clock time against nothing — accuracy stays flat —
//! on a dense workload where the EM sweep is the dominant per-step cost.
//!
//! ```text
//! cargo run -p gmreg-examples --release --bin lazy_update_tuning
//! ```

use gmreg_core::gm::{GmConfig, GmRegularizer, LazySchedule};
use gmreg_core::{Regularizer, StepCtx};
use gmreg_tensor::SampleExt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const M: usize = 89_440; // Alex-CIFAR-10's weight dimensionality
const EPOCHS: usize = 6;
const BATCHES_PER_EPOCH: usize = 20;

fn time_schedule(lazy: LazySchedule) -> (f64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut w: Vec<f32> = (0..M).map(|_| rng.normal(0.0, 0.1) as f32).collect();
    let mut grad = vec![0.0f32; M];
    let mut reg = GmRegularizer::new(
        M,
        0.1,
        GmConfig {
            lazy,
            ..GmConfig::default()
        },
    )
    .expect("valid config");

    let start = Instant::now();
    let mut it = 0u64;
    for epoch in 0..EPOCHS as u64 {
        for _ in 0..BATCHES_PER_EPOCH {
            grad.fill(0.0);
            reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, epoch));
            // a stand-in SGD step so the weights (and thus the E-step's
            // inputs) keep moving
            for (wv, g) in w.iter_mut().zip(&grad) {
                *wv -= 1e-4 * g;
            }
            it += 1;
        }
    }
    (
        start.elapsed().as_secs_f64(),
        reg.e_step_count(),
        reg.m_step_count(),
    )
}

fn main() {
    println!("workload: M = {M} weights, {EPOCHS} epochs x {BATCHES_PER_EPOCH} batches\n");
    println!(
        "{:<28}{:>9}{:>10}{:>10}",
        "schedule", "seconds", "E-steps", "M-steps"
    );
    let schedules = [
        ("eager (Algorithm 1)", LazySchedule::eager()),
        (
            "E=2, Im=Ig=10",
            LazySchedule::new(2, 10, 10).expect("valid"),
        ),
        ("E=2, Im=Ig=50 (paper)", LazySchedule::paper_default()),
        (
            "E=2, Im=50, Ig=200",
            LazySchedule::new(2, 50, 200).expect("valid"),
        ),
        (
            "E=1, Im=Ig=50",
            LazySchedule::new(1, 50, 50).expect("valid"),
        ),
    ];
    let mut eager_time = None;
    for (name, lazy) in schedules {
        let (secs, e_steps, m_steps) = time_schedule(lazy);
        let speedup = eager_time
            .map(|t: f64| format!("  ({:.1}x faster)", t / secs))
            .unwrap_or_default();
        if eager_time.is_none() {
            eager_time = Some(secs);
        }
        println!("{name:<28}{secs:>9.2}{e_steps:>10}{m_steps:>10}{speedup}");
    }
    println!(
        "\nGuidance (Section V-F): Im = Ig = 50 with a small E recovers ~4x of the\n\
         eager cost; raising Ig beyond Im shaves a further few percent; accuracy\n\
         is unaffected because g_reg and the mixture drift slowly after warm-up."
    );
}

//! The paper's motivating scenario: predicting 30-day hospital readmission
//! (the Hosp-FA dataset) with logistic regression, comparing all five
//! regularization methods under cross-validated hyper-parameters, then
//! inspecting the Gaussian components GM learned for the predictive vs.
//! noisy features.
//!
//! ```text
//! cargo run -p gmreg-examples --release --bin healthcare_readmission
//! ```

use gmreg_core::gm::{GmConfig, GmRegularizer};
use gmreg_data::stratified_split;
use gmreg_data::synthetic::small_dataset;
use gmreg_linear::{evaluate_method, LogisticRegression, LrConfig, Method};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The synthetic Hosp-FA substitute: 1755 patients x 375 features, a
    // minority of strongly predictive features among mostly-noise ones
    // (the structure the paper describes for the real hospital data).
    let spec = small_dataset("Hosp-FA").expect("dataset in suite");
    let ds = spec
        .generate()
        .expect("generator spec is valid")
        .encode()
        .expect("encoding synthetic data cannot fail");
    println!(
        "Hosp-FA substitute: {} patients, {} encoded features\n",
        ds.len(),
        ds.n_features()
    );

    // The paper's protocol, shortened: 3 stratified subsamples, 3-fold CV.
    let cfg = LrConfig {
        epochs: 30,
        ..LrConfig::default()
    };
    println!("method comparison (3 subsamples, CV-tuned):");
    for method in Method::TABLE_VII {
        let res = evaluate_method(&ds, method, 3, 3, cfg, 99).expect("protocol run");
        println!("  {:16} {:.3} ± {:.3}", method.name(), res.mean, res.stderr);
    }

    // Train one GM-regularized model and inspect what it learned.
    let mut rng = StdRng::seed_from_u64(1);
    let split = stratified_split(&ds, 0.2, &mut rng).expect("dataset is large enough");
    let m = ds.n_features();
    let mut lr = LogisticRegression::new(m, cfg).expect("config is valid");
    lr.set_regularizer(Some(Box::new(
        GmRegularizer::new(m, cfg.init_std, GmConfig::default()).expect("valid config"),
    )));
    lr.fit(&split.train).expect("training");
    let acc = lr.accuracy(&split.test).expect("evaluation");

    let gm = lr
        .regularizer()
        .and_then(|r| r.as_gm())
        .expect("GM regularizer attached above");
    let learned = gm.learned_mixture().expect("valid mixture");
    println!("\nGM-regularized model: test accuracy {acc:.3}");
    println!("learned weight prior ({} components):", learned.k());
    for (p, l) in learned.pi().iter().zip(learned.lambda()) {
        println!(
            "  pi {:.3}  lambda {:>9.3}  (std {:.4}) — {}",
            p,
            l,
            (1.0 / l).sqrt(),
            if *l > learned.variance().recip() {
                "tight: noisy features, strongly regularized"
            } else {
                "wide: predictive features, weakly regularized"
            }
        );
    }
}

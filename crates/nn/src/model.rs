//! The training driver: a network + loss with epoch loops, evaluation, and
//! per-layer regularizer attachment.

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::loss::{accuracy, SoftmaxCrossEntropy};
use crate::optimizer::Sgd;
use crate::param::{Param, VisitParams};
use crate::tele;
use gmreg_core::Regularizer;
use gmreg_data::{Augment, Batcher, Dataset};
use gmreg_tensor::Tensor;
use rand::Rng;

/// A classifier: any [`Layer`] producing logits, trained with softmax
/// cross-entropy.
pub struct Network {
    net: Box<dyn Layer>,
    loss: SoftmaxCrossEntropy,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean data-misfit loss over the epoch's batches.
    pub loss: f64,
    /// Training accuracy over the epoch's batches.
    pub accuracy: f64,
    /// Number of mini-batches processed (`B` of Algorithm 2).
    pub batches: usize,
}

/// A snapshot of one parameter group's learned GM, for Tables IV/V.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerMixture {
    /// Parameter-group name (e.g. `"conv1/weight"`).
    pub name: String,
    /// Mixing coefficients of the merged (reported) mixture.
    pub pi: Vec<f64>,
    /// Precisions of the merged mixture, ascending.
    pub lambda: Vec<f64>,
    /// Dimensions in the group.
    pub dims: usize,
}

impl Network {
    /// Wraps a layer stack into a trainable classifier.
    pub fn new(net: impl Layer + 'static) -> Self {
        Network {
            net: Box::new(net),
            loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// The underlying layer stack.
    pub fn layer_mut(&mut self) -> &mut dyn Layer {
        self.net.as_mut()
    }

    /// Attaches a regularizer to each parameter group for which `f`
    /// returns one. The closure sees the group's name, dimensionality and
    /// initialization std — everything the paper's per-layer GM recipe
    /// needs. Existing regularizers on groups where `f` returns `None` are
    /// removed.
    pub fn attach_regularizers(
        &mut self,
        mut f: impl FnMut(&str, usize, f64) -> Option<Box<dyn Regularizer>>,
    ) {
        self.net.visit_params(&mut |p: &mut Param| {
            p.regularizer = f(&p.name, p.len(), p.init_std);
        });
    }

    /// Sets every parameter group's regularization-gradient scale. Use
    /// `1.0 / n_train` to keep Eq. 10's sum-loss proportions when training
    /// on mean batch losses (see [`Param::reg_scale`]).
    pub fn set_reg_scale(&mut self, scale: f32) {
        self.net
            .visit_params(&mut |p: &mut Param| p.reg_scale = scale);
    }

    /// Runs one forward/backward/step cycle on a batch; returns the batch's
    /// data-misfit loss.
    pub fn train_batch(&mut self, x: &Tensor, y: &[usize], opt: &mut Sgd) -> Result<f64> {
        tele::counter_inc("nn.train_batch.calls");
        let _t = tele::span("nn.train_batch.ns");
        let logits = self.net.forward(x, true)?;
        let loss = self.loss.forward(&logits, y)?;
        // Fault-injection site: poison the reported batch loss so recovery
        // paths (guard rails, checkpoint rollback) can be exercised
        // deterministically. Compiled out without `failpoints`.
        #[cfg(feature = "failpoints")]
        let loss = match gmreg_faults::fire("nn.loss") {
            Some(gmreg_faults::FaultKind::NanFill) => f64::NAN,
            Some(gmreg_faults::FaultKind::Scale(s)) => loss * s,
            _ => loss,
        };
        let dlogits = self.loss.backward()?;
        self.net.backward(&dlogits)?;
        opt.step(&mut *self.net);
        Ok(loss)
    }

    /// Trains one epoch over a dataset; reshuffles batches, optionally
    /// augments them, advances the optimizer's epoch counter at the end.
    pub fn train_epoch(
        &mut self,
        ds: &Dataset,
        batch_size: usize,
        opt: &mut Sgd,
        augment: Option<&Augment>,
        rng: &mut impl Rng,
    ) -> Result<EpochStats> {
        let _t = tele::span("nn.train_epoch.ns");
        let batcher = Batcher::new(ds, batch_size, rng)?;
        let mut total_loss = 0.0;
        let mut total_acc = 0.0;
        let n_batches = batcher.n_batches();
        for i in 0..n_batches {
            let mut batch = batcher.batch(ds, i)?;
            if let Some(aug) = augment {
                aug.apply_batch(&mut batch.x, rng)?;
            }
            total_loss += self.train_batch(&batch.x, &batch.y, opt)?;
            total_acc += self.loss.cached_accuracy()?;
        }
        opt.end_epoch(&mut *self.net);
        tele::counter_inc("nn.epochs");
        let stats = EpochStats {
            loss: total_loss / n_batches as f64,
            accuracy: total_acc / n_batches as f64,
            batches: n_batches,
        };
        tele::gauge_set("nn.epoch.loss", stats.loss);
        tele::gauge_set("nn.epoch.accuracy", stats.accuracy);
        // Per-epoch publish for live scrapes (the checked variant is
        // flushed by the fault-tolerant runtime after checkpointing).
        tele::flush();
        Ok(stats)
    }

    /// [`Network::train_epoch`] with per-batch numerical validation: the
    /// epoch aborts with [`NnError::NonFiniteLoss`] as soon as a batch's
    /// data loss stops being finite, before the poisoned statistics are
    /// folded into the epoch mean. The optimizer's epoch counter advances
    /// only on success, so a fault-tolerant driver can roll back to its
    /// last checkpoint and retry the same epoch.
    pub fn train_epoch_checked(
        &mut self,
        ds: &Dataset,
        batch_size: usize,
        opt: &mut Sgd,
        augment: Option<&Augment>,
        rng: &mut impl Rng,
    ) -> Result<EpochStats> {
        let _t = tele::span("nn.train_epoch.ns");
        let batcher = Batcher::new(ds, batch_size, rng)?;
        let mut total_loss = 0.0;
        let mut total_acc = 0.0;
        let n_batches = batcher.n_batches();
        for i in 0..n_batches {
            let mut batch = batcher.batch(ds, i)?;
            if let Some(aug) = augment {
                aug.apply_batch(&mut batch.x, rng)?;
            }
            let loss = self.train_batch(&batch.x, &batch.y, opt)?;
            if !loss.is_finite() {
                tele::counter_inc("nn.guard.nonfinite_loss");
                return Err(NnError::NonFiniteLoss { batch: i, loss });
            }
            total_loss += loss;
            total_acc += self.loss.cached_accuracy()?;
        }
        opt.end_epoch(&mut *self.net);
        tele::counter_inc("nn.epochs");
        Ok(EpochStats {
            loss: total_loss / n_batches as f64,
            accuracy: total_acc / n_batches as f64,
            batches: n_batches,
        })
    }

    /// Classification accuracy on a dataset (evaluation mode, batched).
    pub fn evaluate(&mut self, ds: &Dataset, batch_size: usize) -> Result<f64> {
        let batcher = Batcher::sequential(ds, batch_size)?;
        let mut hits = 0.0;
        let mut total = 0usize;
        for batch in batcher.iter(ds) {
            let batch = batch?;
            let logits = self.net.forward(&batch.x, false)?;
            hits += accuracy(&logits, &batch.y)? * batch.y.len() as f64;
            total += batch.y.len();
        }
        Ok(hits / total as f64)
    }

    /// Total regularization penalty over all parameter groups.
    pub fn total_penalty(&mut self) -> f64 {
        let mut acc = 0.0;
        self.net
            .visit_params(&mut |p: &mut Param| acc += p.penalty());
        acc
    }

    /// Snapshots the learned GM of every group that carries a GM
    /// regularizer — the per-layer (π, λ) of Tables IV and V.
    pub fn learned_mixtures(&mut self) -> Vec<LayerMixture> {
        let mut out = Vec::new();
        self.net.visit_params(&mut |p: &mut Param| {
            if let Some(gm) = p.regularizer.as_ref().and_then(|r| r.as_gm()) {
                if let Ok(eff) = gm.learned_mixture() {
                    out.push(LayerMixture {
                        name: p.name.clone(),
                        pi: eff.pi().to_vec(),
                        lambda: eff.lambda().to_vec(),
                        dims: p.len(),
                    });
                }
            }
        });
        out
    }

    /// Total scalar parameter count.
    pub fn n_params(&mut self) -> usize {
        self.net.n_params()
    }

    /// Scalar count of *weight* parameters (groups named `*/weight`) —
    /// the "number of dimensions for model parameter" the paper reports.
    pub fn n_weight_params(&mut self) -> usize {
        let mut n = 0;
        self.net.visit_params(&mut |p: &mut Param| {
            if p.name.ends_with("/weight") {
                n += p.len();
            }
        });
        n
    }
}

impl VisitParams for Network {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.net.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::dense::Dense;
    use crate::init::WeightInit;
    use crate::sequential::Sequential;
    use gmreg_core::gm::{GmConfig, GmRegularizer};
    use gmreg_core::L2Reg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linearly separable 2-D two-class dataset.
    fn toy_dataset(n: usize, seed: u64) -> Dataset {
        use gmreg_tensor::SampleExt as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            data.push((cx + rng.normal(0.0, 0.4)) as f32);
            data.push((cx + rng.normal(0.0, 0.4)) as f32);
            y.push(label);
        }
        Dataset::new(Tensor::from_vec(data, [n, 2]).unwrap(), y, 2).unwrap()
    }

    fn mlp(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(
            Sequential::new("mlp")
                .push(Dense::new("fc1", 2, 8, WeightInit::He, &mut rng).unwrap())
                .push(ReLU::new("relu"))
                .push(Dense::new("fc2", 8, 2, WeightInit::He, &mut rng).unwrap()),
        )
    }

    #[test]
    fn learns_separable_data() {
        let ds = toy_dataset(200, 1);
        let mut net = mlp(2);
        let mut opt = Sgd::new(0.1, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut last = EpochStats {
            loss: f64::INFINITY,
            accuracy: 0.0,
            batches: 0,
        };
        for _ in 0..20 {
            last = net.train_epoch(&ds, 32, &mut opt, None, &mut rng).unwrap();
        }
        assert!(last.loss < 0.2, "loss {}", last.loss);
        assert!(last.accuracy > 0.95, "train acc {}", last.accuracy);
        let test = toy_dataset(100, 9);
        let acc = net.evaluate(&test, 32).unwrap();
        assert!(acc > 0.95, "test acc {acc}");
        assert_eq!(opt.epoch(), 20);
    }

    #[test]
    fn attach_and_report_regularizers() {
        let mut net = mlp(4);
        net.attach_regularizers(|name, dims, init_std| {
            if name.ends_with("/weight") {
                let cfg = GmConfig {
                    min_precision: Some(1.0),
                    ..GmConfig::default()
                };
                Some(Box::new(
                    GmRegularizer::new(dims, init_std.max(0.1), cfg).unwrap(),
                ))
            } else {
                None
            }
        });
        // run a few steps so the mixtures are fitted
        let ds = toy_dataset(64, 5);
        let mut opt = Sgd::new(0.05, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..3 {
            net.train_epoch(&ds, 16, &mut opt, None, &mut rng).unwrap();
        }
        let mixtures = net.learned_mixtures();
        assert_eq!(mixtures.len(), 2);
        assert_eq!(mixtures[0].name, "fc1/weight");
        assert_eq!(mixtures[0].dims, 16);
        for m in &mixtures {
            assert!((m.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(m.lambda.iter().all(|l| *l > 0.0));
        }
        // The GM penalty is a negative log prior: it can legitimately be
        // negative when the learned components are concentrated.
        assert!(net.total_penalty().is_finite());
        assert_eq!(net.n_weight_params(), 2 * 8 + 8 * 2);
        assert_eq!(net.n_params(), 16 + 8 + 16 + 2);
    }

    #[test]
    fn l2_has_no_gm_report() {
        let mut net = mlp(7);
        net.attach_regularizers(|name, _, _| {
            name.ends_with("/weight")
                .then(|| Box::new(L2Reg::new(0.01).unwrap()) as Box<dyn Regularizer>)
        });
        assert!(net.learned_mixtures().is_empty());
        assert!(net.total_penalty() >= 0.0);
    }

    #[test]
    fn regularization_shrinks_weights_vs_unregularized() {
        let ds = toy_dataset(100, 8);
        let train = |reg: bool| -> f32 {
            let mut net = mlp(11);
            if reg {
                net.attach_regularizers(|name, _, _| {
                    name.ends_with("/weight")
                        .then(|| Box::new(L2Reg::new(1.0).unwrap()) as Box<dyn Regularizer>)
                });
            }
            let mut opt = Sgd::new(0.05, 0.9).unwrap();
            let mut rng = StdRng::seed_from_u64(12);
            for _ in 0..10 {
                net.train_epoch(&ds, 25, &mut opt, None, &mut rng).unwrap();
            }
            let mut norm = 0.0f32;
            net.visit_params(&mut |p| {
                if p.name.ends_with("/weight") {
                    norm += p.value.norm_sq();
                }
            });
            norm
        };
        let with = train(true);
        let without = train(false);
        assert!(
            with < 0.5 * without,
            "L2 should shrink weights: {with} vs {without}"
        );
    }
}

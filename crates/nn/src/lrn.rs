//! Local Response Normalization across channels (AlexNet-style), used by
//! the paper's Alex-CIFAR-10 model.

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;

/// Cross-channel LRN:
/// `b_i = a_i / (k + (α/n)·Σ_{j∈window(i)} a_j²)^β`, with the window of
/// size `n` centered on channel `i` and clipped at the channel range.
pub struct Lrn {
    name: String,
    /// Window size `n` (number of adjacent channels, 5 in AlexNet).
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cache: Option<LrnCache>,
}

struct LrnCache {
    input: Tensor,
    /// The denominator base `d_i = k + (α/n)·Σ a_j²` per element.
    denom: Vec<f32>,
}

impl Lrn {
    /// Builds an LRN layer; AlexNet's published constants are
    /// `size = 5, alpha = 1e-4, beta = 0.75, k = 2.0`.
    pub fn new(
        name: impl Into<String>,
        size: usize,
        alpha: f32,
        beta: f32,
        k: f32,
    ) -> Result<Self> {
        if size == 0 {
            return Err(NnError::InvalidConfig {
                field: "size",
                reason: "window must cover at least one channel".into(),
            });
        }
        if !(alpha.is_finite() && beta.is_finite() && k.is_finite()) || k <= 0.0 {
            return Err(NnError::InvalidConfig {
                field: "alpha/beta/k",
                reason: "must be finite with k > 0".into(),
            });
        }
        Ok(Lrn {
            name: name.into(),
            size,
            alpha,
            beta,
            k,
            cache: None,
        })
    }

    /// AlexNet defaults.
    pub fn alexnet(name: impl Into<String>) -> Self {
        Lrn::new(name, 5, 1e-4, 0.75, 2.0).expect("constants are valid")
    }

    fn window(&self, i: usize, c: usize) -> (usize, usize) {
        let half = self.size / 2;
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(c);
        (lo, hi)
    }
}

impl VisitParams for Lrn {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

impl Layer for Lrn {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let d = x.dims();
        if d.len() != 4 {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: "[N, C, H, W]".into(),
            });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        let hw = h * w;
        let xs = x.as_slice();
        let mut denom = vec![0.0f32; xs.len()];
        let mut out = vec![0.0f32; xs.len()];
        let scale = self.alpha / self.size as f32;
        for ni in 0..n {
            for ci in 0..c {
                let (lo, hi) = self.window(ci, c);
                for p in 0..hw {
                    let mut acc = 0.0f32;
                    for cj in lo..hi {
                        let v = xs[(ni * c + cj) * hw + p];
                        acc += v * v;
                    }
                    let idx = (ni * c + ci) * hw + p;
                    let dval = self.k + scale * acc;
                    denom[idx] = dval;
                    out[idx] = xs[idx] / dval.powf(self.beta);
                }
            }
        }
        self.cache = Some(LrnCache {
            input: x.clone(),
            denom,
        });
        Ok(Tensor::from_vec(out, d.to_vec())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let d = cache.input.dims();
        if grad_out.dims() != d {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("{d:?}"),
            });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        let hw = h * w;
        let xs = cache.input.as_slice();
        let go = grad_out.as_slice();
        let denom = &cache.denom;
        let scale = self.alpha / self.size as f32;
        let mut dx = vec![0.0f32; xs.len()];
        // dL/da_x = go_x / d_x^β − 2·scale·β·a_x · Σ_{i: x∈win(i)} go_i·a_i/d_i^{β+1}
        for ni in 0..n {
            for cx in 0..c {
                // channels i whose window includes cx are exactly the window
                // around cx (symmetric windows).
                let (lo, hi) = self.window(cx, c);
                for p in 0..hw {
                    let xidx = (ni * c + cx) * hw + p;
                    let mut acc = 0.0f32;
                    for ci in lo..hi {
                        let i = (ni * c + ci) * hw + p;
                        acc += go[i] * xs[i] / denom[i].powf(self.beta + 1.0);
                    }
                    dx[xidx] = go[xidx] / denom[xidx].powf(self.beta)
                        - 2.0 * scale * self.beta * xs[xidx] * acc;
                }
            }
        }
        Ok(Tensor::from_vec(dx, d.to_vec())?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::check_input_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_formula() {
        // 1 sample, 3 channels, 1x1 spatial; window size 3 covers all.
        let mut lrn = Lrn::new("lrn", 3, 0.3, 0.5, 1.0).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3, 1, 1]).unwrap();
        let y = lrn.forward(&x, true).unwrap();
        // channel 0 window = {0,1}: d = 1 + 0.1*(1+4) = 1.5
        let d0 = 1.0f32 + 0.1 * 5.0;
        assert!((y.as_slice()[0] - 1.0 / d0.sqrt()).abs() < 1e-6);
        // channel 1 window = {0,1,2}: d = 1 + 0.1*14
        let d1 = 1.0f32 + 0.1 * 14.0;
        assert!((y.as_slice()[1] - 2.0 / d1.sqrt()).abs() < 1e-6);
        // channel 2 window = {1,2}: d = 1 + 0.1*13
        let d2 = 1.0f32 + 0.1 * 13.0;
        assert!((y.as_slice()[2] - 3.0 / d2.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gradient_checks_out() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn(&mut rng, [2, 6, 3, 3], 0.0, 1.0);
        // Large alpha so normalization meaningfully affects gradients.
        let mut lrn = Lrn::new("lrn", 5, 0.5, 0.75, 2.0).unwrap();
        check_input_grad(&mut lrn, &x, 2e-2);
    }

    #[test]
    fn alexnet_defaults_are_mild() {
        let mut lrn = Lrn::alexnet("lrn");
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&mut rng, [1, 8, 2, 2], 0.0, 1.0);
        let y = lrn.forward(&x, true).unwrap();
        // With alpha=1e-4 the normalization is a gentle shrink by k^beta.
        let shrink = 2.0f32.powf(0.75);
        for (yv, xv) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((yv * shrink - xv).abs() < 0.01 * (1.0 + xv.abs()));
        }
    }

    #[test]
    fn validation() {
        assert!(Lrn::new("l", 0, 0.1, 0.5, 1.0).is_err());
        assert!(Lrn::new("l", 3, 0.1, 0.5, 0.0).is_err());
        assert!(Lrn::new("l", 3, f32::NAN, 0.5, 1.0).is_err());
        let mut l = Lrn::alexnet("l");
        assert!(l.forward(&Tensor::zeros([2, 2]), true).is_err());
        assert!(l.backward(&Tensor::zeros([1, 1, 1, 1])).is_err());
        l.forward(&Tensor::zeros([1, 2, 2, 2]), true).unwrap();
        assert!(l.backward(&Tensor::zeros([1, 2, 2, 3])).is_err());
        assert_eq!(l.output_dims(&[2, 2, 2]).unwrap(), vec![2, 2, 2]);
        assert_eq!(l.n_params(), 0);
    }
}

//! Trainable parameters: value, gradient, momentum buffer and an optional
//! per-parameter-group regularizer.

use gmreg_core::{Regularizer, StepCtx};
use gmreg_tensor::Tensor;

/// One trainable parameter group (a layer's weight or bias tensor).
///
/// The paper regularizes each layer's weights with its own adaptively
/// learned GM; attaching the [`Regularizer`] directly to the parameter
/// group makes that per-layer assignment the natural unit. Biases follow
/// the usual convention of carrying no regularizer.
pub struct Param {
    /// Qualified name, e.g. `"conv1/weight"` — the names Tables IV/V use.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the backward pass (zeroed by the optimizer
    /// after each step).
    pub grad: Tensor,
    /// Momentum buffer owned by SGD.
    pub velocity: Tensor,
    /// Standard deviation the value was initialized with — the GM
    /// regularizer derives its initial `min` precision from it (Sec. V-E).
    pub init_std: f64,
    /// Optional penalty applied to this group at every optimizer step.
    pub regularizer: Option<Box<dyn Regularizer>>,
    /// Factor applied to `g_reg` before it joins the gradient. Eq. 10's
    /// `g_ll` is a *sum* over the training set while SGD implementations
    /// typically step on the *mean* batch loss; setting this to `1/N_train`
    /// keeps the two terms in the paper's proportion.
    pub reg_scale: f32,
    scratch: Vec<f32>,
}

impl Param {
    /// Creates a parameter with zeroed gradient and momentum buffers.
    pub fn new(name: impl Into<String>, value: Tensor, init_std: f64) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        let velocity = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
            velocity,
            init_std,
            regularizer: None,
            reg_scale: 1.0,
            scratch: Vec::new(),
        }
    }

    /// Number of scalar dimensions in the group.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the group is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Applies the attached regularizer's gradient for this step, if any,
    /// scaled by [`Param::reg_scale`].
    pub fn apply_regularizer(&mut self, ctx: StepCtx) {
        let Some(reg) = self.regularizer.as_mut() else {
            return;
        };
        if self.reg_scale == 1.0 {
            reg.accumulate_grad(self.value.as_slice(), self.grad.as_mut_slice(), ctx);
        } else {
            if self.scratch.len() != self.value.len() {
                self.scratch = vec![0.0; self.value.len()];
            } else {
                self.scratch.fill(0.0);
            }
            reg.accumulate_grad(self.value.as_slice(), &mut self.scratch, ctx);
            let s = self.reg_scale;
            for (g, &r) in self.grad.as_mut_slice().iter_mut().zip(&self.scratch) {
                *g += s * r;
            }
        }
    }

    /// The regularizer's penalty value on the current weights (0 if none).
    pub fn penalty(&self) -> f64 {
        self.regularizer
            .as_ref()
            .map_or(0.0, |r| r.penalty(self.value.as_slice()))
    }

    /// Zeroes the gradient buffer.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Param")
            .field("name", &self.name)
            .field("dims", &self.value.dims())
            .field("init_std", &self.init_std)
            .field(
                "regularizer",
                &self.regularizer.as_ref().map(|r| r.name().to_owned()),
            )
            .finish()
    }
}

/// Visitor over a model's parameters, used by optimizers, regularizer
/// attachment, and reporting.
pub trait VisitParams {
    /// Calls `f` once for every parameter group, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Borrows every parameter group at once, in the same stable order as
    /// [`VisitParams::visit_params`]. The groups are disjoint borrows, so an
    /// optimizer can update them from different threads.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Total scalar parameter count.
    fn n_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmreg_core::L2Reg;

    #[test]
    fn buffers_are_zeroed() {
        let p = Param::new("w", Tensor::ones([2, 3]), 0.1);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
        assert!(p.velocity.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(p.penalty(), 0.0);
        let dbg = format!("{p:?}");
        assert!(dbg.contains("\"w\""));
    }

    #[test]
    fn reg_scale_scales_the_penalty_gradient() {
        let mut p = Param::new("w", Tensor::from_slice(&[2.0, -1.0]), 0.1);
        p.regularizer = Some(Box::new(L2Reg::new(0.5).unwrap()));
        p.reg_scale = 0.1;
        p.apply_regularizer(StepCtx::new(0, 0));
        assert!(p.grad.approx_eq(&Tensor::from_slice(&[0.1, -0.05]), 1e-7));
        // A second application accumulates on top.
        p.apply_regularizer(StepCtx::new(1, 0));
        assert!(p.grad.approx_eq(&Tensor::from_slice(&[0.2, -0.1]), 1e-7));
    }

    #[test]
    fn regularizer_is_applied() {
        let mut p = Param::new("w", Tensor::from_slice(&[2.0, -1.0]), 0.1);
        p.regularizer = Some(Box::new(L2Reg::new(0.5).unwrap()));
        p.apply_regularizer(StepCtx::new(0, 0));
        assert_eq!(p.grad.as_slice(), &[1.0, -0.5]);
        assert!(p.penalty() > 0.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}

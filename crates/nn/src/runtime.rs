//! Fault-tolerant training runtime: epoch-level checkpointing, rollback and
//! retry on numerical failure, learning-rate backoff, and graceful
//! degradation to fixed L2 — the training loop is allowed to *recover*, not
//! just crash, when the adaptive regularizer or the loss goes non-finite.
//!
//! The ladder, from cheapest to most drastic:
//!
//! 1. **In-step guard rails** — a [`GuardedGmRegularizer`] attached to a
//!    parameter group discards poisoned `g_reg` contributions and rolls the
//!    mixture back on its own, invisibly to this runtime.
//! 2. **Epoch rollback** — if a batch loss goes non-finite anyway
//!    ([`NnError::NonFiniteLoss`]), the runtime restores weights, momentum,
//!    optimizer counters and regularizer state from the newest durable
//!    checkpoint and re-runs the failed epoch. Epoch shuffling is keyed by
//!    `shuffle_seed + epoch`, so the retry (and any resumed run) replays
//!    exactly the batch sequence of an uninterrupted run.
//! 3. **Learning-rate backoff** — the second consecutive failure of the
//!    same epoch multiplies the learning rate by
//!    [`RuntimeConfig::lr_backoff`] before retrying, damping genuine
//!    divergence rather than transient corruption.
//! 4. **Degradation** — once [`RuntimeConfig::max_retries`] total retries
//!    are exhausted, every guarded GM regularizer is forced down to fixed
//!    L2 ([`GuardedGmRegularizer::force_degrade`]) and training continues.
//! 5. **Stall detection** — if epochs keep failing *after* degradation,
//!    the run ends with [`NnError::Stalled`]: an error value, never a
//!    process abort.

use crate::error::{NnError, Result};
use crate::model::{EpochStats, Network};
use crate::optimizer::Sgd;
use crate::param::VisitParams as _;
use crate::serialize::{load_weights, save_weights, WeightsSnapshot};
use crate::tele;
use gmreg_core::durable::CheckpointManager;
use gmreg_core::gm::{GmSnapshot, GuardConfig, GuardedGmRegularizer};
use gmreg_data::{Augment, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Tuning knobs for [`FaultTolerantTrainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Total epochs to train.
    pub epochs: u64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base seed for epoch shuffling; epoch `e` uses `shuffle_seed + e`, so
    /// a resumed run replays the identical batch sequence.
    pub shuffle_seed: u64,
    /// Write a durable checkpoint every this many completed epochs
    /// (minimum 1). The final epoch is always checkpointed.
    pub checkpoint_every: u64,
    /// Checkpoint generations retained on disk (minimum 1).
    pub keep_checkpoints: usize,
    /// Total epoch retries allowed before degrading every guarded GM
    /// regularizer to fixed L2.
    pub max_retries: u32,
    /// Learning-rate multiplier applied from the second consecutive
    /// failure of the same epoch, in (0, 1].
    pub lr_backoff: f32,
    /// Guard configuration used when rebuilding [`GuardedGmRegularizer`]s
    /// from checkpointed state.
    pub guard: GuardConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            epochs: 10,
            batch_size: 32,
            shuffle_seed: 0,
            checkpoint_every: 1,
            keep_checkpoints: 3,
            max_retries: 3,
            lr_backoff: 0.5,
            guard: GuardConfig::default(),
        }
    }
}

impl RuntimeConfig {
    fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(NnError::InvalidConfig {
                field: "epochs",
                reason: "must be at least 1".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                field: "batch_size",
                reason: "must be at least 1".into(),
            });
        }
        if self.checkpoint_every == 0 {
            return Err(NnError::InvalidConfig {
                field: "checkpoint_every",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.lr_backoff > 0.0 && self.lr_backoff <= 1.0) {
            return Err(NnError::InvalidConfig {
                field: "lr_backoff",
                reason: format!("must lie in (0, 1], got {}", self.lr_backoff),
            });
        }
        Ok(())
    }
}

/// The serializable payload of one training checkpoint: everything needed
/// to restart the run from an epoch boundary bit-for-bit — weights,
/// momentum, optimizer counters, learning rate, and the adaptive state of
/// every guarded GM regularizer (plus its degraded-L2 strength if the
/// guard had already given up on the mixture).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainState {
    /// The next epoch to run (completed epochs are `0..next_epoch`).
    pub next_epoch: u64,
    /// Optimizer iteration counter at the checkpoint.
    pub iteration: u64,
    /// Learning rate at the checkpoint (after any backoff).
    pub lr: f64,
    /// Weight and momentum buffers by parameter name.
    pub weights: WeightsSnapshot,
    /// Guarded-GM mixture state by parameter name.
    pub gm: BTreeMap<String, GmSnapshot>,
    /// Degraded-L2 strength by parameter name, for groups whose guard had
    /// already degraded when the checkpoint was taken.
    pub degraded: BTreeMap<String, f64>,
}

/// What a fault-tolerant run did, beyond the per-epoch statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Statistics of every *successfully completed* epoch, in order.
    pub epochs: Vec<EpochStats>,
    /// Epoch-level rollbacks performed (failures recovered by restoring a
    /// checkpoint).
    pub rollbacks: u32,
    /// Parameter groups whose regularizer ended the run degraded to L2.
    pub degraded_groups: Vec<String>,
    /// Checkpoint generation the run resumed from, if any.
    pub resumed_from: Option<u64>,
    /// Learning rate when the run finished (after any backoff).
    pub final_lr: f64,
}

/// Captures the full training state at an epoch boundary. `next_epoch` is
/// the epoch the restored run should execute next.
pub fn capture_state(net: &mut Network, opt: &Sgd, next_epoch: u64) -> TrainState {
    let weights = save_weights(net);
    let mut gm = BTreeMap::new();
    let mut degraded = BTreeMap::new();
    net.visit_params(&mut |p| {
        if let Some(g) = p.regularizer.as_ref().and_then(|r| r.as_guard()) {
            gm.insert(p.name.clone(), g.snapshot());
            if let Some(beta) = g.degraded_beta() {
                degraded.insert(p.name.clone(), beta);
            }
        }
    });
    TrainState {
        next_epoch,
        iteration: opt.iteration(),
        lr: opt.lr() as f64,
        weights,
        gm,
        degraded,
    }
}

/// Restores a captured state: weights and momentum, optimizer counters and
/// learning rate, and a fresh [`GuardedGmRegularizer`] (healthy or
/// pre-degraded) for every parameter group the state has mixture state for.
/// Groups without captured state keep their current regularizer.
pub fn restore_state(
    net: &mut Network,
    opt: &mut Sgd,
    state: &TrainState,
    guard: &GuardConfig,
) -> Result<()> {
    load_weights(net, &state.weights)?;
    let mut first_err: Option<NnError> = None;
    net.visit_params(&mut |p| {
        if first_err.is_some() {
            return;
        }
        let Some(snap) = state.gm.get(&p.name) else {
            return;
        };
        let rebuilt = match state.degraded.get(&p.name) {
            Some(&beta) => GuardedGmRegularizer::degraded_from(snap, beta, guard.clone()),
            None => GuardedGmRegularizer::from_snapshot(snap, guard.clone()),
        };
        match rebuilt {
            Ok(g) => p.regularizer = Some(Box::new(g)),
            Err(e) => first_err = Some(e.into()),
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    opt.resume_at(state.iteration, state.next_epoch);
    opt.set_lr(state.lr as f32)
}

/// Forces every guarded regularizer that is still adaptive down to fixed
/// L2; returns the names of the groups degraded by this call.
fn force_degrade_all(net: &mut Network, detail: &str) -> Vec<String> {
    let mut degraded = Vec::new();
    net.visit_params(&mut |p| {
        if let Some(g) = p.regularizer.as_mut().and_then(|r| r.as_guard_mut()) {
            if !g.is_degraded() {
                g.force_degrade(detail);
                degraded.push(p.name.clone());
            }
        }
    });
    degraded
}

fn degraded_groups(net: &mut Network) -> Vec<String> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| {
        if let Some(g) = p.regularizer.as_ref().and_then(|r| r.as_guard()) {
            if g.is_degraded() {
                out.push(p.name.clone());
            }
        }
    });
    out
}

/// Epoch-checkpointing training driver with rollback-and-retry recovery.
/// See the module docs for the recovery ladder.
pub struct FaultTolerantTrainer {
    cfg: RuntimeConfig,
    ckpt: CheckpointManager,
}

impl FaultTolerantTrainer {
    /// Creates a trainer whose checkpoints live under `dir` (created if
    /// missing), retaining [`RuntimeConfig::keep_checkpoints`] generations.
    pub fn new(cfg: RuntimeConfig, dir: impl AsRef<Path>) -> Result<Self> {
        cfg.validate()?;
        let ckpt = CheckpointManager::new(dir.as_ref(), "train", cfg.keep_checkpoints.max(1))
            .map_err(NnError::Core)?;
        Ok(FaultTolerantTrainer { cfg, ckpt })
    }

    /// The checkpoint manager (for inspection in tests and tools).
    pub fn checkpoints(&self) -> &CheckpointManager {
        &self.ckpt
    }

    /// Runs (or resumes) training to [`RuntimeConfig::epochs`] epochs.
    ///
    /// If the checkpoint directory already holds a valid generation, the
    /// newest one is restored first — `net` and `opt` are overwritten —
    /// and training continues from its epoch. Corrupt generations are
    /// skipped in favour of older intact ones by the
    /// [`CheckpointManager`].
    pub fn train(
        &self,
        net: &mut Network,
        opt: &mut Sgd,
        ds: &Dataset,
        augment: Option<&Augment>,
    ) -> Result<RunReport> {
        let mut report = RunReport {
            epochs: Vec::new(),
            rollbacks: 0,
            degraded_groups: Vec::new(),
            resumed_from: None,
            final_lr: opt.lr() as f64,
        };
        let mut epoch = 0u64;
        match self
            .ckpt
            .load_latest::<TrainState>()
            .map_err(NnError::Core)?
        {
            Some((generation, state)) => {
                restore_state(net, opt, &state, &self.cfg.guard)?;
                epoch = state.next_epoch;
                report.resumed_from = Some(generation);
                tele::counter_inc("runtime.resumes");
            }
            None => {
                // Generation 0 is the pristine pre-training state, so even
                // an epoch-0 failure has a rollback target.
                self.ckpt
                    .save(&capture_state(net, opt, 0))
                    .map_err(NnError::Core)?;
            }
        }

        let mut retries = 0u32;
        let mut consecutive = 0u32;
        let mut exhausted = false;
        while epoch < self.cfg.epochs {
            let mut rng = StdRng::seed_from_u64(self.cfg.shuffle_seed.wrapping_add(epoch));
            let mut _epoch_span = tele::span("runtime.epoch.ns").with_u64("epoch", epoch);
            let outcome = net.train_epoch_checked(ds, self.cfg.batch_size, opt, augment, &mut rng);
            match outcome {
                Ok(stats) => {
                    tele::gauge_set("runtime.epoch", (epoch + 1) as f64);
                    tele::gauge_set("runtime.loss", stats.loss);
                    report.epochs.push(stats);
                    consecutive = 0;
                    epoch += 1;
                    if epoch % self.cfg.checkpoint_every == 0 || epoch == self.cfg.epochs {
                        self.ckpt
                            .save(&capture_state(net, opt, epoch))
                            .map_err(NnError::Core)?;
                    }
                    drop(_epoch_span);
                    // Publish per-epoch deltas so a live /metrics scrape (and
                    // the trace journal) sees fresh data mid-run.
                    tele::flush();
                }
                Err(e) => {
                    _epoch_span.set_u64("failed", 1);
                    tele::counter_inc("runtime.epoch.failures");
                    let failure = e.to_string();
                    if exhausted {
                        // Even fixed-L2 training keeps failing: surface a
                        // clean error instead of looping forever.
                        return Err(NnError::Stalled {
                            epoch,
                            last_failure: failure,
                        });
                    }
                    retries += 1;
                    consecutive += 1;
                    report.rollbacks += 1;
                    tele::counter_inc("runtime.rollbacks");
                    let mut _rb = tele::span("runtime.rollback.ns")
                        .with_u64("epoch", epoch)
                        .with_u64("retries", retries as u64);
                    let Some((generation, state)) = self
                        .ckpt
                        .load_latest::<TrainState>()
                        .map_err(NnError::Core)?
                    else {
                        return Err(NnError::Stalled {
                            epoch,
                            last_failure: format!("{failure} (and no checkpoint to roll back to)"),
                        });
                    };
                    restore_state(net, opt, &state, &self.cfg.guard)?;
                    epoch = state.next_epoch;
                    _rb.set_u64("generation", generation);
                    if retries > self.cfg.max_retries {
                        let hit = force_degrade_all(net, &failure);
                        tele::counter_inc("runtime.degradations");
                        exhausted = true;
                        consecutive = 0;
                        report.degraded_groups.extend(hit);
                    } else if consecutive >= 2 {
                        let lr = (opt.lr() * self.cfg.lr_backoff).max(1e-8);
                        opt.set_lr(lr)?;
                        tele::counter_inc("runtime.lr_backoffs");
                    }
                }
            }
        }
        report.final_lr = opt.lr() as f64;
        report.degraded_groups = degraded_groups(net);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::dense::Dense;
    use crate::init::WeightInit;
    use crate::sequential::Sequential;
    use gmreg_core::gm::{GmConfig, GmRegularizer};
    use gmreg_tensor::Tensor;

    fn toy_dataset(n: usize, seed: u64) -> Dataset {
        use gmreg_tensor::SampleExt as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            data.push((cx + rng.normal(0.0, 0.4)) as f32);
            data.push((cx + rng.normal(0.0, 0.4)) as f32);
            y.push(label);
        }
        Dataset::new(Tensor::from_vec(data, [n, 2]).unwrap(), y, 2).unwrap()
    }

    /// An MLP with a guarded GM regularizer on every weight group.
    fn guarded_mlp(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(
            Sequential::new("mlp")
                .push(Dense::new("fc1", 2, 8, WeightInit::He, &mut rng).unwrap())
                .push(ReLU::new("relu"))
                .push(Dense::new("fc2", 8, 2, WeightInit::He, &mut rng).unwrap()),
        );
        net.attach_regularizers(|name, dims, init_std| {
            name.ends_with("/weight").then(|| {
                let cfg = GmConfig {
                    min_precision: Some(1.0),
                    ..GmConfig::default()
                };
                let inner = GmRegularizer::new(dims, init_std.max(0.1), cfg).unwrap();
                Box::new(GuardedGmRegularizer::new(inner, GuardConfig::default()))
                    as Box<dyn gmreg_core::Regularizer>
            })
        });
        net
    }

    fn weight_vec(net: &mut Network) -> Vec<f32> {
        let mut out = Vec::new();
        net.visit_params(&mut |p| out.extend_from_slice(p.value.as_slice()));
        out
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gmreg-runtime-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(epochs: u64) -> RuntimeConfig {
        RuntimeConfig {
            epochs,
            batch_size: 16,
            shuffle_seed: 11,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn clean_run_trains_and_checkpoints() {
        let dir = temp_dir("clean");
        let ds = toy_dataset(96, 1);
        let mut net = guarded_mlp(2);
        let mut opt = Sgd::new(0.1, 0.9).unwrap();
        let trainer = FaultTolerantTrainer::new(cfg(3), &dir).unwrap();
        let report = trainer.train(&mut net, &mut opt, &ds, None).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.rollbacks, 0);
        assert!(report.degraded_groups.is_empty());
        assert!(report.epochs[2].loss.is_finite());
        // Pristine state + 3 epoch boundaries, pruned to the keep window.
        let gens = trainer.checkpoints().generations().unwrap();
        assert_eq!(gens, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_run_matches_uninterrupted_run() {
        let ds = toy_dataset(96, 1);

        // Uninterrupted reference: 3 epochs in one call.
        let dir_a = temp_dir("ref");
        let mut net_a = guarded_mlp(2);
        let mut opt_a = Sgd::new(0.1, 0.9).unwrap();
        FaultTolerantTrainer::new(cfg(3), &dir_a)
            .unwrap()
            .train(&mut net_a, &mut opt_a, &ds, None)
            .unwrap();

        // Interrupted run: 2 epochs, then a fresh process picks up the
        // checkpoint directory and finishes epoch 3.
        let dir_b = temp_dir("resume");
        let mut net_b = guarded_mlp(2);
        let mut opt_b = Sgd::new(0.1, 0.9).unwrap();
        FaultTolerantTrainer::new(cfg(2), &dir_b)
            .unwrap()
            .train(&mut net_b, &mut opt_b, &ds, None)
            .unwrap();
        let mut net_c = guarded_mlp(999); // different init: must be overwritten
        let mut opt_c = Sgd::new(0.05, 0.9).unwrap(); // different lr: restored
        let report = FaultTolerantTrainer::new(cfg(3), &dir_b)
            .unwrap()
            .train(&mut net_c, &mut opt_c, &ds, None)
            .unwrap();
        assert_eq!(report.resumed_from, Some(2));
        assert_eq!(report.epochs.len(), 1, "only epoch 2 remained");

        // Checkpoint floats travel through JSON, which may round by 1 ULP;
        // the documented resume tolerance is 1e-5 absolute per weight.
        let wa = weight_vec(&mut net_a);
        let wc = weight_vec(&mut net_c);
        assert_eq!(wa.len(), wc.len());
        for (i, (a, c)) in wa.iter().zip(&wc).enumerate() {
            assert!((a - c).abs() < 1e-5, "weight {i}: {a} vs {c}");
        }
        assert_eq!(opt_a.iteration(), opt_c.iteration());
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    // Fault-injection coverage for this runtime (transient NaN loss →
    // rollback matching the clean run; persistent faults → degrade, then
    // `Stalled`) lives in the workspace integration suite
    // (`tests/tests/fault_injection.rs`): the failpoint registry is
    // process-global, so armed faults must not share a test binary with
    // unrelated training tests.

    #[test]
    fn config_validation() {
        let dir = temp_dir("cfg");
        for bad in [
            RuntimeConfig {
                epochs: 0,
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                batch_size: 0,
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                checkpoint_every: 0,
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                lr_backoff: 0.0,
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                lr_backoff: 1.5,
                ..RuntimeConfig::default()
            },
        ] {
            assert!(FaultTolerantTrainer::new(bad, &dir).is_err());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capture_restore_round_trip_preserves_degraded_state() {
        let mut net = guarded_mlp(6);
        // Degrade one group before capturing.
        let hit = force_degrade_all(&mut net, "test");
        assert_eq!(hit.len(), 2);
        let opt = Sgd::new(0.07, 0.9).unwrap();
        let state = capture_state(&mut net, &opt, 5);
        assert_eq!(state.degraded.len(), 2);

        let mut fresh = guarded_mlp(7);
        let mut opt2 = Sgd::new(0.5, 0.9).unwrap();
        restore_state(&mut fresh, &mut opt2, &state, &GuardConfig::default()).unwrap();
        assert_eq!(opt2.lr(), 0.07);
        assert_eq!(opt2.epoch(), 5);
        assert_eq!(degraded_groups(&mut fresh).len(), 2);
        assert_eq!(weight_vec(&mut fresh), weight_vec(&mut net));
    }
}

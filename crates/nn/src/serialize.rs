//! Model weight checkpointing: save and restore every parameter group of a
//! network by name, so trained models survive process restarts.

use crate::error::{NnError, Result};
use crate::param::VisitParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A serializable snapshot of a model's parameters (values and momentum
/// buffers), keyed by the qualified parameter names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightsSnapshot {
    /// Parameter values by name.
    pub values: BTreeMap<String, Vec<f32>>,
    /// Momentum buffers by name (same keys as `values`).
    pub velocities: BTreeMap<String, Vec<f32>>,
}

/// Captures every parameter group of `model`.
pub fn save_weights(model: &mut dyn VisitParams) -> WeightsSnapshot {
    let mut snap = WeightsSnapshot {
        values: BTreeMap::new(),
        velocities: BTreeMap::new(),
    };
    model.visit_params(&mut |p| {
        snap.values
            .insert(p.name.clone(), p.value.as_slice().to_vec());
        snap.velocities
            .insert(p.name.clone(), p.velocity.as_slice().to_vec());
    });
    snap
}

/// Restores a snapshot into `model`. Every parameter group in the model
/// must be present in the snapshot with a matching length; extra snapshot
/// entries are reported as errors too (they indicate an architecture
/// mismatch).
pub fn load_weights(model: &mut dyn VisitParams, snap: &WeightsSnapshot) -> Result<()> {
    let mut seen = 0usize;
    let mut error: Option<NnError> = None;
    model.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        seen += 1;
        match snap.values.get(&p.name) {
            Some(v) if v.len() == p.value.len() => {
                p.value.as_mut_slice().copy_from_slice(v);
                if let Some(vel) = snap.velocities.get(&p.name) {
                    if vel.len() == p.velocity.len() {
                        p.velocity.as_mut_slice().copy_from_slice(vel);
                    }
                }
            }
            Some(v) => {
                error = Some(NnError::InvalidConfig {
                    field: "snapshot",
                    reason: format!(
                        "parameter `{}` has {} values in the snapshot but {} in the model",
                        p.name,
                        v.len(),
                        p.value.len()
                    ),
                });
            }
            None => {
                error = Some(NnError::InvalidConfig {
                    field: "snapshot",
                    reason: format!("parameter `{}` missing from snapshot", p.name),
                });
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if seen != snap.values.len() {
        return Err(NnError::InvalidConfig {
            field: "snapshot",
            reason: format!(
                "snapshot has {} parameter groups, model has {seen}",
                snap.values.len()
            ),
        });
    }
    Ok(())
}

/// Durably writes a model's weights to `path` inside the CRC-protected
/// checkpoint container ([`gmreg_core::durable`]): atomic temp-file +
/// rename, checksummed payload. I/O and serialization failures surface as
/// [`NnError`] values, never panics.
pub fn save_weights_file(model: &mut dyn VisitParams, path: &std::path::Path) -> Result<()> {
    let snap = save_weights(model);
    let payload = serde_json::to_string(&snap).map_err(|e| NnError::InvalidConfig {
        field: "snapshot",
        reason: format!("serialize failed: {e}"),
    })?;
    gmreg_core::durable::write_checkpoint(path, payload.as_bytes()).map_err(NnError::Core)
}

/// Loads a weights snapshot previously written by [`save_weights_file`],
/// verifying the container checksum. Corruption (truncation, bit flips)
/// and newer format versions come back as dedicated
/// [`gmreg_core::CoreError`] variants wrapped in [`NnError::Core`].
pub fn load_weights_file(path: &std::path::Path) -> Result<WeightsSnapshot> {
    let corrupt = |reason: String| {
        NnError::Core(gmreg_core::CoreError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason,
        })
    };
    let payload = gmreg_core::durable::read_checkpoint(path).map_err(NnError::Core)?;
    let text =
        String::from_utf8(payload).map_err(|e| corrupt(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(&text).map_err(|e| corrupt(format!("payload parse failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::dense::Dense;
    use crate::init::WeightInit;
    use crate::sequential::Sequential;
    use gmreg_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new("mlp")
            .push(Dense::new("fc1", 3, 5, WeightInit::He, &mut rng).expect("valid"))
            .push(ReLU::new("r"))
            .push(Dense::new("fc2", 5, 2, WeightInit::He, &mut rng).expect("valid"))
    }

    #[test]
    fn save_load_round_trip_restores_outputs() {
        use crate::layer::Layer as _;
        let mut a = mlp(1);
        let mut b = mlp(2); // different init
        let x = Tensor::ones([2, 3]);
        let ya = a.forward(&x, false).expect("forward");
        let yb = b.forward(&x, false).expect("forward");
        assert!(!ya.approx_eq(&yb, 1e-6), "different inits differ");

        let snap = save_weights(&mut a);
        load_weights(&mut b, &snap).expect("loads");
        let yb2 = b.forward(&x, false).expect("forward");
        assert!(ya.approx_eq(&yb2, 1e-7), "restored model matches source");
    }

    #[test]
    fn json_round_trip() {
        let mut m = mlp(3);
        let snap = save_weights(&mut m);
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: WeightsSnapshot = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(snap, back);
    }

    #[test]
    fn file_round_trip_and_corruption_are_results_not_panics() {
        let dir = std::env::temp_dir().join(format!("gmreg-nn-weights-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("weights.gmck");

        let mut m = mlp(5);
        save_weights_file(&mut m, &path).expect("saves");
        let back = load_weights_file(&path).expect("loads");
        assert_eq!(back, save_weights(&mut m));

        // Truncation is detected by the container CRC and surfaces as an
        // error value rather than a panic.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        match load_weights_file(&path) {
            Err(NnError::Core(gmreg_core::CoreError::CheckpointCorrupt { .. })) => {}
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }

        // A missing file is an I/O error value, not a panic.
        assert!(load_weights_file(&dir.join("absent.gmck")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatches_are_rejected() {
        let mut m = mlp(4);
        let mut snap = save_weights(&mut m);
        // wrong length
        snap.values.get_mut("fc1/weight").expect("present").pop();
        assert!(load_weights(&mut m, &snap).is_err());
        // missing key
        let mut snap = save_weights(&mut m);
        snap.values.remove("fc2/bias");
        assert!(load_weights(&mut m, &snap).is_err());
        // extra key
        let mut snap = save_weights(&mut m);
        snap.values.insert("ghost/weight".into(), vec![0.0]);
        assert!(load_weights(&mut m, &snap).is_err());
    }
}

//! The two deep models the paper evaluates (Table III): Alex-CIFAR-10 and
//! the 20-layer CIFAR ResNet.

mod alexnet;
mod resnet;

pub use alexnet::alex_cifar10;
pub use resnet::{resnet, resnet20};

//! The paper's Alex-CIFAR-10 model (Table III, left column).
//!
//! Three 5×5 convolution blocks with pooling / ReLU / LRN interleaved as in
//! the paper, ending in a 10-way dense softmax head. At 32×32×3 input the
//! weight dimensionality is exactly the paper's 89,440.

use crate::activation::{Flatten, ReLU};
use crate::conv::Conv2d;
use crate::error::Result;
use crate::init::WeightInit;
use crate::lrn::Lrn;
use crate::pool::Pool2d;
use crate::sequential::Sequential;
use crate::{Dense, Layer as _};
use rand::Rng;

/// Builds the Alex-CIFAR-10 stack for `n_classes` classes on
/// `[channels, size, size]` inputs.
///
/// Layer recipe (Table III):
/// `conv 5×5×32 → maxpool → relu → LRN`,
/// `conv 5×5×32 → relu → avgpool → LRN`,
/// `conv 5×5×64 → relu → avgpool`, `softmax` (dense head).
pub fn alex_cifar10(
    channels: usize,
    size: usize,
    n_classes: usize,
    rng: &mut impl Rng,
) -> Result<Sequential> {
    // The Caffe reference initializes these convolutions with tiny fixed
    // stds (1e-4 / 1e-2) and compensates with tens of thousands of steps;
    // at reproduction scale that leaves the stack in its vanishing-signal
    // regime, so He initialization is used instead (the dense head keeps a
    // fixed small std as in the reference).
    let net = Sequential::new("alex-cifar-10")
        .push(Conv2d::new(
            "conv1",
            channels,
            32,
            5,
            1,
            2,
            WeightInit::He,
            rng,
        )?)
        .push(Pool2d::max("pool1", 3, 2)?)
        .push(ReLU::new("relu1"))
        .push(Lrn::alexnet("norm1"))
        .push(Conv2d::new("conv2", 32, 32, 5, 1, 2, WeightInit::He, rng)?)
        .push(ReLU::new("relu2"))
        .push(Pool2d::avg("pool2", 3, 2)?)
        .push(Lrn::alexnet("norm2"))
        .push(Conv2d::new("conv3", 32, 64, 5, 1, 2, WeightInit::He, rng)?)
        .push(ReLU::new("relu3"))
        .push(Pool2d::avg("pool3", 3, 2)?)
        .push(Flatten::new("flatten"));
    // Dense head: input features depend on the pooled spatial size.
    let feat_dims = net.output_dims(&[channels, size, size])?;
    let feat: usize = feat_dims.iter().product();
    Ok(net.push(Dense::new(
        "dense",
        feat,
        n_classes,
        WeightInit::Gaussian { std: 0.01 },
        rng,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::param::VisitParams;
    use gmreg_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weight_dimensionality_matches_paper() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = alex_cifar10(3, 32, 10, &mut rng).unwrap();
        let mut weights = 0usize;
        net.visit_params(&mut |p| {
            if p.name.ends_with("/weight") {
                weights += p.len();
            }
        });
        // conv1 2400 + conv2 25600 + conv3 51200 + dense 10240 = 89440
        assert_eq!(weights, 89_440, "paper Section V-A: 89440 dimensions");
    }

    #[test]
    fn forward_backward_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = alex_cifar10(3, 32, 10, &mut rng).unwrap();
        let x = Tensor::zeros([2, 3, 32, 32]);
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        let g = net.backward(&Tensor::ones([2, 10])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 32, 32]);
    }

    #[test]
    fn layer_names_match_table_iv() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = alex_cifar10(3, 32, 10, &mut rng).unwrap();
        let mut names = Vec::new();
        net.visit_params(&mut |p| {
            if p.name.ends_with("/weight") {
                names.push(p.name.clone());
            }
        });
        assert_eq!(
            names,
            vec![
                "conv1/weight",
                "conv2/weight",
                "conv3/weight",
                "dense/weight"
            ]
        );
    }

    #[test]
    fn works_at_smaller_resolutions() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = alex_cifar10(3, 16, 10, &mut rng).unwrap();
        let y = net.forward(&Tensor::zeros([1, 3, 16, 16]), true).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }
}

//! The paper's 20-layer CIFAR ResNet (Table III, right column).
//!
//! `conv 3×3×16 + BN + ReLU`, then three stacks of `n = 3` basic blocks
//! with 16, 32 and 64 filters (stride-2 projection at stack boundaries),
//! global average pooling and a 10-way dense head named `ip5` as in
//! Table V. At 32×32×3 input the weight dimensionality is exactly the
//! paper's 270,896.

use crate::activation::ReLU;
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::error::Result;
use crate::init::WeightInit;
use crate::pool::GlobalAvgPool;
use crate::residual::BasicBlock;
use crate::sequential::Sequential;
use rand::Rng;

/// Builds a CIFAR ResNet with `6n + 2` weighted layers (`n` blocks per
/// stack); `n = 3` gives the paper's ResNet-20.
pub fn resnet(
    channels: usize,
    n_classes: usize,
    n: usize,
    rng: &mut impl Rng,
) -> Result<Sequential> {
    let mut net = Sequential::new(format!("resnet-{}", 6 * n + 2))
        .push(Conv2d::new(
            "conv1",
            channels,
            16,
            3,
            1,
            1,
            WeightInit::He,
            rng,
        )?)
        .push(BatchNorm2d::new("bn1", 16)?)
        .push(ReLU::new("relu1"));

    // Stacks are numbered 2, 3, 4 and blocks lettered a, b, c… to match the
    // paper's Table V layer names (2a-br1-conv1, 3a-br2-conv, …).
    let widths = [16usize, 32, 64];
    let mut in_c = 16;
    for (si, &w) in widths.iter().enumerate() {
        for b in 0..n {
            let letter = (b'a' + b as u8) as char;
            let name = format!("{}{}", si + 2, letter);
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            net.push_boxed(Box::new(BasicBlock::new(name, in_c, w, stride, rng)?));
            in_c = w;
        }
    }
    Ok(net.push(GlobalAvgPool::new("gap")).push(Dense::new(
        "ip5",
        64,
        n_classes,
        WeightInit::He,
        rng,
    )?))
}

/// The paper's exact configuration: ResNet-20 (`n = 3`).
pub fn resnet20(channels: usize, n_classes: usize, rng: &mut impl Rng) -> Result<Sequential> {
    resnet(channels, n_classes, 3, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::param::VisitParams;
    use gmreg_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weight_dimensionality_matches_paper() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = resnet20(3, 10, &mut rng).unwrap();
        let mut weights = 0usize;
        net.visit_params(&mut |p| {
            if p.name.ends_with("/weight") {
                weights += p.len();
            }
        });
        assert_eq!(weights, 270_896, "paper Section V-A: 270896 dimensions");
    }

    #[test]
    fn has_twenty_weighted_conv_dense_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = resnet20(3, 10, &mut rng).unwrap();
        let mut conv_dense = 0;
        net.visit_params(&mut |p| {
            // Count main-path weighted layers the way He et al. do: the
            // stem conv, two convs per block, and the dense head.
            // Projection (br2) convs are not counted in "20".
            if p.name.ends_with("/weight") && !p.name.contains("br2") {
                conv_dense += 1;
            }
        });
        assert_eq!(conv_dense, 20);
    }

    #[test]
    fn layer_names_match_table_v() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = resnet20(3, 10, &mut rng).unwrap();
        let mut names = Vec::new();
        net.visit_params(&mut |p| {
            if p.name.ends_with("/weight") {
                names.push(p.name.clone());
            }
        });
        for expect in [
            "conv1/weight",
            "2a-br1-conv1/weight",
            "2a-br1-conv2/weight",
            "3a-br2-conv/weight",
            "3a-br1-conv1/weight",
            "4a-br2-conv/weight",
            "4a-br1-conv1/weight",
            "ip5/weight",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = resnet20(3, 10, &mut rng).unwrap();
        let x = Tensor::zeros([2, 3, 32, 32]);
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        let g = net.backward(&Tensor::ones([2, 10])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 32, 32]);
        assert_eq!(net.output_dims(&[3, 32, 32]).unwrap(), vec![10]);
    }

    #[test]
    fn smaller_n_builds_shallower_nets() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = resnet(3, 10, 1, &mut rng).unwrap();
        let y = net.forward(&Tensor::zeros([1, 3, 16, 16]), true).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
        assert_eq!(net.name(), "resnet-8");
    }
}

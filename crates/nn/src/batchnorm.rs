//! 2-D batch normalization — the regularizing ingredient the paper credits
//! for ResNet needing weaker GM regularization than AlexNet (Section V-B2).

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;

/// Per-channel batch normalization over `[N, C, H, W]` inputs with
/// learnable scale (γ) and shift (β), plus running statistics for
/// evaluation mode.
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Builds a batch-norm layer for `channels` feature maps.
    pub fn new(name: impl Into<String>, channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidConfig {
                field: "channels",
                reason: "must be positive".into(),
            });
        }
        let name = name.into();
        Ok(BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.9,
            gamma: Param::new(format!("{name}/gamma"), Tensor::ones([channels]), 0.0),
            beta: Param::new(format!("{name}/beta"), Tensor::zeros([channels]), 0.0),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            name,
            cache: None,
        })
    }

    fn check_input(&self, x: &Tensor) -> Result<[usize; 4]> {
        let d = x.dims();
        if d.len() != 4 || d[1] != self.channels {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: format!("[N, {}, H, W]", self.channels),
            });
        }
        Ok([d[0], d[1], d[2], d[3]])
    }
}

impl VisitParams for BatchNorm2d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let [n, c, h, w] = self.check_input(x)?;
        let hw = h * w;
        let m = (n * hw) as f32;
        let xs = x.as_slice();
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let mut out = vec![0.0f32; xs.len()];

        if train {
            let mut x_hat = vec![0.0f32; xs.len()];
            let mut inv_std = vec![0.0f32; c];
            for ci in 0..c {
                let mut mean = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    mean += xs[base..base + hw].iter().map(|&v| v as f64).sum::<f64>();
                }
                let mean = (mean / m as f64) as f32;
                let mut var = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    var += xs[base..base + hw]
                        .iter()
                        .map(|&v| ((v - mean) as f64).powi(2))
                        .sum::<f64>();
                }
                let var = (var / m as f64) as f32;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[ci] = istd;
                self.running_mean[ci] =
                    self.momentum * self.running_mean[ci] + (1.0 - self.momentum) * mean;
                self.running_var[ci] =
                    self.momentum * self.running_var[ci] + (1.0 - self.momentum) * var;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    for p in 0..hw {
                        let xh = (xs[base + p] - mean) * istd;
                        x_hat[base + p] = xh;
                        out[base + p] = g[ci] * xh + b[ci];
                    }
                }
            }
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, x.dims().to_vec())?,
                inv_std,
            });
        } else {
            for ci in 0..c {
                let istd = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let mean = self.running_mean[ci];
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    for p in 0..hw {
                        out[base + p] = g[ci] * (xs[base + p] - mean) * istd + b[ci];
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, x.dims().to_vec())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let d = cache.x_hat.dims();
        if grad_out.dims() != d {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("{d:?}"),
            });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        let hw = h * w;
        let m = (n * hw) as f32;
        let go = grad_out.as_slice();
        let xh = cache.x_hat.as_slice();
        let g = self.gamma.value.as_slice();
        let mut dx = vec![0.0f32; go.len()];

        // The NCHW stride pattern needs explicit channel indexing.
        #[allow(clippy::needless_range_loop)]
        for ci in 0..c {
            // Per-channel sums needed by the closed-form backward pass.
            let mut sum_go = 0.0f64;
            let mut sum_go_xh = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for p in 0..hw {
                    sum_go += go[base + p] as f64;
                    sum_go_xh += (go[base + p] * xh[base + p]) as f64;
                }
            }
            self.gamma.grad.as_mut_slice()[ci] += sum_go_xh as f32;
            self.beta.grad.as_mut_slice()[ci] += sum_go as f32;

            let istd = cache.inv_std[ci];
            let k1 = (sum_go as f32) / m;
            let k2 = (sum_go_xh as f32) / m;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for p in 0..hw {
                    let i = base + p;
                    dx[i] = g[ci] * istd * (go[i] - k1 - xh[i] * k2);
                }
            }
        }
        Ok(Tensor::from_vec(dx, d.to_vec())?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 3 || input_dims[0] != self.channels {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: input_dims.to_vec(),
                expected: format!("[{}, H, W]", self.channels),
            });
        }
        Ok(input_dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::{check_input_grad, check_param_grads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new("bn", 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&mut rng, [8, 2, 4, 4], 3.0, 2.0);
        let y = bn.forward(&x, true).unwrap();
        // per-channel mean ~0, var ~1
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..8 {
                for h in 0..4 {
                    for w in 0..4 {
                        vals.push(y.get(&[n, c, h, w]).unwrap() as f64);
                    }
                }
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Train on many batches so running stats converge to (3, 4).
        for _ in 0..200 {
            let x = Tensor::randn(&mut rng, [16, 1, 2, 2], 3.0, 2.0);
            bn.forward(&x, true).unwrap();
        }
        assert!((bn.running_mean[0] - 3.0).abs() < 0.2);
        assert!((bn.running_var[0] - 4.0).abs() < 0.5);
        // In eval mode a constant input x = 3 maps near 0.
        let y = bn.forward(&Tensor::full([1, 1, 2, 2], 3.0), false).unwrap();
        assert!(y.as_slice().iter().all(|v| v.abs() < 0.1));
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(&mut rng, [4, 3, 3, 3], 0.0, 1.0);
        let mut bn = BatchNorm2d::new("bn", 3).unwrap();
        // Non-trivial gamma/beta so parameter grads are exercised.
        bn.gamma.value = Tensor::from_slice(&[1.5, 0.5, 2.0]);
        bn.beta.value = Tensor::from_slice(&[0.1, -0.2, 0.3]);
        check_input_grad(&mut bn, &x, 3e-2);
        check_param_grads(&mut bn, &x, 3e-2);
    }

    #[test]
    fn validation() {
        assert!(BatchNorm2d::new("bn", 0).is_err());
        let mut bn = BatchNorm2d::new("bn", 2).unwrap();
        assert!(bn.forward(&Tensor::zeros([1, 3, 2, 2]), true).is_err());
        assert!(bn.backward(&Tensor::zeros([1, 2, 2, 2])).is_err());
        bn.forward(&Tensor::zeros([1, 2, 2, 2]), true).unwrap();
        assert!(bn.backward(&Tensor::zeros([1, 2, 2, 3])).is_err());
        assert!(bn.output_dims(&[3, 2, 2]).is_err());
        assert_eq!(bn.output_dims(&[2, 5, 5]).unwrap(), vec![2, 5, 5]);
        assert_eq!(bn.n_params(), 4);
    }
}

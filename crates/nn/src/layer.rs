//! The [`Layer`] trait: explicit forward / backward passes.

use crate::error::Result;
use crate::param::VisitParams;
use gmreg_tensor::Tensor;

/// A differentiable network layer.
///
/// Layers cache whatever they need during `forward` and consume that cache
/// in the matching `backward` call. Parameter gradients accumulate into
/// each [`Param`](crate::Param)'s `grad` buffer; `backward` returns the
/// gradient with respect to the layer's input so containers can chain.
pub trait Layer: VisitParams {
    /// Human-readable layer name (used to qualify parameter names).
    fn name(&self) -> &str;

    /// Computes the layer output. `train` switches training-only behaviour
    /// (batch-norm batch statistics vs. running statistics).
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor>;

    /// Backpropagates `grad_out` (gradient w.r.t. the layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the input.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// The output shape for a given input shape (no batch dimension), used
    /// for construction-time validation.
    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>>;
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared finite-difference gradient checking for layer tests.

    use super::*;
    use crate::param::Param;
    use gmreg_tensor::Tensor;

    /// Scalar objective used by the checks: sum of `c[i] * out[i]` with
    /// fixed pseudo-random coefficients, so the output gradient is `c`.
    fn coeffs(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (((i * 2654435761) % 1000) as f32 / 500.0) - 1.0)
            .collect()
    }

    /// Verifies `backward`'s input gradient against finite differences.
    pub fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true).unwrap();
        let c = coeffs(out.len());
        let grad_out = Tensor::from_vec(c.clone(), out.shape().clone()).unwrap();
        let gin = layer.backward(&grad_out).unwrap();
        assert!(gin.shape().same_dims(x.shape()));

        let eps = 1e-2f32;
        for i in (0..x.len()).step_by((x.len() / 24).max(1)) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let op = layer.forward(&xp, true).unwrap();
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let om = layer.forward(&xm, true).unwrap();
            let mut num = 0.0f64;
            for ((&cj, &opj), &omj) in c.iter().zip(op.as_slice()).zip(om.as_slice()) {
                num += cj as f64 * (opj - omj) as f64;
            }
            num /= 2.0 * eps as f64;
            let got = gin.as_slice()[i] as f64;
            assert!(
                (num - got).abs() <= tol as f64 * (1.0 + num.abs()),
                "input grad dim {i}: numeric {num} vs analytic {got}"
            );
        }
    }

    /// Verifies parameter gradients against finite differences.
    pub fn check_param_grads(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true).unwrap();
        let c = coeffs(out.len());
        let grad_out = Tensor::from_vec(c.clone(), out.shape().clone()).unwrap();
        layer.visit_params(&mut |p: &mut Param| p.zero_grad());
        layer.backward(&grad_out).unwrap();

        // Snapshot analytic gradients.
        let mut grads: Vec<(String, Vec<f32>)> = Vec::new();
        layer.visit_params(&mut |p: &mut Param| {
            grads.push((p.name.clone(), p.grad.as_slice().to_vec()));
        });

        fn perturb(layer: &mut dyn Layer, pi: usize, i: usize, delta: f32) {
            let mut idx = 0;
            layer.visit_params(&mut |p: &mut Param| {
                if idx == pi {
                    p.value.as_mut_slice()[i] += delta;
                }
                idx += 1;
            });
        }

        let fd = |layer: &mut dyn Layer, pi: usize, i: usize, eps: f32| -> f64 {
            perturb(layer, pi, i, eps);
            let op = layer.forward(x, true).unwrap();
            perturb(layer, pi, i, -2.0 * eps);
            let om = layer.forward(x, true).unwrap();
            perturb(layer, pi, i, eps); // restore
            let mut num = 0.0f64;
            for ((&cj, &opj), &omj) in c.iter().zip(op.as_slice()).zip(om.as_slice()) {
                num += cj as f64 * (opj - omj) as f64;
            }
            num / (2.0 * eps as f64)
        };

        for (pi, (pname, analytic)) in grads.iter().enumerate() {
            let n = analytic.len();
            for i in (0..n).step_by((n / 12).max(1)) {
                // Two step sizes: when they disagree the objective is not
                // smooth at this point (a ReLU kink sits inside the
                // perturbation window) and finite differences are not a
                // valid reference — skip the dim.
                let num_a = fd(layer, pi, i, 1e-2);
                let num_b = fd(layer, pi, i, 2.5e-3);
                if (num_a - num_b).abs() > 0.05 * (1.0 + num_a.abs().max(num_b.abs())) {
                    continue;
                }
                let got = analytic[i] as f64;
                assert!(
                    (num_b - got).abs() <= tol as f64 * (1.0 + num_b.abs()),
                    "{pname} grad dim {i}: numeric {num_b} vs analytic {got}"
                );
            }
        }
    }
}

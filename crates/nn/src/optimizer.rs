//! Stochastic gradient descent with momentum — the model-parameter side of
//! the paper's interleaved SGD+EM update (Fig. 2).

use crate::error::{NnError, Result};
use crate::param::{Param, VisitParams};
use crate::tele;
use gmreg_core::StepCtx;

/// Below this many scalar parameters (totalled across groups) a step stays
/// serial: the per-group work is too small to amortize the fork.
#[cfg(feature = "parallel")]
const MIN_PARALLEL_STEP_PARAMS: usize = 1 << 15;

/// The per-group SGD-with-momentum update (Algorithm 2 lines 4–12 for the
/// group): regularize, advance velocity, apply, zero the gradient.
fn step_param(p: &mut Param, ctx: StepCtx, lr: f32, mu: f32) {
    p.apply_regularizer(ctx);
    let g = p.grad.as_slice();
    let v = p.velocity.as_mut_slice();
    let w = p.value.as_mut_slice();
    for i in 0..w.len() {
        v[i] = mu * v[i] - lr * g[i];
        w[i] += v[i];
    }
    p.zero_grad();
}

/// SGD with classical momentum.
///
/// On each [`Sgd::step`], for every parameter group:
/// 1. the group's regularizer (if any) adds `g_reg` to the gradient and
///    advances its own EM / lazy-update state (Algorithm 2 lines 4–11);
/// 2. `v ← momentum·v − lr·(g_ll + g_reg)`, `w ← w + v` (line 12);
/// 3. the gradient buffer is zeroed for the next batch.
///
/// The optimizer owns the iteration / epoch counters that drive the GM
/// regularizer's lazy schedule.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    iteration: u64,
    epoch: u64,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Result<Self> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::InvalidConfig {
                field: "lr",
                reason: format!("must be positive and finite, got {lr}"),
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidConfig {
                field: "momentum",
                reason: format!("must lie in [0, 1), got {momentum}"),
            });
        }
        Ok(Sgd {
            lr,
            momentum,
            iteration: 0,
            epoch: 0,
        })
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for step-decay schedules).
    pub fn set_lr(&mut self, lr: f32) -> Result<()> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::InvalidConfig {
                field: "lr",
                reason: format!("must be positive and finite, got {lr}"),
            });
        }
        self.lr = lr;
        Ok(())
    }

    /// Global iteration counter (`it` of Algorithm 2).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Epoch counter (`epoch_it` of Algorithm 2).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restores the iteration / epoch counters when resuming from a
    /// checkpoint, so the lazy schedule continues exactly where the
    /// interrupted run stopped.
    pub fn resume_at(&mut self, iteration: u64, epoch: u64) {
        self.iteration = iteration;
        self.epoch = epoch;
    }

    /// Applies one SGD step to every parameter of `model`.
    ///
    /// With the `parallel` feature, models with several parameter groups
    /// step them on different threads (one worker per group at most).
    /// Groups are independent — each owns its weights, buffers and
    /// regularizer state — so the result is identical to the serial order.
    pub fn step(&mut self, model: &mut dyn VisitParams) {
        tele::counter_inc("sgd.steps");
        let _t = tele::span("sgd.step.ns");
        let ctx = StepCtx::new(self.iteration, self.epoch);
        let (lr, mu) = (self.lr, self.momentum);
        #[cfg(feature = "parallel")]
        {
            let mut params = model.params_mut();
            let total: usize = params.iter().map(|p| p.len()).sum();
            let threads = gmreg_parallel::effective_threads(params.len(), 1);
            if params.len() >= 2 && total >= MIN_PARALLEL_STEP_PARAMS && threads > 1 {
                gmreg_parallel::for_each_part(&mut params, threads, |_, p| {
                    step_param(p, ctx, lr, mu);
                });
                self.iteration += 1;
                return;
            }
        }
        model.visit_params(&mut |p| step_param(p, ctx, lr, mu));
        self.iteration += 1;
    }

    /// [`Sgd::step`] with an explicit worker count, for equivalence tests;
    /// production code uses [`Sgd::step`], which sizes the pool from the
    /// model and the pool policy.
    #[cfg(feature = "parallel")]
    pub fn step_with_threads(&mut self, model: &mut dyn VisitParams, threads: usize) {
        let ctx = StepCtx::new(self.iteration, self.epoch);
        let (lr, mu) = (self.lr, self.momentum);
        let mut params = model.params_mut();
        gmreg_parallel::for_each_part(&mut params, threads, |_, p| {
            step_param(p, ctx, lr, mu);
        });
        self.iteration += 1;
    }

    /// Marks the end of an epoch, advancing the epoch counter and
    /// notifying every attached regularizer.
    pub fn end_epoch(&mut self, model: &mut dyn VisitParams) {
        self.epoch += 1;
        model.visit_params(&mut |p| {
            if let Some(r) = p.regularizer.as_mut() {
                r.end_epoch();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use gmreg_core::L2Reg;
    use gmreg_tensor::Tensor;

    struct OneParam(Param);
    impl VisitParams for OneParam {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
        }

        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.0]
        }
    }

    #[test]
    fn plain_sgd_descends() {
        let mut p = OneParam(Param::new("w", Tensor::from_slice(&[1.0, -1.0]), 0.1));
        p.0.grad = Tensor::from_slice(&[0.5, -0.5]);
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        opt.step(&mut p);
        assert_eq!(p.0.value.as_slice(), &[0.95, -0.95]);
        assert_eq!(p.0.grad.as_slice(), &[0.0, 0.0], "grad zeroed after step");
        assert_eq!(opt.iteration(), 1);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = OneParam(Param::new("w", Tensor::from_slice(&[0.0]), 0.1));
        let mut opt = Sgd::new(1.0, 0.5).unwrap();
        // constant unit gradient for three steps
        for _ in 0..3 {
            p.0.grad = Tensor::from_slice(&[1.0]);
            opt.step(&mut p);
        }
        // v: -1, -1.5, -1.75 -> w = -(1 + 1.5 + 1.75)
        assert!((p.0.value.as_slice()[0] + 4.25).abs() < 1e-6);
    }

    #[test]
    fn regularizer_contributes() {
        let mut p = OneParam(Param::new("w", Tensor::from_slice(&[1.0]), 0.1));
        p.0.regularizer = Some(Box::new(L2Reg::new(1.0).unwrap()));
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        opt.step(&mut p); // g_ll = 0, g_reg = w = 1 -> w = 1 - 0.1
        assert!((p.0.value.as_slice()[0] - 0.9).abs() < 1e-6);
        opt.end_epoch(&mut p);
        assert_eq!(opt.epoch(), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_step_is_bit_identical_to_serial() {
        use crate::dense::Dense;
        use crate::init::WeightInit;
        use crate::sequential::Sequential;
        use gmreg_core::gm::{GmConfig, GmRegularizer};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Two identically-built two-layer models with GM regularizers on
        // the weights, identical gradients, stepped with 1 vs 4 workers.
        let build = || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut net = Sequential::new("mlp")
                .push(Dense::new("fc1", 20, 30, WeightInit::He, &mut rng).unwrap())
                .push(Dense::new("fc2", 30, 10, WeightInit::He, &mut rng).unwrap());
            for (gi, p) in net.params_mut().into_iter().enumerate() {
                let m = p.len();
                p.regularizer = Some(Box::new(
                    GmRegularizer::new(m, 0.1, GmConfig::default()).unwrap(),
                ));
                for (i, g) in p.grad.as_mut_slice().iter_mut().enumerate() {
                    *g = ((i + gi) % 13) as f32 * 0.01 - 0.06;
                }
            }
            net
        };
        let mut serial = build();
        let mut parallel = build();
        let mut opt_s = Sgd::new(0.05, 0.9).unwrap();
        let mut opt_p = Sgd::new(0.05, 0.9).unwrap();
        for _ in 0..3 {
            opt_s.step_with_threads(&mut serial, 1);
            opt_p.step_with_threads(&mut parallel, 4);
        }
        let ws: Vec<&mut Param> = serial.params_mut();
        let wp: Vec<&mut Param> = parallel.params_mut();
        for (a, b) in ws.iter().zip(wp.iter()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice(), "group {}", a.name);
            assert_eq!(a.velocity.as_slice(), b.velocity.as_slice());
        }
    }

    #[test]
    fn validation() {
        assert!(Sgd::new(0.0, 0.9).is_err());
        assert!(Sgd::new(f32::NAN, 0.9).is_err());
        assert!(Sgd::new(0.1, 1.0).is_err());
        assert!(Sgd::new(0.1, -0.1).is_err());
        let mut opt = Sgd::new(0.1, 0.9).unwrap();
        assert_eq!(opt.lr(), 0.1);
        assert!(opt.set_lr(0.01).is_ok());
        assert_eq!(opt.lr(), 0.01);
        assert!(opt.set_lr(-1.0).is_err());
    }
}

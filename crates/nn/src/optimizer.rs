//! Stochastic gradient descent with momentum — the model-parameter side of
//! the paper's interleaved SGD+EM update (Fig. 2).

use crate::error::{NnError, Result};
use crate::param::VisitParams;
use gmreg_core::StepCtx;

/// SGD with classical momentum.
///
/// On each [`Sgd::step`], for every parameter group:
/// 1. the group's regularizer (if any) adds `g_reg` to the gradient and
///    advances its own EM / lazy-update state (Algorithm 2 lines 4–11);
/// 2. `v ← momentum·v − lr·(g_ll + g_reg)`, `w ← w + v` (line 12);
/// 3. the gradient buffer is zeroed for the next batch.
///
/// The optimizer owns the iteration / epoch counters that drive the GM
/// regularizer's lazy schedule.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    iteration: u64,
    epoch: u64,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Result<Self> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::InvalidConfig {
                field: "lr",
                reason: format!("must be positive and finite, got {lr}"),
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidConfig {
                field: "momentum",
                reason: format!("must lie in [0, 1), got {momentum}"),
            });
        }
        Ok(Sgd {
            lr,
            momentum,
            iteration: 0,
            epoch: 0,
        })
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for step-decay schedules).
    pub fn set_lr(&mut self, lr: f32) -> Result<()> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::InvalidConfig {
                field: "lr",
                reason: format!("must be positive and finite, got {lr}"),
            });
        }
        self.lr = lr;
        Ok(())
    }

    /// Global iteration counter (`it` of Algorithm 2).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Epoch counter (`epoch_it` of Algorithm 2).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one SGD step to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn VisitParams) {
        let ctx = StepCtx::new(self.iteration, self.epoch);
        let (lr, mu) = (self.lr, self.momentum);
        model.visit_params(&mut |p| {
            p.apply_regularizer(ctx);
            let g = p.grad.as_slice();
            let v = p.velocity.as_mut_slice();
            let w = p.value.as_mut_slice();
            for i in 0..w.len() {
                v[i] = mu * v[i] - lr * g[i];
                w[i] += v[i];
            }
            p.zero_grad();
        });
        self.iteration += 1;
    }

    /// Marks the end of an epoch, advancing the epoch counter and
    /// notifying every attached regularizer.
    pub fn end_epoch(&mut self, model: &mut dyn VisitParams) {
        self.epoch += 1;
        model.visit_params(&mut |p| {
            if let Some(r) = p.regularizer.as_mut() {
                r.end_epoch();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use gmreg_core::L2Reg;
    use gmreg_tensor::Tensor;

    struct OneParam(Param);
    impl VisitParams for OneParam {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
        }
    }

    #[test]
    fn plain_sgd_descends() {
        let mut p = OneParam(Param::new("w", Tensor::from_slice(&[1.0, -1.0]), 0.1));
        p.0.grad = Tensor::from_slice(&[0.5, -0.5]);
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        opt.step(&mut p);
        assert_eq!(p.0.value.as_slice(), &[0.95, -0.95]);
        assert_eq!(p.0.grad.as_slice(), &[0.0, 0.0], "grad zeroed after step");
        assert_eq!(opt.iteration(), 1);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = OneParam(Param::new("w", Tensor::from_slice(&[0.0]), 0.1));
        let mut opt = Sgd::new(1.0, 0.5).unwrap();
        // constant unit gradient for three steps
        for _ in 0..3 {
            p.0.grad = Tensor::from_slice(&[1.0]);
            opt.step(&mut p);
        }
        // v: -1, -1.5, -1.75 -> w = -(1 + 1.5 + 1.75)
        assert!((p.0.value.as_slice()[0] + 4.25).abs() < 1e-6);
    }

    #[test]
    fn regularizer_contributes() {
        let mut p = OneParam(Param::new("w", Tensor::from_slice(&[1.0]), 0.1));
        p.0.regularizer = Some(Box::new(L2Reg::new(1.0).unwrap()));
        let mut opt = Sgd::new(0.1, 0.0).unwrap();
        opt.step(&mut p); // g_ll = 0, g_reg = w = 1 -> w = 1 - 0.1
        assert!((p.0.value.as_slice()[0] - 0.9).abs() < 1e-6);
        opt.end_epoch(&mut p);
        assert_eq!(opt.epoch(), 1);
    }

    #[test]
    fn validation() {
        assert!(Sgd::new(0.0, 0.9).is_err());
        assert!(Sgd::new(f32::NAN, 0.9).is_err());
        assert!(Sgd::new(0.1, 1.0).is_err());
        assert!(Sgd::new(0.1, -0.1).is_err());
        let mut opt = Sgd::new(0.1, 0.9).unwrap();
        assert_eq!(opt.lr(), 0.1);
        assert!(opt.set_lr(0.01).is_ok());
        assert_eq!(opt.lr(), 0.01);
        assert!(opt.set_lr(-1.0).is_err());
    }
}

//! Softmax cross-entropy loss — the negative log-likelihood term
//! (`g_ll` producer) of Eq. 8/10.

use crate::error::{NnError, Result};
use gmreg_tensor::Tensor;

/// Combined softmax + cross-entropy over logits `[N, C]`.
///
/// Fusing the two yields the numerically stable gradient
/// `(softmax(z) − one_hot(y)) / N`.
#[derive(Debug, Default)]
pub struct SoftmaxCrossEntropy {
    cache: Option<(Tensor, Vec<usize>)>,
}

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy::default()
    }

    /// Computes the mean cross-entropy of `logits` against `labels` and
    /// caches the softmax for [`SoftmaxCrossEntropy::backward`].
    pub fn forward(&mut self, logits: &Tensor, labels: &[usize]) -> Result<f64> {
        let d = logits.dims();
        if d.len() != 2 || d[0] != labels.len() {
            return Err(NnError::BadInput {
                layer: "softmax-ce".into(),
                got: d.to_vec(),
                expected: format!("[{}, C]", labels.len()),
            });
        }
        let (n, c) = (d[0], d[1]);
        if n == 0 {
            return Err(NnError::InvalidConfig {
                field: "logits",
                reason: "empty batch".into(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
            return Err(NnError::InvalidConfig {
                field: "labels",
                reason: format!("label {bad} out of range for {c} classes"),
            });
        }
        let mut probs = logits.clone();
        let mut loss = 0.0f64;
        for r in 0..n {
            let row = &mut probs.as_mut_slice()[r * c..(r + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f64;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                z += *v as f64;
            }
            for v in row.iter_mut() {
                *v = (*v as f64 / z) as f32;
            }
            loss -= (row[labels[r]] as f64).max(1e-30).ln();
        }
        self.cache = Some((probs, labels.to_vec()));
        Ok(loss / n as f64)
    }

    /// Gradient of the mean loss with respect to the logits.
    pub fn backward(&mut self) -> Result<Tensor> {
        let (probs, labels) = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "softmax-ce".into(),
        })?;
        let (n, c) = (probs.dims()[0], probs.dims()[1]);
        let mut grad = probs.clone();
        let gs = grad.as_mut_slice();
        for (r, &l) in labels.iter().enumerate() {
            gs[r * c + l] -= 1.0;
        }
        grad.scale(1.0 / n as f32);
        Ok(grad)
    }

    /// Accuracy of the cached softmax probabilities against their labels.
    pub fn cached_accuracy(&self) -> Result<f64> {
        let (probs, labels) = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "softmax-ce".into(),
        })?;
        let preds = probs.argmax_rows()?;
        let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(hits as f64 / labels.len() as f64)
    }
}

/// Accuracy of raw logits `[N, C]` against labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(NnError::BadInput {
            layer: "accuracy".into(),
            got: logits.dims().to_vec(),
            expected: format!("[{}, C]", labels.len()),
        });
    }
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(hits as f64 / labels.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_of_uniform_logits_is_ln_c() {
        let mut ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros([4, 3]);
        let loss = ce.forward(&logits, &[0, 1, 2, 0]).unwrap();
        assert!((loss - (3.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn perfect_logits_have_near_zero_loss() {
        let mut ce = SoftmaxCrossEntropy::new();
        let mut logits = Tensor::zeros([2, 2]);
        logits.set2(0, 0, 50.0);
        logits.set2(1, 1, 50.0);
        let loss = ce.forward(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-6);
        assert_eq!(ce.cached_accuracy().unwrap(), 1.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.2, -0.5, 1.0, 0.3, 0.1, -0.2], [2, 3]).unwrap();
        let labels = [2usize, 0];
        ce.forward(&logits, &labels).unwrap();
        let grad = ce.backward().unwrap();
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let mut ce2 = SoftmaxCrossEntropy::new();
            let fp = ce2.forward(&lp, &labels).unwrap();
            let fm = ce2.forward(&lm, &labels).unwrap();
            let num = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (num - grad.as_slice()[i] as f64).abs() < 1e-4,
                "dim {i}: {num} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![3.0, -1.0, 0.5, 0.0], [2, 2]).unwrap();
        ce.forward(&logits, &[0, 1]).unwrap();
        let g = ce.backward().unwrap();
        for r in 0..2 {
            let s: f32 = g.row_slice(r).unwrap().iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let mut ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1e4, -1e4, 0.0, 1e4], [2, 2]).unwrap();
        let loss = ce.forward(&logits, &[1, 0]).unwrap();
        assert!(loss.is_finite());
        assert!(ce
            .backward()
            .unwrap()
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn validation() {
        let mut ce = SoftmaxCrossEntropy::new();
        assert!(ce.backward().is_err());
        assert!(ce.cached_accuracy().is_err());
        assert!(ce.forward(&Tensor::zeros([2, 2]), &[0]).is_err());
        assert!(ce.forward(&Tensor::zeros([1, 2]), &[2]).is_err());
        assert!(ce.forward(&Tensor::zeros([0, 2]), &[]).is_err());
        assert!(ce.forward(&Tensor::zeros([4]), &[0]).is_err());
    }

    #[test]
    fn accuracy_helper() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]).unwrap(), 0.5);
        assert!(accuracy(&logits, &[0]).is_err());
    }
}

//! Activation and reshaping layers: ReLU and Flatten.

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;

/// Rectified linear unit, applied elementwise.
pub struct ReLU {
    name: String,
    /// Mask of active elements from the last forward pass.
    mask: Option<Vec<bool>>,
    out_dims: Vec<usize>,
}

impl ReLU {
    /// Builds a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        ReLU {
            name: name.into(),
            mask: None,
            out_dims: Vec::new(),
        }
    }
}

impl VisitParams for ReLU {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

impl Layer for ReLU {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let mut out = x.clone();
        let mut mask = vec![false; x.len()];
        for (v, m) in out.as_mut_slice().iter_mut().zip(mask.iter_mut()) {
            if *v > 0.0 {
                *m = true;
            } else {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        self.out_dims = x.dims().to_vec();
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        if grad_out.dims() != self.out_dims {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("{:?}", self.out_dims),
            });
        }
        let mut dx = grad_out.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        Ok(dx)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }
}

/// Flattens `[N, ...]` to `[N, features]`.
pub struct Flatten {
    name: String,
    in_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Builds a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten {
            name: name.into(),
            in_dims: None,
        }
    }
}

impl VisitParams for Flatten {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let d = x.dims();
        if d.is_empty() {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: "[N, ...]".into(),
            });
        }
        let n = d[0];
        let feat: usize = d[1..].iter().product();
        self.in_dims = Some(d.to_vec());
        Ok(x.reshape([n, feat])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let in_dims = self
            .in_dims
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache {
                layer: self.name.clone(),
            })?;
        Ok(grad_out.reshape(in_dims.clone())?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(vec![input_dims.iter().product()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::check_input_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_clamps_and_masks() {
        let mut r = ReLU::new("relu");
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0])
            .reshape([1, 3])
            .unwrap();
        let y = r.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = r
            .backward(
                &Tensor::from_slice(&[5.0, 5.0, 5.0])
                    .reshape([1, 3])
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn relu_grad_check() {
        let mut rng = StdRng::seed_from_u64(6);
        // offset so no element sits exactly at the kink
        let x = Tensor::randn(&mut rng, [3, 7], 0.5, 1.0);
        check_input_grad(&mut ReLU::new("r"), &x, 1e-2);
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new("fl");
        let x = Tensor::ones([2, 3, 4]);
        let y = f.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&Tensor::ones([2, 12])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4]);
        assert_eq!(f.output_dims(&[3, 4]).unwrap(), vec![12]);
    }

    #[test]
    fn cache_discipline() {
        let mut r = ReLU::new("r");
        assert!(r.backward(&Tensor::zeros([1])).is_err());
        r.forward(&Tensor::zeros([2, 2]), true).unwrap();
        assert!(r.backward(&Tensor::zeros([2, 3])).is_err());
        let mut f = Flatten::new("f");
        assert!(f.backward(&Tensor::zeros([1])).is_err());
        assert_eq!(ReLU::new("r").n_params() + Flatten::new("f").n_params(), 0);
    }
}

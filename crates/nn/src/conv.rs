//! 2-D convolution via im2col + matmul.

use crate::error::{NnError, Result};
use crate::init::WeightInit;
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;
use rand::Rng;

/// A 2-D convolution layer.
///
/// Input `[N, C, H, W]`, weight `[C·kh·kw, F]` (im2col layout), output
/// `[N, F, OH, OW]` with `OH = (H + 2·pad − kh)/stride + 1`.
pub struct Conv2d {
    name: String,
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    w: Param,
    b: Param,
    cache: Option<ConvCache>,
}

struct ConvCache {
    cols: Tensor,
    in_dims: [usize; 4],
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Builds a convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        init: WeightInit,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if in_c == 0 || out_c == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidConfig {
                field: "conv2d",
                reason: "channels, kernel and stride must be positive".into(),
            });
        }
        let name = name.into();
        let k = in_c * kernel * kernel;
        let std = init.std(k);
        let data: Vec<f32> = (0..k * out_c).map(|_| init.sample(k, rng)).collect();
        let w = Param::new(
            format!("{name}/weight"),
            Tensor::from_vec(data, [k, out_c])?,
            std,
        );
        let b = Param::new(format!("{name}/bias"), Tensor::zeros([out_c]), 0.0);
        Ok(Conv2d {
            name,
            in_c,
            out_c,
            kh: kernel,
            kw: kernel,
            stride,
            pad,
            w,
            b,
            cache: None,
        })
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let h_eff = h + 2 * self.pad;
        let w_eff = w + 2 * self.pad;
        if h_eff < self.kh || w_eff < self.kw {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: vec![h, w],
                expected: format!("spatial size >= kernel {}x{}", self.kh, self.kw),
            });
        }
        Ok((
            (h_eff - self.kh) / self.stride + 1,
            (w_eff - self.kw) / self.stride + 1,
        ))
    }

    fn check_input(&self, x: &Tensor) -> Result<[usize; 4]> {
        let d = x.dims();
        if d.len() != 4 || d[1] != self.in_c {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: format!("[N, {}, H, W]", self.in_c),
            });
        }
        Ok([d[0], d[1], d[2], d[3]])
    }

    fn im2col(&self, x: &Tensor, dims: [usize; 4], oh: usize, ow: usize) -> Tensor {
        let [n, c, h, w] = dims;
        let k = c * self.kh * self.kw;
        let mut cols = vec![0.0f32; n * oh * ow * k];
        let xs = x.as_slice();
        let (s, p) = (self.stride as isize, self.pad as isize);
        for ni in 0..n {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let row = ((ni * oh + ohi) * ow + owi) * k;
                    let base_y = ohi as isize * s - p;
                    let base_x = owi as isize * s - p;
                    for ci in 0..c {
                        let plane = (ni * c + ci) * h * w;
                        for ky in 0..self.kh {
                            let sy = base_y + ky as isize;
                            let col0 = row + (ci * self.kh + ky) * self.kw;
                            if sy < 0 || sy >= h as isize {
                                continue; // stays zero
                            }
                            let src_row = plane + sy as usize * w;
                            for kx in 0..self.kw {
                                let sx = base_x + kx as isize;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                cols[col0 + kx] = xs[src_row + sx as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, [n * oh * ow, k]).expect("im2col volume")
    }

    fn col2im(&self, dcols: &Tensor, dims: [usize; 4], oh: usize, ow: usize) -> Tensor {
        let [n, c, h, w] = dims;
        let k = c * self.kh * self.kw;
        let mut dx = vec![0.0f32; n * c * h * w];
        let dc = dcols.as_slice();
        let (s, p) = (self.stride as isize, self.pad as isize);
        for ni in 0..n {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let row = ((ni * oh + ohi) * ow + owi) * k;
                    let base_y = ohi as isize * s - p;
                    let base_x = owi as isize * s - p;
                    for ci in 0..c {
                        let plane = (ni * c + ci) * h * w;
                        for ky in 0..self.kh {
                            let sy = base_y + ky as isize;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            let col0 = row + (ci * self.kh + ky) * self.kw;
                            let dst_row = plane + sy as usize * w;
                            for kx in 0..self.kw {
                                let sx = base_x + kx as isize;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                dx[dst_row + sx as usize] += dc[col0 + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, [n, c, h, w]).expect("col2im volume")
    }
}

impl VisitParams for Conv2d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let dims = self.check_input(x)?;
        let [n, _, h, w] = dims;
        let (oh, ow) = self.out_hw(h, w)?;
        let cols = self.im2col(x, dims, oh, ow);
        let out_mat = cols.matmul(&self.w.value)?; // [N*OH*OW, F]

        // Permute to [N, F, OH, OW] while adding bias.
        let f = self.out_c;
        let mut out = vec![0.0f32; n * f * oh * ow];
        let om = out_mat.as_slice();
        let bias = self.b.value.as_slice();
        for ni in 0..n {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let src = ((ni * oh + ohi) * ow + owi) * f;
                    for fi in 0..f {
                        out[((ni * f + fi) * oh + ohi) * ow + owi] = om[src + fi] + bias[fi];
                    }
                }
            }
        }
        self.cache = Some(ConvCache {
            cols,
            in_dims: dims,
            out_hw: (oh, ow),
        });
        Ok(Tensor::from_vec(out, [n, f, oh, ow])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let [n, _, _, _] = cache.in_dims;
        let (oh, ow) = cache.out_hw;
        let f = self.out_c;
        if grad_out.dims() != [n, f, oh, ow] {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("[{n}, {f}, {oh}, {ow}]"),
            });
        }
        // Un-permute grad to matmul layout [N*OH*OW, F].
        let go = grad_out.as_slice();
        let mut gmat = vec![0.0f32; n * oh * ow * f];
        for ni in 0..n {
            for fi in 0..f {
                for ohi in 0..oh {
                    for owi in 0..ow {
                        gmat[((ni * oh + ohi) * ow + owi) * f + fi] =
                            go[((ni * f + fi) * oh + ohi) * ow + owi];
                    }
                }
            }
        }
        let gmat = Tensor::from_vec(gmat, [n * oh * ow, f])?;

        let dw = cache.cols.matmul_tn(&gmat)?;
        self.w.grad.add_assign(&dw)?;
        let db = gmat.sum_axis0()?;
        self.b.grad.add_assign(&db)?;

        let dcols = gmat.matmul_nt(&self.w.value)?;
        Ok(self.col2im(&dcols, cache.in_dims, oh, ow))
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 3 || input_dims[0] != self.in_c {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: input_dims.to_vec(),
                expected: format!("[{}, H, W]", self.in_c),
            });
        }
        let (oh, ow) = self.out_hw(input_dims[1], input_dims[2])?;
        Ok(vec![self.out_c, oh, ow])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::{check_input_grad, check_param_grads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(
            "c",
            2,
            3,
            3,
            1,
            1,
            WeightInit::Gaussian { std: 0.4 },
            &mut rng,
        )
        .unwrap();
        let x = Tensor::randn(&mut rng, [2, 2, 5, 5], 0.0, 1.0);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 3, 5, 5]);

        // Direct convolution reference.
        let ws = conv.w.value.as_slice();
        let bs = conv.b.value.as_slice();
        let xs = x.as_slice();
        for n in 0..2 {
            for f in 0..3 {
                for oy in 0..5usize {
                    for ox in 0..5usize {
                        let mut acc = bs[f];
                        for c in 0..2 {
                            for ky in 0..3usize {
                                for kx in 0..3usize {
                                    let sy = oy as isize + ky as isize - 1;
                                    let sx = ox as isize + kx as isize - 1;
                                    if !(0..5).contains(&sy) || !(0..5).contains(&sx) {
                                        continue;
                                    }
                                    let xv = xs[((n * 2 + c) * 5 + sy as usize) * 5 + sx as usize];
                                    let wv = ws[((c * 3 + ky) * 3 + kx) * 3 + f];
                                    acc += xv * wv;
                                }
                            }
                        }
                        let got = y.get(&[n, f, oy, ox]).unwrap();
                        assert!((got - acc).abs() < 1e-4, "({n},{f},{oy},{ox})");
                    }
                }
            }
        }
    }

    #[test]
    fn strided_output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new("c", 1, 2, 3, 2, 1, WeightInit::He, &mut rng).unwrap();
        let y = conv.forward(&Tensor::zeros([1, 1, 8, 8]), true).unwrap();
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
        assert_eq!(conv.output_dims(&[1, 8, 8]).unwrap(), vec![2, 4, 4]);
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(
            "c",
            2,
            2,
            3,
            1,
            1,
            WeightInit::Gaussian { std: 0.4 },
            &mut rng,
        )
        .unwrap();
        let x = Tensor::randn(&mut rng, [2, 2, 4, 4], 0.0, 1.0);
        check_input_grad(&mut conv, &x, 2e-2);
        check_param_grads(&mut conv, &x, 2e-2);
    }

    #[test]
    fn gradients_check_out_with_stride() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(
            "c",
            1,
            2,
            3,
            2,
            1,
            WeightInit::Gaussian { std: 0.4 },
            &mut rng,
        )
        .unwrap();
        let x = Tensor::randn(&mut rng, [1, 1, 6, 6], 0.0, 1.0);
        check_input_grad(&mut conv, &x, 2e-2);
        check_param_grads(&mut conv, &x, 2e-2);
    }

    #[test]
    fn validation_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Conv2d::new("c", 0, 1, 3, 1, 1, WeightInit::He, &mut rng).is_err());
        assert!(Conv2d::new("c", 1, 1, 0, 1, 1, WeightInit::He, &mut rng).is_err());
        let mut conv = Conv2d::new("c", 2, 2, 3, 1, 0, WeightInit::He, &mut rng).unwrap();
        assert!(conv.forward(&Tensor::zeros([1, 3, 5, 5]), true).is_err());
        assert!(conv.forward(&Tensor::zeros([1, 2, 2, 2]), true).is_err());
        assert!(conv.backward(&Tensor::zeros([1, 2, 3, 3])).is_err());
        conv.forward(&Tensor::zeros([1, 2, 5, 5]), true).unwrap();
        assert!(conv.backward(&Tensor::zeros([1, 2, 5, 5])).is_err());
        assert!(conv.output_dims(&[3, 5, 5]).is_err());
    }

    #[test]
    fn param_names_and_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("conv1", 3, 32, 5, 1, 2, WeightInit::He, &mut rng).unwrap();
        let mut sizes = Vec::new();
        conv.visit_params(&mut |p| sizes.push((p.name.clone(), p.len())));
        assert_eq!(sizes[0], ("conv1/weight".into(), 3 * 5 * 5 * 32));
        assert_eq!(sizes[1], ("conv1/bias".into(), 32));
    }
}

//! Error type for network construction and training.

use std::fmt;

/// Errors raised while building or training networks.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A layer received an input of unexpected shape.
    BadInput {
        /// Which layer rejected the input.
        layer: String,
        /// Shape received.
        got: Vec<usize>,
        /// Human-readable description of the expected shape.
        expected: String,
    },
    /// `backward` was called before `forward` cached activations.
    NoForwardCache {
        /// Which layer was driven out of order.
        layer: String,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
    /// A training step produced a non-finite data loss (NaN or ±∞).
    NonFiniteLoss {
        /// Zero-based batch index within the failing epoch.
        batch: usize,
        /// The offending loss value.
        loss: f64,
    },
    /// The fault-tolerant runtime exhausted its retry budget even after
    /// degrading every adaptive regularizer to fixed L2 — the failure is
    /// not recoverable by regularizer rollback.
    Stalled {
        /// Epoch that kept failing.
        epoch: u64,
        /// Description of the last failure observed.
        last_failure: String,
    },
    /// An underlying tensor operation failed.
    Tensor(gmreg_tensor::TensorError),
    /// A regularizer error bubbled up from `gmreg-core`.
    Core(gmreg_core::CoreError),
    /// A dataset error bubbled up from `gmreg-data`.
    Data(gmreg_data::DataError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::BadInput {
                layer,
                got,
                expected,
            } => write!(
                f,
                "layer `{layer}`: bad input shape {got:?}, expected {expected}"
            ),
            NnError::NoForwardCache { layer } => {
                write!(f, "layer `{layer}`: backward called before forward")
            }
            NnError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            NnError::NonFiniteLoss { batch, loss } => {
                write!(f, "non-finite loss {loss} at batch {batch}")
            }
            NnError::Stalled {
                epoch,
                last_failure,
            } => write!(
                f,
                "training stalled at epoch {epoch} after exhausting retries and L2 \
                 degradation; last failure: {last_failure}"
            ),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Core(e) => write!(f, "regularizer error: {e}"),
            NnError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Core(e) => Some(e),
            NnError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gmreg_tensor::TensorError> for NnError {
    fn from(e: gmreg_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<gmreg_core::CoreError> for NnError {
    fn from(e: gmreg_core::CoreError) -> Self {
        NnError::Core(e)
    }
}

impl From<gmreg_data::DataError> for NnError {
    fn from(e: gmreg_data::DataError) -> Self {
        NnError::Data(e)
    }
}

/// Convenience alias used across the nn crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = NnError::BadInput {
            layer: "conv1".into(),
            got: vec![2, 3],
            expected: "[N, C, H, W]".into(),
        };
        assert!(e.to_string().contains("conv1"));
        let e = NnError::NoForwardCache {
            layer: "dense".into(),
        };
        assert!(e.to_string().contains("dense"));
        let e: NnError = gmreg_tensor::TensorError::Empty { op: "x" }.into();
        assert!(e.to_string().contains("tensor"));
        let e: NnError = gmreg_core::CoreError::DimensionMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("regularizer"));
        let e: NnError = gmreg_data::DataError::NotEnoughSamples {
            needed: 1,
            available: 0,
        }
        .into();
        assert!(e.to_string().contains("data"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}

//! Residual basic block (He et al.), the building unit of the paper's
//! 20-layer ResNet.

use crate::activation::ReLU;
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::error::{NnError, Result};
use crate::init::WeightInit;
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use crate::sequential::Sequential;
use gmreg_tensor::Tensor;
use rand::Rng;

/// A basic residual block:
/// `y = relu( bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x) )`.
///
/// The shortcut is the identity when shape is preserved, or a strided 1×1
/// projection convolution (+BN) when the block downsamples / widens —
/// the `*-br2-conv` layers of Table V.
pub struct BasicBlock {
    name: String,
    main: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Option<Vec<bool>>,
    out_dims: Vec<usize>,
}

impl BasicBlock {
    /// Builds a block mapping `in_c` channels to `out_c` with the given
    /// stride on the first convolution.
    pub fn new(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        stride: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let name = name.into();
        let main = Sequential::new(format!("{name}-br1"))
            .push(Conv2d::new(
                format!("{name}-br1-conv1"),
                in_c,
                out_c,
                3,
                stride,
                1,
                WeightInit::He,
                rng,
            )?)
            .push(BatchNorm2d::new(format!("{name}-br1-bn1"), out_c)?)
            .push(ReLU::new(format!("{name}-br1-relu1")))
            .push(Conv2d::new(
                format!("{name}-br1-conv2"),
                out_c,
                out_c,
                3,
                1,
                1,
                WeightInit::He,
                rng,
            )?)
            .push(BatchNorm2d::new(format!("{name}-br1-bn2"), out_c)?);
        let shortcut = if stride != 1 || in_c != out_c {
            Some(
                Sequential::new(format!("{name}-br2"))
                    .push(Conv2d::new(
                        format!("{name}-br2-conv"),
                        in_c,
                        out_c,
                        1,
                        stride,
                        0,
                        WeightInit::He,
                        rng,
                    )?)
                    .push(BatchNorm2d::new(format!("{name}-br2-bn"), out_c)?),
            )
        } else {
            None
        };
        Ok(BasicBlock {
            name,
            main,
            shortcut,
            relu_mask: None,
            out_dims: Vec::new(),
        })
    }
}

impl VisitParams for BasicBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = self.shortcut.as_mut() {
            s.visit_params(f);
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.main.params_mut();
        if let Some(s) = self.shortcut.as_mut() {
            ps.extend(s.params_mut());
        }
        ps
    }
}

impl Layer for BasicBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let f = self.main.forward(x, train)?;
        let s = match self.shortcut.as_mut() {
            Some(sc) => sc.forward(x, train)?,
            None => x.clone(),
        };
        let mut out = f.add(&s)?;
        let mut mask = vec![false; out.len()];
        for (v, m) in out.as_mut_slice().iter_mut().zip(mask.iter_mut()) {
            if *v > 0.0 {
                *m = true;
            } else {
                *v = 0.0;
            }
        }
        self.relu_mask = Some(mask);
        self.out_dims = out.dims().to_vec();
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .relu_mask
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache {
                layer: self.name.clone(),
            })?;
        if grad_out.dims() != self.out_dims {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("{:?}", self.out_dims),
            });
        }
        let mut d = grad_out.clone();
        for (v, &m) in d.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        let mut dx = self.main.backward(&d)?;
        match self.shortcut.as_mut() {
            Some(sc) => dx.add_assign(&sc.backward(&d)?)?,
            None => dx.add_assign(&d)?,
        }
        Ok(dx)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        self.main.output_dims(input_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::{check_input_grad, check_param_grads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_block_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = BasicBlock::new("2a", 4, 4, 1, &mut rng).unwrap();
        let x = Tensor::randn(&mut rng, [2, 4, 6, 6], 0.0, 1.0);
        let y = b.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 4, 6, 6]);
        assert_eq!(b.output_dims(&[4, 6, 6]).unwrap(), vec![4, 6, 6]);
        // identity shortcut has no projection params
        let mut names = Vec::new();
        b.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names.iter().all(|n| !n.contains("br2")));
    }

    #[test]
    fn downsampling_block_projects() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = BasicBlock::new("3a", 4, 8, 2, &mut rng).unwrap();
        let x = Tensor::randn(&mut rng, [2, 4, 6, 6], 0.0, 1.0);
        let y = b.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 8, 3, 3]);
        let mut names = Vec::new();
        b.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names.iter().any(|n| n == "3a-br2-conv/weight"));
    }

    #[test]
    fn gradients_check_out_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = BasicBlock::new("blk", 3, 3, 1, &mut rng).unwrap();
        let x = Tensor::randn(&mut rng, [2, 3, 4, 4], 0.0, 1.0);
        check_input_grad(&mut b, &x, 5e-2);
        check_param_grads(&mut b, &x, 5e-2);
    }

    #[test]
    fn gradients_check_out_projection() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = BasicBlock::new("blk", 2, 4, 2, &mut rng).unwrap();
        let x = Tensor::randn(&mut rng, [2, 2, 4, 4], 0.0, 1.0);
        check_input_grad(&mut b, &x, 5e-2);
        check_param_grads(&mut b, &x, 5e-2);
    }

    #[test]
    fn cache_discipline() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = BasicBlock::new("blk", 2, 2, 1, &mut rng).unwrap();
        assert!(b.backward(&Tensor::zeros([1, 2, 2, 2])).is_err());
        b.forward(&Tensor::zeros([1, 2, 4, 4]), true).unwrap();
        assert!(b.backward(&Tensor::zeros([1, 2, 2, 2])).is_err());
    }
}

//! Max and average pooling layers.

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Max,
    Avg,
}

/// A 2-D pooling layer (max or average) over `[N, C, H, W]` inputs.
///
/// Ceil-mode windowing: partial windows at the right/bottom edges are
/// included (average pooling divides by the *actual* window size), matching
/// the behaviour of the Caffe-style stacks the paper's models use.
pub struct Pool2d {
    name: String,
    mode: Mode,
    kernel: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

struct PoolCache {
    in_dims: [usize; 4],
    out_hw: (usize, usize),
    /// For max pooling: flat input index chosen per output element.
    argmax: Vec<usize>,
}

impl Pool2d {
    /// Max pooling with the given square kernel and stride.
    pub fn max(name: impl Into<String>, kernel: usize, stride: usize) -> Result<Self> {
        Self::new(name, Mode::Max, kernel, stride)
    }

    /// Average pooling with the given square kernel and stride.
    pub fn avg(name: impl Into<String>, kernel: usize, stride: usize) -> Result<Self> {
        Self::new(name, Mode::Avg, kernel, stride)
    }

    fn new(name: impl Into<String>, mode: Mode, kernel: usize, stride: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(NnError::InvalidConfig {
                field: "pool2d",
                reason: "kernel and stride must be positive".into(),
            });
        }
        Ok(Pool2d {
            name: name.into(),
            mode,
            kernel,
            stride,
            cache: None,
        })
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        // ceil mode
        let oh = (h.saturating_sub(self.kernel)).div_ceil(self.stride) + 1;
        let ow = (w.saturating_sub(self.kernel)).div_ceil(self.stride) + 1;
        (oh, ow)
    }
}

impl VisitParams for Pool2d {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let d = x.dims();
        if d.len() != 4 {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: "[N, C, H, W]".into(),
            });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        if h < self.kernel.min(h.max(1)) || h == 0 || w == 0 {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: "non-empty spatial dimensions".into(),
            });
        }
        let (oh, ow) = self.out_hw(h, w);
        let xs = x.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; if self.mode == Mode::Max { out.len() } else { 0 }];
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    let y0 = oy * self.stride;
                    let y1 = (y0 + self.kernel).min(h);
                    for ox in 0..ow {
                        let x0 = ox * self.stride;
                        let x1 = (x0 + self.kernel).min(w);
                        let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                        match self.mode {
                            Mode::Max => {
                                let mut best = f32::NEG_INFINITY;
                                let mut best_idx = plane + y0 * w + x0;
                                for yy in y0..y1 {
                                    for xx in x0..x1 {
                                        let idx = plane + yy * w + xx;
                                        if xs[idx] > best {
                                            best = xs[idx];
                                            best_idx = idx;
                                        }
                                    }
                                }
                                out[oidx] = best;
                                argmax[oidx] = best_idx;
                            }
                            Mode::Avg => {
                                let mut acc = 0.0f32;
                                for yy in y0..y1 {
                                    for xx in x0..x1 {
                                        acc += xs[plane + yy * w + xx];
                                    }
                                }
                                out[oidx] = acc / ((y1 - y0) * (x1 - x0)) as f32;
                            }
                        }
                    }
                }
            }
        }
        self.cache = Some(PoolCache {
            in_dims: [n, c, h, w],
            out_hw: (oh, ow),
            argmax,
        });
        Ok(Tensor::from_vec(out, [n, c, oh, ow])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let [n, c, h, w] = cache.in_dims;
        let (oh, ow) = cache.out_hw;
        if grad_out.dims() != [n, c, oh, ow] {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("[{n}, {c}, {oh}, {ow}]"),
            });
        }
        let go = grad_out.as_slice();
        let mut dx = vec![0.0f32; n * c * h * w];
        match self.mode {
            Mode::Max => {
                for (oidx, &src) in cache.argmax.iter().enumerate() {
                    dx[src] += go[oidx];
                }
            }
            Mode::Avg => {
                for ni in 0..n {
                    for ci in 0..c {
                        let plane = (ni * c + ci) * h * w;
                        for oy in 0..oh {
                            let y0 = oy * self.stride;
                            let y1 = (y0 + self.kernel).min(h);
                            for ox in 0..ow {
                                let x0 = ox * self.stride;
                                let x1 = (x0 + self.kernel).min(w);
                                let g = go[((ni * c + ci) * oh + oy) * ow + ox]
                                    / ((y1 - y0) * (x1 - x0)) as f32;
                                for yy in y0..y1 {
                                    for xx in x0..x1 {
                                        dx[plane + yy * w + xx] += g;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(dx, [n, c, h, w])?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 3 {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: input_dims.to_vec(),
                expected: "[C, H, W]".into(),
            });
        }
        let (oh, ow) = self.out_hw(input_dims[1], input_dims[2]);
        Ok(vec![input_dims[0], oh, ow])
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
pub struct GlobalAvgPool {
    name: String,
    in_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Builds a global average pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool {
            name: name.into(),
            in_dims: None,
        }
    }
}

impl VisitParams for GlobalAvgPool {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let d = x.dims();
        if d.len() != 4 {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: d.to_vec(),
                expected: "[N, C, H, W]".into(),
            });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        let hw = (h * w) as f32;
        let xs = x.as_slice();
        let mut out = vec![0.0f32; n * c];
        for (i, o) in out.iter_mut().enumerate() {
            *o = xs[i * h * w..(i + 1) * h * w].iter().sum::<f32>() / hw;
        }
        self.in_dims = Some([n, c, h, w]);
        Ok(Tensor::from_vec(out, [n, c])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let [n, c, h, w] = self.in_dims.ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        if grad_out.dims() != [n, c] {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("[{n}, {c}]"),
            });
        }
        let hw = (h * w) as f32;
        let go = grad_out.as_slice();
        let mut dx = vec![0.0f32; n * c * h * w];
        for (i, &g) in go.iter().enumerate() {
            let v = g / hw;
            dx[i * h * w..(i + 1) * h * w].fill(v);
        }
        Ok(Tensor::from_vec(dx, [n, c, h, w])?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 3 {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: input_dims.to_vec(),
                expected: "[C, H, W]".into(),
            });
        }
        Ok(vec![input_dims[0]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::check_input_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_pool_picks_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, //
                4.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 0.0, //
                2.0, 3.0, 4.0, 9.0,
            ],
            [1, 1, 4, 4],
        )
        .unwrap();
        let mut p = Pool2d::max("mp", 2, 2).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 5.0, 7.0, 9.0]);
        // backward routes gradient to the argmax positions
        let g = p
            .backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap())
            .unwrap();
        assert_eq!(g.get(&[0, 0, 1, 0]).unwrap(), 1.0);
        assert_eq!(g.get(&[0, 0, 0, 2]).unwrap(), 2.0);
        assert_eq!(g.get(&[0, 0, 2, 0]).unwrap(), 3.0);
        assert_eq!(g.get(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(g.sum(), 10.0);
    }

    #[test]
    fn avg_pool_averages_and_distributes() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), [1, 1, 4, 4]).unwrap();
        let mut p = Pool2d::avg("ap", 2, 2).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let g = p.backward(&Tensor::ones([1, 1, 2, 2])).unwrap();
        assert!(g.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-7));
    }

    #[test]
    fn ceil_mode_handles_odd_sizes() {
        // AlexNet-CIFAR uses 3x3 stride-2 pooling on 32x32 -> 16x16.
        let p = Pool2d::max("mp", 3, 2).unwrap();
        assert_eq!(p.out_hw(32, 32), (16, 16));
        // and 5x5 -> 2x2: ceil((5-3)/2)+1 = 2, windows at 0 and 2.
        assert_eq!(p.out_hw(5, 5), (2, 2));
        // 7x7 -> 3x3 with a partial final window: ceil(4/2)+1 = 3.
        assert_eq!(p.out_hw(7, 7), (3, 3));
    }

    #[test]
    fn avg_pool_partial_window_divides_by_actual_size() {
        let x = Tensor::ones([1, 1, 3, 3]);
        let mut p = Pool2d::avg("ap", 2, 2).unwrap();
        let y = p.forward(&x, true).unwrap();
        // all windows of ones average to 1 regardless of partial windows
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-7));
        let g = p.backward(&Tensor::ones([1, 1, 2, 2])).unwrap();
        assert!((g.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&mut rng, [2, 2, 6, 6], 0.0, 1.0);
        let mut mp = Pool2d::max("mp", 2, 2).unwrap();
        check_input_grad(&mut mp, &x, 2e-2);
        let mut ap = Pool2d::avg("ap", 2, 2).unwrap();
        check_input_grad(&mut ap, &x, 2e-2);
        let mut gp = GlobalAvgPool::new("gap");
        check_input_grad(&mut gp, &x, 2e-2);
    }

    #[test]
    fn global_avg_pool_shapes() {
        let mut g = GlobalAvgPool::new("gap");
        let x = Tensor::ones([2, 3, 4, 4]);
        let y = g.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-7));
        assert_eq!(g.output_dims(&[3, 4, 4]).unwrap(), vec![3]);
        assert!(g.output_dims(&[3, 4]).is_err());
        assert!(g.backward(&Tensor::zeros([2, 4])).is_err());
    }

    #[test]
    fn validation() {
        assert!(Pool2d::max("p", 0, 1).is_err());
        assert!(Pool2d::avg("p", 2, 0).is_err());
        let mut p = Pool2d::max("p", 2, 2).unwrap();
        assert!(p.forward(&Tensor::zeros([2, 2]), true).is_err());
        assert!(p.backward(&Tensor::zeros([1, 1, 2, 2])).is_err());
        assert!(p.output_dims(&[4, 4]).is_err());
        let mut gp = GlobalAvgPool::new("g");
        assert!(gp.forward(&Tensor::zeros([2, 2]), true).is_err());
        assert!(gp.backward(&Tensor::zeros([2, 2])).is_err());
        // no params
        assert_eq!(p.n_params(), 0);
        assert_eq!(gp.n_params(), 0);
    }
}

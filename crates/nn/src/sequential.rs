//! Sequential layer container.

use crate::error::Result;
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;

/// A chain of layers applied in order; itself a [`Layer`], so blocks nest.
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty container.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl VisitParams for Sequential {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in self.layers.iter_mut() {
            l.visit_params(f);
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let mut cur = x.clone();
        for l in self.layers.iter_mut() {
            cur = l.forward(&cur, train)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut cur = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur)?;
        }
        Ok(cur)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let mut dims = input_dims.to_vec();
        for l in &self.layers {
            dims = l.output_dims(&dims)?;
        }
        Ok(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::dense::Dense;
    use crate::init::WeightInit;
    use crate::layer::testutil::{check_input_grad, check_param_grads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Sequential {
        let mut rng = StdRng::seed_from_u64(5);
        Sequential::new("mlp")
            .push(Dense::new("fc1", 4, 6, WeightInit::Gaussian { std: 0.5 }, &mut rng).unwrap())
            .push(ReLU::new("relu1"))
            .push(Dense::new("fc2", 6, 2, WeightInit::Gaussian { std: 0.5 }, &mut rng).unwrap())
    }

    #[test]
    fn chains_forward_and_backward() {
        let mut m = mlp();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&mut rng, [3, 4], 0.3, 1.0);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        check_input_grad(&mut m, &x, 2e-2);
        check_param_grads(&mut m, &x, 2e-2);
    }

    #[test]
    fn output_dims_chains() {
        let m = mlp();
        assert_eq!(m.output_dims(&[4]).unwrap(), vec![2]);
        assert!(m.output_dims(&[5]).is_err());
    }

    #[test]
    fn visits_all_params() {
        let mut m = mlp();
        let mut names = Vec::new();
        m.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(
            names,
            vec!["fc1/weight", "fc1/bias", "fc2/weight", "fc2/bias"]
        );
        assert_eq!(m.n_params(), 4 * 6 + 6 + 6 * 2 + 2);
    }

    #[test]
    fn push_boxed_works() {
        let mut m = Sequential::new("s");
        m.push_boxed(Box::new(ReLU::new("r")));
        assert_eq!(m.len(), 1);
        assert_eq!(m.name(), "s");
    }
}

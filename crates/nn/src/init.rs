//! Weight initialization schemes.

use rand::Rng;

/// How a layer's weights are drawn at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightInit {
    /// Zero-mean Gaussian with a fixed standard deviation — the paper's
    /// "model parameter is initialized with a zero-mean Gaussian
    /// distribution" (std 0.1 ⇒ precision 100 for the LR experiments).
    Gaussian {
        /// Standard deviation of the draw.
        std: f64,
    },
    /// He / Kaiming initialization: `std = sqrt(2 / fan_in)` — the scheme
    /// the paper cites ([30]) to explain why same-width ResNet layers learn
    /// similar GMs.
    He,
}

impl WeightInit {
    /// Resolves the standard deviation for a layer with the given fan-in.
    pub fn std(&self, fan_in: usize) -> f64 {
        match self {
            WeightInit::Gaussian { std } => *std,
            WeightInit::He => (2.0 / fan_in.max(1) as f64).sqrt(),
        }
    }

    /// Draws one weight.
    pub fn sample(&self, fan_in: usize, rng: &mut impl Rng) -> f32 {
        use gmreg_tensor::SampleExt;
        rng.normal(0.0, self.std(fan_in)) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_std_is_fixed() {
        let w = WeightInit::Gaussian { std: 0.1 };
        assert_eq!(w.std(10), 0.1);
        assert_eq!(w.std(10_000), 0.1);
    }

    #[test]
    fn he_std_scales_with_fan_in() {
        let w = WeightInit::He;
        assert!((w.std(2) - 1.0).abs() < 1e-12);
        assert!((w.std(200) - 0.1).abs() < 1e-12);
        assert!(w.std(0) > 0.0, "fan_in 0 must not divide by zero");
    }

    #[test]
    fn samples_match_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = WeightInit::Gaussian { std: 0.5 };
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| w.sample(1, &mut rng) as f64).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }
}

//! # gmreg-nn
//!
//! A from-scratch neural-network training stack — the workspace's
//! substitute for the Apache SINGA platform the paper integrates with:
//!
//! * layers with explicit forward/backward passes: [`Dense`], [`Conv2d`]
//!   (im2col), [`Pool2d`]/[`GlobalAvgPool`], [`ReLU`], [`Flatten`],
//!   [`Lrn`], [`BatchNorm2d`], [`BasicBlock`] (residual), [`Sequential`];
//! * [`SoftmaxCrossEntropy`] loss and [`Sgd`] with momentum;
//! * per-parameter-group regularizer attachment through
//!   [`gmreg_core::Regularizer`] — each layer's weights can carry its own
//!   adaptively-learned GM, exactly the paper's per-layer setup;
//! * the paper's two evaluation models ([`models::alex_cifar10`],
//!   [`models::resnet20`]) with weight dimensionalities matching the
//!   published 89,440 and 270,896;
//! * a [`Network`] driver with epoch training, augmentation hooks and
//!   learned-mixture reporting;
//! * a [`FaultTolerantTrainer`] runtime with durable epoch checkpoints,
//!   rollback-and-retry on numerical failure, learning-rate backoff and
//!   graceful degradation to fixed L2.

#![warn(missing_docs)]

mod activation;
mod batchnorm;
mod conv;
mod dense;
mod dropout;
mod error;
mod init;
mod layer;
mod loss;
mod lrn;
mod model;
pub mod models;
mod optimizer;
mod param;
mod pool;
mod residual;
mod runtime;
mod sequential;
mod serialize;
mod tele;

pub use activation::{Flatten, ReLU};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::{NnError, Result};
pub use init::WeightInit;
pub use layer::Layer;
pub use loss::{accuracy, SoftmaxCrossEntropy};
pub use lrn::Lrn;
pub use model::{EpochStats, LayerMixture, Network};
pub use optimizer::Sgd;
pub use param::{Param, VisitParams};
pub use pool::{GlobalAvgPool, Pool2d};
pub use residual::BasicBlock;
pub use runtime::{
    capture_state, restore_state, FaultTolerantTrainer, RunReport, RuntimeConfig, TrainState,
};
pub use sequential::Sequential;
pub use serialize::{
    load_weights, load_weights_file, save_weights, save_weights_file, WeightsSnapshot,
};

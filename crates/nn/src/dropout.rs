//! Inverted dropout — the other standard regularization device in the
//! AlexNet lineage, provided so ablations can compare GM regularization
//! against (and combine it with) stochastic regularization.

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation
/// mode is the identity.
pub struct Dropout {
    name: String,
    p: f64,
    rng: StdRng,
    mask: Option<Vec<f32>>,
    out_dims: Vec<usize>,
}

impl Dropout {
    /// Builds a dropout layer with drop probability `p ∈ [0, 1)` and its
    /// own seeded RNG (keeps whole-network training reproducible).
    pub fn new(name: impl Into<String>, p: f64, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                field: "p",
                reason: format!("drop probability must lie in [0, 1), got {p}"),
            });
        }
        Ok(Dropout {
            name: name.into(),
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
            out_dims: Vec::new(),
        })
    }

    /// The drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl VisitParams for Dropout {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        self.out_dims = x.dims().to_vec();
        if !train || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = (1.0 / keep) as f32;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.random::<f64>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = x.clone();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if grad_out.dims() != self.out_dims {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("{:?}", self.out_dims),
            });
        }
        match &self.mask {
            None if self.out_dims.is_empty() => Err(NnError::NoForwardCache {
                layer: self.name.clone(),
            }),
            None => Ok(grad_out.clone()), // eval-mode or p = 0 forward
            Some(mask) => {
                let mut dx = grad_out.clone();
                for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *v *= m;
                }
                Ok(dx)
            }
        }
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new("do", 0.5, 1).expect("valid");
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0])
            .reshape([1, 3])
            .expect("shape");
        let y = d.forward(&x, false).expect("forward");
        assert_eq!(y.as_slice(), x.as_slice());
        let g = d.backward(&Tensor::ones([1, 3])).expect("backward");
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let mut d = Dropout::new("do", 0.3, 2).expect("valid");
        let x = Tensor::ones([100, 100]);
        let y = d.forward(&x, true).expect("forward");
        let mean = y.mean().expect("non-empty");
        assert!(
            (mean - 1.0).abs() < 0.05,
            "inverted scaling keeps E[x]: {mean}"
        );
        // roughly 30% of entries zeroed
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f64 / y.len() as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new("do", 0.5, 3).expect("valid");
        let x = Tensor::ones([4, 8]);
        let y = d.forward(&x, true).expect("forward");
        let g = d.backward(&Tensor::ones([4, 8])).expect("backward");
        // gradient passes exactly where the activation passed
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new("do", 0.0, 4).expect("valid");
        let x = Tensor::from_slice(&[5.0, -2.0])
            .reshape([1, 2])
            .expect("shape");
        let y = d.forward(&x, true).expect("forward");
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn validation() {
        assert!(Dropout::new("do", 1.0, 0).is_err());
        assert!(Dropout::new("do", -0.1, 0).is_err());
        let mut d = Dropout::new("do", 0.5, 5).expect("valid");
        assert!(d.backward(&Tensor::ones([2, 2])).is_err(), "no forward yet");
        d.forward(&Tensor::ones([2, 2]), true).expect("forward");
        assert!(d.backward(&Tensor::ones([2, 3])).is_err(), "shape mismatch");
        assert_eq!(d.output_dims(&[7]).expect("any dims"), vec![7]);
        assert_eq!(d.n_params(), 0);
        assert_eq!(d.p(), 0.5);
    }
}

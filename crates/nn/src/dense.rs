//! Fully-connected (dense) layer.

use crate::error::{NnError, Result};
use crate::init::WeightInit;
use crate::layer::Layer;
use crate::param::{Param, VisitParams};
use gmreg_tensor::Tensor;
use rand::Rng;

/// A dense layer: `y = x·W + b` with `W` of shape `[in, out]`.
///
/// Accepts inputs of shape `[N, in]`, or any `[N, ...]` whose trailing
/// dimensions multiply to `in` (they are flattened internally), so a dense
/// head can sit directly on a convolutional stack.
pub struct Dense {
    name: String,
    in_features: usize,
    out_features: usize,
    w: Param,
    b: Param,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Builds a dense layer with the given initialization.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        init: WeightInit,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig {
                field: "in_features/out_features",
                reason: "must be positive".into(),
            });
        }
        let name = name.into();
        let std = init.std(in_features);
        let data: Vec<f32> = (0..in_features * out_features)
            .map(|_| init.sample(in_features, rng))
            .collect();
        let w = Param::new(
            format!("{name}/weight"),
            Tensor::from_vec(data, [in_features, out_features])?,
            std,
        );
        let b = Param::new(format!("{name}/bias"), Tensor::zeros([out_features]), 0.0);
        Ok(Dense {
            name,
            in_features,
            out_features,
            w,
            b,
            cache_x: None,
        })
    }

    fn flatten_input(&self, x: &Tensor) -> Result<Tensor> {
        let dims = x.dims();
        if dims.is_empty() {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: dims.to_vec(),
                expected: format!("[N, {}]", self.in_features),
            });
        }
        let n = dims[0];
        let feat: usize = dims[1..].iter().product();
        if feat != self.in_features {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: dims.to_vec(),
                expected: format!("[N, {}]", self.in_features),
            });
        }
        Ok(x.reshape([n, self.in_features])?)
    }
}

impl VisitParams for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let x2 = self.flatten_input(x)?;
        let mut out = x2.matmul(&self.w.value)?;
        // broadcast bias over rows
        let (n, f) = (out.dims()[0], out.dims()[1]);
        let bias = self.b.value.as_slice();
        let o = out.as_mut_slice();
        for r in 0..n {
            for (v, &bv) in o[r * f..(r + 1) * f].iter_mut().zip(bias) {
                *v += bv;
            }
        }
        self.cache_x = Some(x2);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_x
            .as_ref()
            .ok_or_else(|| NnError::NoForwardCache {
                layer: self.name.clone(),
            })?;
        if grad_out.dims() != [x.dims()[0], self.out_features] {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: grad_out.dims().to_vec(),
                expected: format!("[{}, {}]", x.dims()[0], self.out_features),
            });
        }
        // dW = x^T * dY ; db = column sums of dY ; dX = dY * W^T
        let dw = x.matmul_tn(grad_out)?;
        self.w.grad.add_assign(&dw)?;
        let db = grad_out.sum_axis0()?;
        self.b.grad.add_assign(&db)?;
        Ok(grad_out.matmul_nt(&self.w.value)?)
    }

    fn output_dims(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let feat: usize = input_dims.iter().product();
        if feat != self.in_features {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                got: input_dims.to_vec(),
                expected: format!("features = {}", self.in_features),
            });
        }
        Ok(vec![self.out_features])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::testutil::{check_input_grad, check_param_grads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(3);
        Dense::new("fc", 5, 3, WeightInit::Gaussian { std: 0.3 }, &mut rng).unwrap()
    }

    #[test]
    fn forward_matches_manual_matmul() {
        let mut l = layer();
        // overwrite with known values
        l.w.value = Tensor::from_vec((0..15).map(|v| v as f32 * 0.1).collect(), [5, 3]).unwrap();
        l.b.value = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let x = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [2, 5],
        )
        .unwrap();
        let y = l.forward(&x, true).unwrap();
        // row 0 = w row 0 + b; row 1 = w row 1 + b
        assert!(y.approx_eq(
            &Tensor::from_vec(vec![1.0, 2.1, 3.2, 1.3, 2.4, 3.5], [2, 3]).unwrap(),
            1e-6
        ));
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&mut rng, [4, 5], 0.0, 1.0);
        let mut l = layer();
        check_input_grad(&mut l, &x, 1e-2);
        check_param_grads(&mut l, &x, 1e-2);
    }

    #[test]
    fn accepts_flattenable_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Dense::new("fc", 12, 2, WeightInit::He, &mut rng).unwrap();
        let x = Tensor::randn(&mut rng, [3, 3, 2, 2], 0.0, 1.0);
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        let g = l.backward(&Tensor::ones([3, 2])).unwrap();
        assert_eq!(g.dims(), &[3, 12]);
        assert_eq!(l.output_dims(&[3, 2, 2]).unwrap(), vec![2]);
        assert!(l.output_dims(&[5]).is_err());
    }

    #[test]
    fn shape_validation() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(Dense::new("fc", 0, 2, WeightInit::He, &mut rng).is_err());
        let mut l = layer();
        assert!(l.forward(&Tensor::zeros([2, 4]), true).is_err());
        assert!(matches!(
            l.backward(&Tensor::zeros([2, 3])),
            Err(NnError::NoForwardCache { .. })
        ));
        l.forward(&Tensor::zeros([2, 5]), true).unwrap();
        assert!(l.backward(&Tensor::zeros([2, 4])).is_err());
    }

    #[test]
    fn param_names_and_count() {
        let mut l = layer();
        let mut names = Vec::new();
        l.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["fc/weight", "fc/bias"]);
        assert_eq!(l.n_params(), 5 * 3 + 3);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        let mut l = layer();
        let x = Tensor::ones([1, 5]);
        l.forward(&x, true).unwrap();
        l.backward(&Tensor::ones([1, 3])).unwrap();
        let g1 = l.b.grad.clone();
        l.forward(&x, true).unwrap();
        l.backward(&Tensor::ones([1, 3])).unwrap();
        let mut doubled = g1.clone();
        doubled.scale(2.0);
        assert!(l.b.grad.approx_eq(&doubled, 1e-6));
    }
}

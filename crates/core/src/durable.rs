//! Durable, corruption-detecting checkpoint persistence.
//!
//! Checkpoints are written as a small binary container:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GMCK"
//! 4       4     format version (u32 LE)
//! 8       4     CRC32 (IEEE) of the payload bytes (u32 LE)
//! 12      8     payload length in bytes (u64 LE)
//! 20      n     payload (JSON-encoded state)
//! ```
//!
//! Writes are atomic: the container is written to `<path>.tmp`, fsynced,
//! then renamed over the final path, so a crash mid-write can never leave a
//! half-written file under a live checkpoint name. [`CheckpointManager`]
//! layers generation numbering, retention of the last N generations, and a
//! corruption-detecting [`CheckpointManager::load_latest`] that falls back
//! to the previous generation when the newest file fails validation.

use crate::error::{CoreError, Result};
use crate::tele;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every gmreg checkpoint container.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GMCK";

/// Newest checkpoint container version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Size in bytes of the fixed container header.
pub const CHECKPOINT_HEADER_LEN: usize = 20;

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Wrap `payload` in the versioned CRC-protected container.
pub fn encode_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a container read from `path` and return its payload bytes.
///
/// Fails with [`CoreError::CheckpointCorrupt`] on bad magic, a short or
/// length-mismatched body, or a CRC mismatch, and with
/// [`CoreError::CheckpointVersion`] when the header names a format version
/// newer than [`CHECKPOINT_VERSION`].
pub fn decode_checkpoint(path: &Path, bytes: &[u8]) -> Result<Vec<u8>> {
    let corrupt = |reason: String| CoreError::CheckpointCorrupt {
        path: path.display().to_string(),
        reason,
    };
    if bytes.len() < CHECKPOINT_HEADER_LEN {
        return Err(corrupt(format!(
            "file is {} bytes, shorter than the {CHECKPOINT_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != CHECKPOINT_MAGIC {
        return Err(corrupt(format!(
            "bad magic {:02x?}, expected {:02x?}",
            &bytes[0..4],
            CHECKPOINT_MAGIC
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version > CHECKPOINT_VERSION {
        return Err(CoreError::CheckpointVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice")) as usize;
    let payload = &bytes[CHECKPOINT_HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(corrupt(format!(
            "payload is {} bytes but header declares {payload_len} (truncated or padded file)",
            payload.len()
        )));
    }
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return Err(corrupt(format!(
            "CRC mismatch: header {stored_crc:#010x}, payload {actual_crc:#010x}"
        )));
    }
    Ok(payload.to_vec())
}

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> CoreError {
    CoreError::Io {
        path: path.display().to_string(),
        op,
        detail: e.to_string(),
    }
}

/// Atomically write `bytes` to `path` via a `.tmp` sibling plus rename.
///
/// The temp file is fsynced before the rename so the container is fully on
/// disk before it becomes visible under the final name, and the parent
/// directory is fsynced after the rename so the directory entry itself is
/// durable — without it a power loss after a "successful" save can leave
/// the generation file missing entirely (the torn-directory case).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, "write", e))?;
        f.sync_all().map_err(|e| io_err(&tmp, "sync", e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename", e))?;

    // Failpoint: model a power loss in the window between the rename and
    // the directory fsync — the rename was never made durable, so the new
    // generation vanishes and the writer must report failure, not success.
    #[cfg(feature = "failpoints")]
    if gmreg_faults::fire("ckpt.dir").is_some() {
        let _ = fs::remove_file(path);
        return Err(io_err(
            path,
            "dir_sync",
            std::io::Error::new(
                std::io::ErrorKind::Other,
                "injected torn-directory fault (ckpt.dir)",
            ),
        ));
    }

    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = fs::File::open(parent).map_err(|e| io_err(parent, "open_dir", e))?;
        dir.sync_all().map_err(|e| io_err(parent, "dir_sync", e))?;
    }
    Ok(())
}

/// Read and validate the container at `path`, returning the payload bytes.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>> {
    let bytes = fs::read(path).map_err(|e| io_err(path, "read", e))?;
    decode_checkpoint(path, &bytes)
}

/// Encode `bytes` into a container and atomically write it to `path`.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<()> {
    let container = encode_checkpoint(payload);

    #[cfg(feature = "failpoints")]
    let container = {
        let mut container = container;
        match gmreg_faults::fire("ckpt.bytes") {
            Some(gmreg_faults::FaultKind::Truncate(keep)) => container.truncate(keep),
            Some(gmreg_faults::FaultKind::BitFlip(bit)) if !container.is_empty() => {
                let bit = bit % (container.len() as u64 * 8);
                container[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            _ => {}
        }
        container
    };

    atomic_write(path, &container)
}

/// Generation-numbered checkpoint directory with retention and fallback.
///
/// Files are named `<prefix>-<generation>.gmck` with a zero-padded,
/// monotonically increasing generation number. [`CheckpointManager::save`]
/// writes the next generation atomically and prunes generations beyond the
/// retention window; [`CheckpointManager::load_latest`] walks generations
/// newest-first and returns the first one that validates and parses,
/// recording skipped corrupt generations in telemetry
/// (`ckpt.load.fallbacks`).
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    prefix: String,
    keep: usize,
}

impl CheckpointManager {
    /// Manage checkpoints named `<prefix>-NNNNNNNNNN.gmck` under `dir`,
    /// retaining the newest `keep` generations (minimum 1). Creates `dir`
    /// if it does not exist.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create_dir", e))?;
        Ok(CheckpointManager {
            dir,
            prefix: prefix.into(),
            keep: keep.max(1),
        })
    }

    /// Directory the manager writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn gen_path(&self, generation: u64) -> PathBuf {
        self.dir
            .join(format!("{}-{generation:010}.gmck", self.prefix))
    }

    /// Sorted (ascending) list of on-disk generation numbers for this prefix.
    pub fn generations(&self) -> Result<Vec<u64>> {
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "read_dir", e))?;
        let mut gens = Vec::new();
        let want_prefix = format!("{}-", self.prefix);
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, "read_dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&want_prefix) else {
                continue;
            };
            let Some(digits) = rest.strip_suffix(".gmck") else {
                continue;
            };
            if let Ok(g) = digits.parse::<u64>() {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Serialize `state` to JSON, wrap it in the container, and atomically
    /// write it as the next generation; then prune generations beyond the
    /// retention window. Returns the generation number written.
    pub fn save<T: serde::Serialize>(&self, state: &T) -> Result<u64> {
        let mut _t = tele::span("ckpt.save.ns");
        let payload = serde_json::to_string(state).map_err(|e| CoreError::CheckpointCorrupt {
            path: self.dir.display().to_string(),
            reason: format!("serialize failed: {e}"),
        })?;
        let generation = self.generations()?.last().map_or(0, |g| g + 1);
        _t.set_u64("generation", generation);
        _t.set_u64("bytes", payload.len() as u64);
        let path = self.gen_path(generation);
        write_checkpoint(&path, payload.as_bytes())?;
        tele::counter_inc("ckpt.saves");
        tele::gauge_set("ckpt.generation", generation as f64);
        self.prune()?;
        Ok(generation)
    }

    /// Load the newest generation that validates and parses, skipping (but
    /// not deleting) corrupt or newer-versioned files. Returns `Ok(None)`
    /// when no generation exists at all; errors only when every existing
    /// generation fails.
    pub fn load_latest<T: for<'de> serde::Deserialize<'de>>(&self) -> Result<Option<(u64, T)>> {
        let gens = self.generations()?;
        let mut last_err = None;
        for &generation in gens.iter().rev() {
            let path = self.gen_path(generation);
            match Self::load_one(&path) {
                Ok(state) => return Ok(Some((generation, state))),
                Err(e) => {
                    tele::counter_inc("ckpt.load.fallbacks");
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            None => Ok(None),
            Some(e) => Err(e),
        }
    }

    fn load_one<T: for<'de> serde::Deserialize<'de>>(path: &Path) -> Result<T> {
        let payload = read_checkpoint(path)?;
        let text = String::from_utf8(payload).map_err(|e| CoreError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason: format!("payload is not UTF-8: {e}"),
        })?;
        serde_json::from_str(&text).map_err(|e| CoreError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason: format!("payload parse failed: {e}"),
        })
    }

    fn prune(&self) -> Result<()> {
        let gens = self.generations()?;
        if gens.len() <= self.keep {
            return Ok(());
        }
        for &generation in &gens[..gens.len() - self.keep] {
            let path = self.gen_path(generation);
            fs::remove_file(&path).map_err(|e| io_err(&path, "remove", e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gmreg-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Demo {
        x: f64,
        tag: String,
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" is the canonical IEEE CRC32 check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip_and_corruption_detection() {
        let path = Path::new("demo.gmck");
        let payload = b"hello checkpoint";
        let mut container = encode_checkpoint(payload);
        assert_eq!(
            decode_checkpoint(path, &container).unwrap(),
            payload.to_vec()
        );

        // Bit flip in the payload is caught by the CRC.
        container[CHECKPOINT_HEADER_LEN + 3] ^= 0x10;
        assert!(matches!(
            decode_checkpoint(path, &container),
            Err(CoreError::CheckpointCorrupt { .. })
        ));

        // Truncation is caught by the declared length.
        let short = &encode_checkpoint(payload)[..CHECKPOINT_HEADER_LEN + 4];
        assert!(matches!(
            decode_checkpoint(path, short),
            Err(CoreError::CheckpointCorrupt { .. })
        ));

        // A newer version is refused with a dedicated error.
        let mut newer = encode_checkpoint(payload);
        newer[4..8].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_checkpoint(path, &newer),
            Err(CoreError::CheckpointVersion { .. })
        ));
    }

    #[test]
    fn manager_saves_prunes_and_falls_back() {
        let dir = tmp_dir("mgr");
        let mgr = CheckpointManager::new(&dir, "demo", 2).unwrap();
        assert_eq!(mgr.load_latest::<Demo>().unwrap(), None);

        for i in 0..4u64 {
            let state = Demo {
                x: i as f64,
                tag: format!("gen{i}"),
            };
            assert_eq!(mgr.save(&state).unwrap(), i);
        }
        // Retention kept only the last two generations.
        assert_eq!(mgr.generations().unwrap(), vec![2, 3]);

        let (generation, state) = mgr.load_latest::<Demo>().unwrap().unwrap();
        assert_eq!(generation, 3);
        assert_eq!(state.x, 3.0);

        // Corrupt the newest generation on disk: load falls back to gen 2.
        let newest = dir.join("demo-0000000003.gmck");
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let (generation, state) = mgr.load_latest::<Demo>().unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(state.tag, "gen2");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_file() {
        let dir = tmp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.gmck");
        atomic_write(&path, b"abc").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"abc");
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! # gmreg-core
//!
//! Rust implementation of **adaptive Gaussian-Mixture regularization**
//! (Luo et al., *Adaptive Lightweight Regularization Tool for Complex
//! Analytics*, ICDE 2018) together with the four classic baselines the
//! paper evaluates against (L1, L2, elastic-net, Huber-norm).
//!
//! Instead of fixing the penalty `f(β, w)` by hand, the GM regularizer
//! treats the prior over every weight as a zero-mean Gaussian Mixture and
//! *learns* that mixture from the intermediate weights during training: a
//! lightweight EM step is interleaved with each SGD step, and a lazy-update
//! schedule amortizes the EM cost to a ~4× saving.
//!
//! ```
//! use gmreg_core::{Regularizer, StepCtx};
//! use gmreg_core::gm::{GmConfig, GmRegularizer};
//!
//! // A parameter group of 6 weights initialized with std 0.5.
//! let mut reg = GmRegularizer::new(6, 0.5, GmConfig::default()).unwrap();
//! let w = [0.02_f32, -0.5, 1.3, 0.0, -0.01, 0.7];
//! let mut grad = [0.0_f32; 6];
//! reg.accumulate_grad(&w, &mut grad, StepCtx::new(0, 0));
//! // grad now holds g_reg; an optimizer adds the data-misfit gradient and
//! // takes its SGD step, then calls accumulate_grad again next iteration.
//! assert!(grad.iter().zip(&w).all(|(g, w)| g * w >= 0.0)); // shrinks toward 0
//! ```
//!
//! This crate is dependency-light (weights are plain `&[f32]` slices) so it
//! plugs into any training loop; the workspace's `gmreg-nn` and
//! `gmreg-linear` crates both drive it through the [`Regularizer`] trait.

#![warn(missing_docs)]

mod baselines;
pub mod durable;
mod error;
pub mod gm;
mod regularizer;
mod tele;

pub use baselines::{ElasticNetReg, HuberReg, L1Reg, L2Reg};
pub use error::{CoreError, Result};
pub use regularizer::{NoReg, Regularizer, StepCtx};

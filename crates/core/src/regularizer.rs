//! The [`Regularizer`] trait shared by every penalty in the workspace, plus
//! the trivial "no regularization" implementation.

/// Position of the current SGD step within training.
///
/// Adaptive regularizers (the GM regularizer's lazy-update schedule,
/// Algorithm 2 of the paper) need to know both the global iteration counter
/// and the current epoch; fixed-norm penalties ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepCtx {
    /// Zero-based global SGD iteration (`it` in Algorithm 2).
    pub iteration: u64,
    /// Zero-based epoch (`epoch_it` in Algorithm 2).
    pub epoch: u64,
}

impl StepCtx {
    /// A context for the given iteration and epoch.
    pub fn new(iteration: u64, epoch: u64) -> Self {
        StepCtx { iteration, epoch }
    }
}

/// A penalty on model parameters, in the paper's framing the
/// `f(β, w)` term of `Loss(w) = data-misfit + f(β, w)` (Eq. 1).
///
/// Implementations add their gradient contribution `g_reg` to an existing
/// gradient buffer so the optimizer accumulates `g_ll + g_reg` (Eq. 10)
/// without extra allocations. Adaptive implementations may also mutate
/// internal state (the GM regularizer runs an EM step here).
pub trait Regularizer: Send {
    /// Short, stable name used in experiment reports (e.g. `"L2"`, `"GM"`).
    fn name(&self) -> &str;

    /// The penalty's value for monitoring; the `f(β, w)` of Eq. 1 (for the
    /// GM regularizer, the negative log prior of Eq. 8, up to constants).
    fn penalty(&self, w: &[f32]) -> f64;

    /// Adds `g_reg` to `grad` and advances any internal adaptive state.
    ///
    /// `w` and `grad` must have equal length; implementations may panic on a
    /// mismatch (it is a programming error, not a data error).
    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], ctx: StepCtx);

    /// Signals that an epoch finished, letting schedule-aware regularizers
    /// advance their epoch counters independently of the step counter.
    fn end_epoch(&mut self) {}

    /// Downcast hook for reporting: the GM regularizer returns itself so
    /// callers can read the learned mixture (Tables IV/V); every other
    /// implementation returns `None`.
    fn as_gm(&self) -> Option<&crate::gm::GmRegularizer> {
        None
    }

    /// Downcast hook for fault-tolerant runtimes: the guarded GM
    /// regularizer returns itself so training loops can read trip/rollback
    /// counters and drive degradation; every other implementation returns
    /// `None`.
    fn as_guard(&self) -> Option<&crate::gm::GuardedGmRegularizer> {
        None
    }

    /// Mutable variant of [`Regularizer::as_guard`].
    fn as_guard_mut(&mut self) -> Option<&mut crate::gm::GuardedGmRegularizer> {
        None
    }
}

/// The absence of regularization — the "no regularization" rows of
/// Table VI.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReg;

impl Regularizer for NoReg {
    fn name(&self) -> &str {
        "none"
    }

    fn penalty(&self, _w: &[f32]) -> f64 {
        0.0
    }

    fn accumulate_grad(&mut self, _w: &[f32], _grad: &mut [f32], _ctx: StepCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noreg_is_inert() {
        let mut r = NoReg;
        let w = [1.0, -2.0, 3.0];
        let mut g = [0.5, 0.5, 0.5];
        r.accumulate_grad(&w, &mut g, StepCtx::new(0, 0));
        assert_eq!(g, [0.5, 0.5, 0.5]);
        assert_eq!(r.penalty(&w), 0.0);
        assert_eq!(r.name(), "none");
        r.end_epoch();
    }

    #[test]
    fn step_ctx_constructor() {
        let c = StepCtx::new(7, 2);
        assert_eq!(c.iteration, 7);
        assert_eq!(c.epoch, 2);
    }
}

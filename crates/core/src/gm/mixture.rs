//! The zero-mean Gaussian Mixture over weight values (Eq. 4).

use crate::error::{CoreError, Result};

/// Natural log of 2π, used by the Gaussian log-density.
const LN_TAU: f64 = 1.837_877_066_409_345_5;

/// A one-dimensional Gaussian Mixture whose components are all centered at
/// zero but carry individual precisions (Eq. 4 with μ_k = 0).
///
/// `pi[k]` are the mixing coefficients (a probability simplex) and
/// `lambda[k]` the precisions (inverse variances). All GM bookkeeping is in
/// `f64`: the EM accumulators sum over hundreds of thousands of weights and
/// single precision would lose the small-component tails.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    pi: Vec<f64>,
    lambda: Vec<f64>,
}

impl GaussianMixture {
    /// Builds a mixture, validating that `pi` is a simplex and `lambda`
    /// holds positive finite precisions.
    pub fn new(pi: Vec<f64>, lambda: Vec<f64>) -> Result<Self> {
        if pi.is_empty() || pi.len() != lambda.len() {
            return Err(CoreError::InvalidConfig {
                field: "pi/lambda",
                reason: format!(
                    "need equal, non-zero component counts, got {} and {}",
                    pi.len(),
                    lambda.len()
                ),
            });
        }
        let sum: f64 = pi.iter().sum();
        if pi.iter().any(|&p| !(p.is_finite() && p >= 0.0)) || (sum - 1.0).abs() > 1e-6 {
            return Err(CoreError::InvalidConfig {
                field: "pi",
                reason: format!("must be a probability simplex, got {pi:?} (sum {sum})"),
            });
        }
        if lambda.iter().any(|&l| !(l.is_finite() && l > 0.0)) {
            return Err(CoreError::InvalidConfig {
                field: "lambda",
                reason: format!("precisions must be positive and finite, got {lambda:?}"),
            });
        }
        Ok(GaussianMixture { pi, lambda })
    }

    /// Number of components `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.pi.len()
    }

    /// Mixing coefficients π.
    #[inline]
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Precisions λ.
    #[inline]
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// Replaces the parameters, re-validating the invariants.
    pub fn set_params(&mut self, pi: Vec<f64>, lambda: Vec<f64>) -> Result<()> {
        *self = GaussianMixture::new(pi, lambda)?;
        Ok(())
    }

    /// Log-density of component `k` at `x`: `ln N(x | 0, λ_k)`.
    #[inline]
    pub fn component_log_density(&self, k: usize, x: f64) -> f64 {
        let l = self.lambda[k];
        0.5 * (l.ln() - LN_TAU) - 0.5 * l * x * x
    }

    /// Density of component `k` at `x`.
    #[inline]
    pub fn component_density(&self, k: usize, x: f64) -> f64 {
        self.component_log_density(k, x).exp()
    }

    /// Mixture density `p(x) = Σ_k π_k N(x | 0, λ_k)` (Eq. 4).
    pub fn density(&self, x: f64) -> f64 {
        self.log_density(x).exp()
    }

    /// Log of the mixture density, computed with the log-sum-exp trick so
    /// very concentrated components do not underflow.
    pub fn log_density(&self, x: f64) -> f64 {
        let mut max = f64::NEG_INFINITY;
        let mut terms = [0.0f64; 16];
        let mut heap;
        let buf: &mut [f64] = if self.k() <= 16 {
            &mut terms[..self.k()]
        } else {
            heap = vec![0.0; self.k()];
            &mut heap
        };
        for (k, t) in buf.iter_mut().enumerate() {
            // A component with π_k = 0 contributes nothing; ln(0) = -inf is
            // the correct sentinel for log-sum-exp.
            *t = if self.pi[k] > 0.0 {
                self.pi[k].ln() + self.component_log_density(k, x)
            } else {
                f64::NEG_INFINITY
            };
            if *t > max {
                max = *t;
            }
        }
        if max == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        max + buf.iter().map(|t| (t - max).exp()).sum::<f64>().ln()
    }

    /// Responsibilities `r_k(x)` of every component for the value `x`
    /// (Eq. 9), computed in log space.
    ///
    /// The result always sums to 1 (up to rounding); if every component
    /// underflows, responsibility collapses onto the numerically dominant
    /// component.
    pub fn responsibilities(&self, x: f64, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.k());
        let mut max = f64::NEG_INFINITY;
        for k in 0..self.k() {
            let t = if self.pi[k] > 0.0 {
                self.pi[k].ln() + self.component_log_density(k, x)
            } else {
                f64::NEG_INFINITY
            };
            out.push(t);
            if t > max {
                max = t;
            }
        }
        let mut z = 0.0;
        for t in out.iter_mut() {
            *t = (*t - max).exp();
            z += *t;
        }
        for t in out.iter_mut() {
            *t /= z;
        }
    }

    /// The coefficient `Σ_k r_k(x) · λ_k` multiplying `w_m` in the
    /// regularization gradient (Eq. 10).
    pub fn reg_coefficient(&self, x: f64) -> f64 {
        // Inlined responsibilities to avoid the Vec in the hot path.
        let mut max = f64::NEG_INFINITY;
        let mut logs = [0.0f64; 16];
        let mut heap;
        let buf: &mut [f64] = if self.k() <= 16 {
            &mut logs[..self.k()]
        } else {
            heap = vec![0.0; self.k()];
            &mut heap
        };
        for (k, t) in buf.iter_mut().enumerate() {
            *t = if self.pi[k] > 0.0 {
                self.pi[k].ln() + self.component_log_density(k, x)
            } else {
                f64::NEG_INFINITY
            };
            if *t > max {
                max = *t;
            }
        }
        let mut z = 0.0;
        let mut acc = 0.0;
        for (k, t) in buf.iter().enumerate() {
            let r = (t - max).exp();
            z += r;
            acc += r * self.lambda[k];
        }
        acc / z
    }

    /// Negative log prior `−Σ_m ln p(w_m)` of a weight vector under this
    /// mixture — the data-independent part of Eq. 8 contributed by `w`.
    pub fn neg_log_prior(&self, w: &[f32]) -> f64 {
        -w.iter().map(|&v| self.log_density(v as f64)).sum::<f64>()
    }

    /// Points where two components' weighted densities cross (the A/B points
    /// of Fig. 3).
    ///
    /// For zero-mean components `i`, `j` with `λ_i < λ_j`, solving
    /// `π_i N(x|0,λ_i) = π_j N(x|0,λ_j)` gives
    /// `x² = (2·ln(π_j/π_i) + ln(λ_j/λ_i)) / (λ_j − λ_i)`; the crossing
    /// exists when the right-hand side is positive. Returns the positive
    /// root (point B); point A is its negation by symmetry.
    pub fn crossover(&self, i: usize, j: usize) -> Option<f64> {
        let (li, lj) = (self.lambda[i], self.lambda[j]);
        let (pi, pj) = (self.pi[i], self.pi[j]);
        if (li - lj).abs() < 1e-12 || pi <= 0.0 || pj <= 0.0 {
            return None;
        }
        let x2 = (2.0 * (pj / pi).ln() + (lj / li).ln()) / (lj - li);
        if x2 > 0.0 {
            Some(x2.sqrt())
        } else {
            None
        }
    }

    /// The variance of the mixture: `Σ_k π_k / λ_k` (zero mean).
    pub fn variance(&self) -> f64 {
        self.pi.iter().zip(&self.lambda).map(|(&p, &l)| p / l).sum()
    }

    /// True if any parameter is NaN or non-finite.
    pub fn is_degenerate(&self) -> bool {
        self.pi.iter().any(|p| !p.is_finite())
            || self.lambda.iter().any(|l| !(l.is_finite() && *l > 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gm2() -> GaussianMixture {
        GaussianMixture::new(vec![0.3, 0.7], vec![1.0, 100.0]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(GaussianMixture::new(vec![], vec![]).is_err());
        assert!(GaussianMixture::new(vec![0.5], vec![1.0, 2.0]).is_err());
        assert!(GaussianMixture::new(vec![0.5, 0.6], vec![1.0, 2.0]).is_err());
        assert!(GaussianMixture::new(vec![0.5, 0.5], vec![1.0, -2.0]).is_err());
        assert!(GaussianMixture::new(vec![0.5, 0.5], vec![1.0, f64::NAN]).is_err());
        assert!(GaussianMixture::new(vec![1.0], vec![4.0]).is_ok());
    }

    #[test]
    fn single_component_density_matches_gaussian() {
        let gm = GaussianMixture::new(vec![1.0], vec![4.0]).unwrap();
        // N(0.5 | 0, var=1/4): 1/sqrt(2*pi*0.25) * exp(-0.5*0.25/0.25)
        let expect = (4.0 / LN_TAU.exp()).sqrt() * (-0.5f64).exp();
        assert!((gm.density(0.5) - expect).abs() < 1e-12);
        assert!((gm.log_density(0.5) - expect.ln()).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let gm = gm2();
        let (mut acc, h) = (0.0, 1e-3);
        let mut x = -10.0;
        while x < 10.0 {
            acc += gm.density(x) * h;
            x += h;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral {acc}");
    }

    #[test]
    fn responsibilities_sum_to_one_and_favor_tight_component_near_zero() {
        let gm = gm2();
        let mut r = Vec::new();
        gm.responsibilities(0.01, &mut r);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(r[1] > 0.9, "tight component should dominate at 0: {r:?}");
        gm.responsibilities(2.0, &mut r);
        assert!(r[0] > 0.9, "wide component should dominate at 2: {r:?}");
    }

    #[test]
    fn reg_coefficient_matches_manual_sum() {
        let gm = gm2();
        let mut r = Vec::new();
        for &x in &[0.0, 0.05, 0.3, 1.5, -2.0] {
            gm.responsibilities(x, &mut r);
            let manual: f64 = r.iter().zip(gm.lambda()).map(|(ri, li)| ri * li).sum();
            assert!((gm.reg_coefficient(x) - manual).abs() < 1e-9);
        }
    }

    #[test]
    fn extreme_values_do_not_produce_nan() {
        let gm = GaussianMixture::new(vec![0.5, 0.5], vec![1e-6, 1e9]).unwrap();
        for &x in &[0.0, 1e-12, 1e6, -1e6] {
            assert!(gm.reg_coefficient(x).is_finite(), "x = {x}");
            let mut r = Vec::new();
            gm.responsibilities(x, &mut r);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn crossover_matches_density_equality() {
        let gm = gm2();
        let b = gm.crossover(0, 1).expect("components must cross");
        let d0 = gm.pi()[0] * gm.component_density(0, b);
        let d1 = gm.pi()[1] * gm.component_density(1, b);
        assert!((d0 - d1).abs() < 1e-9, "{d0} vs {d1}");
        // identical precisions -> no crossover
        let same = GaussianMixture::new(vec![0.5, 0.5], vec![2.0, 2.0]).unwrap();
        assert!(same.crossover(0, 1).is_none());
    }

    #[test]
    fn variance_is_mixture_of_inverses() {
        let gm = gm2();
        assert!((gm.variance() - (0.3 / 1.0 + 0.7 / 100.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_pi_component_is_ignored() {
        let gm = GaussianMixture::new(vec![0.0, 1.0], vec![1.0, 50.0]).unwrap();
        let only = GaussianMixture::new(vec![1.0], vec![50.0]).unwrap();
        assert!((gm.density(0.2) - only.density(0.2)).abs() < 1e-12);
        assert!(gm.reg_coefficient(0.2).is_finite());
    }

    #[test]
    fn set_params_revalidates() {
        let mut gm = gm2();
        assert!(gm.set_params(vec![0.4, 0.6], vec![2.0, 3.0]).is_ok());
        assert!(gm.set_params(vec![0.4, 0.7], vec![2.0, 3.0]).is_err());
        assert!(!gm.is_degenerate());
    }

    #[test]
    fn many_component_heap_path() {
        let k = 20;
        let pi = vec![1.0 / k as f64; k];
        let lambda: Vec<f64> = (1..=k).map(|i| i as f64).collect();
        let gm = GaussianMixture::new(pi, lambda).unwrap();
        assert!(gm.log_density(0.3).is_finite());
        assert!(gm.reg_coefficient(0.3).is_finite());
    }

    proptest! {
        #[test]
        fn responsibilities_always_simplex(
            x in -50.0f64..50.0,
            l1 in 0.01f64..1e4,
            ratio in 1.0f64..1e4,
            p in 0.01f64..0.99,
        ) {
            let gm = GaussianMixture::new(vec![p, 1.0 - p], vec![l1, l1 * ratio]).unwrap();
            let mut r = Vec::new();
            gm.responsibilities(x, &mut r);
            prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(r.iter().all(|v| (0.0..=1.0 + 1e-12).contains(v)));
            let c = gm.reg_coefficient(x);
            prop_assert!(c >= l1.min(l1 * ratio) - 1e-6);
            prop_assert!(c <= l1.max(l1 * ratio) + 1e-6);
        }
    }
}

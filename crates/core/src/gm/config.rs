//! Hyper-parameter configuration for the GM regularizer, encoding the
//! paper's guidance for "easy setting of GM hyper-parameters"
//! (Section V-B1).

use crate::error::{CoreError, Result};
use crate::gm::init::InitMethod;
use crate::gm::lazy::LazySchedule;

/// Hyper-parameters of the GM regularizer.
///
/// The defaults follow the paper's recipe so that, given only the layer's
/// dimensionality `M`, a usable configuration exists out of the box:
///
/// * `K = 4` initial components (Section V-B1 found 4 best; extra
///   components merge away during training);
/// * `b = γ·M` with γ from a small grid (default 0.005, the grid midpoint);
/// * `a = 1 + 0.01·b` (the paper: `a` is "not so significant", set to
///   `1 + 10⁻²·b` or `1 + 10⁻¹·b`);
/// * `α_k = M^0.5` for all components (`alpha_exponent = 0.5` won Fig. 4);
/// * linear precision initialization (the best method in Table VIII);
/// * `min` precision = one tenth of the weight-initialization precision.
#[derive(Debug, Clone, PartialEq)]
pub struct GmConfig {
    /// Initial number of Gaussian components `K`.
    pub k: usize,
    /// γ in `b = γ·M` — scale of the Gamma prior's rate parameter.
    pub gamma: f64,
    /// Factor `c` in `a = 1 + c·b` — shape of the Gamma prior.
    pub a_factor: f64,
    /// Exponent `e` in `α_k = M^e` — the Dirichlet concentration.
    pub alpha_exponent: f64,
    /// How the component precisions are initialized.
    pub init: InitMethod,
    /// Smallest initial component precision (`min` in Section V-E). When
    /// `None` it is derived as one tenth of the weight-init precision via
    /// [`GmConfig::min_precision_from_weight_std`].
    pub min_precision: Option<f64>,
    /// Largest precision any component may reach during an M-step. A single
    /// near-zero-variance weight cluster can otherwise push `λ_k → ∞`
    /// (Eq. 13's denominator collapses); the ceiling keeps the mixture
    /// finite. When `None` a global ceiling of `1e12` applies.
    pub max_precision: Option<f64>,
    /// Lazy-update schedule (Algorithm 2). `LazySchedule::eager()` disables
    /// laziness (Algorithm 1 behaviour).
    pub lazy: LazySchedule,
}

/// The paper's γ grid for tuning `b = γ·M` (Section V-B1).
pub const GAMMA_GRID: [f64; 8] = [0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05];

impl Default for GmConfig {
    fn default() -> Self {
        GmConfig {
            k: 4,
            gamma: 0.005,
            a_factor: 0.01,
            alpha_exponent: 0.5,
            init: InitMethod::Linear,
            min_precision: None,
            max_precision: None,
            lazy: LazySchedule::eager(),
        }
    }
}

impl GmConfig {
    /// Validates every field.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidConfig {
                field: "k",
                reason: "need at least one component".into(),
            });
        }
        if !(self.gamma.is_finite() && self.gamma > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "gamma",
                reason: format!("must be positive and finite, got {}", self.gamma),
            });
        }
        if !(self.a_factor.is_finite() && self.a_factor >= 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "a_factor",
                reason: format!("must be non-negative and finite, got {}", self.a_factor),
            });
        }
        if !self.alpha_exponent.is_finite() || self.alpha_exponent < 0.0 {
            return Err(CoreError::InvalidConfig {
                field: "alpha_exponent",
                reason: format!(
                    "must be non-negative and finite, got {}",
                    self.alpha_exponent
                ),
            });
        }
        if let Some(mp) = self.min_precision {
            if !(mp.is_finite() && mp > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field: "min_precision",
                    reason: format!("must be positive and finite, got {mp}"),
                });
            }
        }
        if let Some(mp) = self.max_precision {
            if !(mp.is_finite() && mp > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field: "max_precision",
                    reason: format!("must be positive and finite, got {mp}"),
                });
            }
            if let Some(lo) = self.min_precision {
                if mp <= lo {
                    return Err(CoreError::InvalidConfig {
                        field: "max_precision",
                        reason: format!("ceiling {mp} must exceed min_precision {lo}"),
                    });
                }
            }
        }
        self.lazy.validate()
    }

    /// The Gamma rate `b = γ·M` for a layer with `m` weight dimensions
    /// (Section III-C3: "`b` is set as a proportional function to M").
    pub fn b(&self, m: usize) -> f64 {
        self.gamma * m as f64
    }

    /// The Gamma shape `a = 1 + a_factor·b` (Section V-B1).
    pub fn a(&self, m: usize) -> f64 {
        1.0 + self.a_factor * self.b(m)
    }

    /// The Dirichlet concentration `α_k = M^alpha_exponent`, shared by all
    /// components (Section III-C3: "α is set to the power of M").
    pub fn alpha(&self, m: usize) -> f64 {
        (m as f64).powf(self.alpha_exponent)
    }

    /// Derives the `min` initial precision from the standard deviation used
    /// to initialize the layer's weights: one tenth of the weight-init
    /// precision `1/std²` (Section V-E).
    pub fn min_precision_from_weight_std(weight_std: f64) -> f64 {
        1.0 / (weight_std * weight_std) / 10.0
    }

    /// The `min` precision this config will use for a layer whose weights
    /// were initialized with `weight_std`.
    pub fn resolve_min_precision(&self, weight_std: f64) -> f64 {
        self.min_precision
            .unwrap_or_else(|| Self::min_precision_from_weight_std(weight_std))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_recipe() {
        let c = GmConfig::default();
        assert_eq!(c.k, 4);
        assert_eq!(c.alpha_exponent, 0.5);
        assert_eq!(c.init, InitMethod::Linear);
        c.validate().unwrap();
        // b = gamma*M, a = 1 + 0.01*b, alpha = sqrt(M)
        let m = 10_000;
        assert!((c.b(m) - 50.0).abs() < 1e-12);
        assert!((c.a(m) - 1.5).abs() < 1e-12);
        assert!((c.alpha(m) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_grid_matches_paper() {
        assert_eq!(GAMMA_GRID.len(), 8);
        assert_eq!(GAMMA_GRID[0], 0.0002);
        assert_eq!(GAMMA_GRID[7], 0.05);
    }

    #[test]
    fn min_precision_derivation() {
        // paper: weight init precision 100 (std = 0.1) -> min = 10
        let min = GmConfig::min_precision_from_weight_std(0.1);
        assert!((min - 10.0).abs() < 1e-9);
        let mut c = GmConfig::default();
        assert!((c.resolve_min_precision(0.1) - 10.0).abs() < 1e-9);
        c.min_precision = Some(3.0);
        assert_eq!(c.resolve_min_precision(0.1), 3.0);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let c = GmConfig {
            k: 0,
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GmConfig {
            gamma: 0.0,
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GmConfig {
            a_factor: -0.1,
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GmConfig {
            alpha_exponent: f64::NAN,
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GmConfig {
            min_precision: Some(0.0),
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GmConfig {
            max_precision: Some(f64::INFINITY),
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        // Ceiling must sit strictly above the floor.
        let c = GmConfig {
            min_precision: Some(10.0),
            max_precision: Some(10.0),
            ..GmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GmConfig {
            min_precision: Some(10.0),
            max_precision: Some(1e6),
            ..GmConfig::default()
        };
        assert!(c.validate().is_ok());
    }
}

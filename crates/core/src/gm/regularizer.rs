//! The adaptive GM regularizer: Algorithm 1 (eager) and Algorithm 2 (lazy)
//! behind the workspace-wide [`Regularizer`] trait.

use crate::error::{CoreError, Result};
use crate::gm::config::GmConfig;
use crate::gm::em::{
    e_step_with_scratch, m_step_bounded, EStepScratch, EmAccumulators, LAMBDA_MAX, LAMBDA_MIN,
};
use crate::gm::merge::effective_mixture;
use crate::gm::mixture::GaussianMixture;
use crate::regularizer::{Regularizer, StepCtx};
use crate::tele;

/// Adaptive Gaussian-Mixture regularization for one parameter group
/// (typically one layer's weights).
///
/// The regularizer owns a zero-mean [`GaussianMixture`] over the group's
/// weight values and, on each [`Regularizer::accumulate_grad`] call:
///
/// 1. **E-step** (when the [`LazySchedule`](crate::gm::LazySchedule) says
///    so): sweeps the weights once, recomputing responsibilities (Eq. 9),
///    the cached regularization gradient `g_reg` (Eq. 10), and the
///    sufficient statistics for the M-step;
/// 2. adds the (possibly stale) cached `g_reg` to the gradient buffer;
/// 3. **M-step** (on its own schedule): refreshes π (Eq. 17) and λ
///    (Eq. 13) from the most recent sufficient statistics.
///
/// The SGD step itself belongs to the optimizer that owns the weights —
/// exactly the division of labour in Fig. 2 of the paper.
pub struct GmRegularizer {
    config: GmConfig,
    gm: GaussianMixture,
    /// Cached `g_reg` from the most recent E-step (Algorithm 2 line 6).
    greg: Vec<f32>,
    /// Sufficient statistics from the most recent E-step.
    acc: EmAccumulators,
    m: usize,
    a: f64,
    b: f64,
    alpha: Vec<f64>,
    e_steps: u64,
    m_steps: u64,
    grad_calls: u64,
    degenerate_skips: u64,
    /// Consecutive lazy-schedule skips since the last E-step actually ran;
    /// reported as a `skipped` attribute on the next E-step's span so
    /// Algorithm 2's staleness is visible in a trace.
    skips_since_e: u64,
    /// Reusable E-step buffers; sweeps make no per-call allocations.
    scratch: EStepScratch,
}

impl GmRegularizer {
    /// Creates a regularizer for a parameter group of `m` dimensions whose
    /// weights were initialized with standard deviation `weight_std`
    /// (needed to derive the initial component precisions, Section V-E).
    pub fn new(m: usize, weight_std: f64, config: GmConfig) -> Result<Self> {
        config.validate()?;
        if m == 0 {
            return Err(CoreError::InvalidConfig {
                field: "m",
                reason: "parameter group must have at least one dimension".into(),
            });
        }
        if !(weight_std.is_finite() && weight_std > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "weight_std",
                reason: format!("must be positive and finite, got {weight_std}"),
            });
        }
        let alpha = vec![config.alpha(m); config.k];
        let (a, b) = (config.a(m), config.b(m));
        // The Gamma prior caps learnable precisions at roughly
        // (2(a-1) + M) / 2b ≈ 1/(2γ); initializing components above that
        // cap is inconsistent with the prior (the first M-step would slam
        // them down) and, worse, makes the *initial* g_reg violently strong
        // for tightly-initialized layers (tiny weight_std ⇒ huge derived
        // precision). Clamp the initial `min` to the prior's cap.
        let prior_cap = (2.0 * (a - 1.0) + m as f64) / (2.0 * b);
        let min = config
            .resolve_min_precision(weight_std)
            .min(prior_cap.max(1e-6));
        let gm = config.init.mixture(config.k, min)?;
        Ok(GmRegularizer {
            gm,
            greg: vec![0.0; m],
            acc: EmAccumulators::zeros(config.k),
            m,
            a,
            b,
            alpha,
            config,
            e_steps: 0,
            m_steps: 0,
            grad_calls: 0,
            degenerate_skips: 0,
            skips_since_e: 0,
            scratch: EStepScratch::default(),
        })
    }

    /// The current mixture (all `K` numeric components).
    pub fn mixture(&self) -> &GaussianMixture {
        &self.gm
    }

    /// The mixture with numerically-merged components collapsed — what
    /// Tables IV/V report.
    pub fn learned_mixture(&self) -> Result<GaussianMixture> {
        effective_mixture(&self.gm)
    }

    /// Number of weight dimensions `M` this group covers.
    pub fn dims(&self) -> usize {
        self.m
    }

    /// The configuration this regularizer was built with.
    pub fn config(&self) -> &GmConfig {
        &self.config
    }

    /// The resolved Gamma shape `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The resolved Gamma rate `b = γ·M`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The resolved Dirichlet concentration `α` (one entry per component).
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// How many E-steps (responsibility + `g_reg` recomputations) ran.
    pub fn e_step_count(&self) -> u64 {
        self.e_steps
    }

    /// How many M-steps (π/λ refreshes) ran.
    pub fn m_step_count(&self) -> u64 {
        self.m_steps
    }

    /// How many gradient calls were served (including cache hits).
    pub fn grad_call_count(&self) -> u64 {
        self.grad_calls
    }

    /// How many scheduled M-steps were skipped because the host model's
    /// weights had gone non-finite and poisoned the EM statistics.
    pub fn degenerate_skip_count(&self) -> u64 {
        self.degenerate_skips
    }

    /// The cached `g_reg` from the most recent E-step (what
    /// [`Regularizer::accumulate_grad`] adds to the gradient between
    /// E-steps). Exposed so guard rails can validate the cache without
    /// re-running a sweep.
    pub fn cached_reg_grad(&self) -> &[f32] {
        &self.greg
    }

    /// The λ bounds every M-step clamps against: `min_precision` (when set)
    /// up to `max_precision` (default global ceiling `1e12`).
    pub fn lambda_bounds(&self) -> (f64, f64) {
        let floor = self.config.min_precision.unwrap_or(LAMBDA_MIN);
        let ceiling = self
            .config
            .max_precision
            .unwrap_or(LAMBDA_MAX)
            .max(floor * 2.0);
        (floor, ceiling)
    }

    /// Replaces the mixture state (checkpoint restore). The cached `g_reg`
    /// is cleared; the next scheduled E-step rebuilds it.
    pub(crate) fn install_mixture(&mut self, gm: GaussianMixture) -> Result<()> {
        if gm.k() != self.config.k {
            return Err(CoreError::InvalidConfig {
                field: "mixture",
                reason: format!(
                    "component count {} does not match config K = {}",
                    gm.k(),
                    self.config.k
                ),
            });
        }
        self.gm = gm;
        self.greg.iter_mut().for_each(|v| *v = 0.0);
        self.acc = EmAccumulators::zeros(self.config.k);
        Ok(())
    }

    /// Runs one explicit E-step outside the schedule (used by the tool API
    /// and by tests).
    pub fn force_e_step(&mut self, w: &[f32]) -> Result<()> {
        self.check_dims(w)?;
        self.acc = e_step_with_scratch(&self.gm, w, Some(&mut self.greg), &mut self.scratch);
        self.e_steps += 1;
        Ok(())
    }

    /// Installs externally computed E-step results: the merged sufficient
    /// statistics plus the full `g_reg` cache assembled from per-shard
    /// slices. This is the sharded-runtime entry point — workers compute
    /// [`e_step_partial`](crate::gm::e_step_partial) over disjoint weight
    /// ranges, the supervisor merges them in fixed shard order with
    /// [`merge_partials`](crate::gm::merge_partials), and the merged result
    /// lands here exactly as if [`Regularizer::accumulate_grad`] had run the
    /// sweep itself.
    pub fn adopt_e_step(&mut self, acc: EmAccumulators, greg: &[f32]) -> Result<()> {
        self.check_dims(greg)?;
        if acc.resp_sum.len() != self.config.k {
            return Err(CoreError::InvalidConfig {
                field: "acc",
                reason: format!(
                    "statistics cover {} components but config K = {}",
                    acc.resp_sum.len(),
                    self.config.k
                ),
            });
        }
        if acc.m != self.m {
            return Err(CoreError::DimensionMismatch {
                expected: self.m,
                actual: acc.m,
            });
        }
        self.greg.copy_from_slice(greg);
        self.acc = acc;
        self.e_steps += 1;
        tele::counter_inc("gm.e_step.runs");
        Ok(())
    }

    /// Runs the M-step from the current (possibly adopted) statistics with
    /// [`Regularizer::accumulate_grad`]'s freeze-on-invalid semantics: a
    /// degenerate update leaves the mixture untouched instead of erroring.
    /// Returns whether the mixture was updated. No-op (returning `false`)
    /// before the first E-step.
    pub fn m_step_from_stats(&mut self) -> bool {
        if self.acc.m == 0 {
            return false;
        }
        tele::counter_inc("gm.m_step.scheduled");
        let (floor, ceiling) = self.lambda_bounds();
        let (pi, lambda) = m_step_bounded(&self.acc, self.a, self.b, &self.alpha, floor, ceiling);
        if self.gm.set_params(pi, lambda).is_ok() {
            self.m_steps += 1;
            tele::counter_inc("gm.m_step.runs");
            true
        } else {
            self.degenerate_skips += 1;
            tele::counter_inc("gm.m_step.degenerate_skips");
            false
        }
    }

    /// Runs one explicit M-step from the most recent sufficient statistics.
    pub fn force_m_step(&mut self) -> Result<()> {
        if self.acc.m == 0 {
            return Err(CoreError::InvalidConfig {
                field: "m_step",
                reason: "no E-step statistics available yet".into(),
            });
        }
        let (floor, ceiling) = self.lambda_bounds();
        let (pi, lambda) = m_step_bounded(&self.acc, self.a, self.b, &self.alpha, floor, ceiling);
        self.gm.set_params(pi, lambda)?;
        self.m_steps += 1;
        if self.gm.is_degenerate() {
            return Err(CoreError::DegenerateMixture {
                detail: format!("pi {:?}, lambda {:?}", self.gm.pi(), self.gm.lambda()),
            });
        }
        Ok(())
    }

    fn check_dims(&self, w: &[f32]) -> Result<()> {
        if w.len() != self.m {
            return Err(CoreError::DimensionMismatch {
                expected: self.m,
                actual: w.len(),
            });
        }
        Ok(())
    }
}

impl Regularizer for GmRegularizer {
    fn name(&self) -> &str {
        "GM"
    }

    fn as_gm(&self) -> Option<&GmRegularizer> {
        Some(self)
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        tele::counter_inc("gm.penalty.calls");
        let _t = tele::span("gm.penalty.ns");
        self.gm.neg_log_prior(w)
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], ctx: StepCtx) {
        assert_eq!(
            w.len(),
            grad.len(),
            "weight and gradient buffers must have equal length"
        );
        assert_eq!(
            w.len(),
            self.m,
            "weight vector length changed under a GM regularizer"
        );
        self.grad_calls += 1;
        tele::counter_inc("gm.grad.calls");

        // E-step (Algorithm 2 lines 4-7). The very first call always runs it
        // because iteration 0 satisfies `it mod Im == 0`.
        tele::counter_inc("gm.e_step.decisions");
        if self.config.lazy.run_e_step(ctx.iteration, ctx.epoch) {
            tele::counter_inc("gm.e_step.runs");
            {
                let _t = tele::span("gm.e_step.ns")
                    .with_u64("iter", ctx.iteration)
                    .with_u64("epoch", ctx.epoch)
                    .with_u64("k", self.config.k as u64)
                    .with_u64("m", self.m as u64)
                    .with_u64("skipped", self.skips_since_e);
                self.acc =
                    e_step_with_scratch(&self.gm, w, Some(&mut self.greg), &mut self.scratch);
            }
            self.e_steps += 1;
            self.skips_since_e = 0;
            #[cfg(feature = "telemetry")]
            tele::histogram_record("gm.resp.entropy", self.acc.mixing_entropy());

            // Failpoint: poison the freshly cached g_reg, modelling a
            // numerically corrupted sweep (chaos suite only).
            #[cfg(feature = "failpoints")]
            if let Some(gmreg_faults::FaultKind::NanFill) = gmreg_faults::fire("gm.greg.nan") {
                self.greg.iter_mut().for_each(|v| *v = f32::NAN);
            }
        } else {
            tele::counter_inc("gm.e_step.skips");
            self.skips_since_e += 1;
        }

        // Gradient uses the cached g_reg (line 8).
        for (g, &r) in grad.iter_mut().zip(&self.greg) {
            *g += r;
        }

        // M-step (lines 9-11) reuses the most recent responsibilities.
        if self.config.lazy.run_m_step(ctx.iteration, ctx.epoch) {
            tele::counter_inc("gm.m_step.scheduled");
            if self.acc.m > 0 {
                tele::counter_inc("gm.m_step.runs");
                let mut _t = tele::span("gm.m_step.ns")
                    .with_u64("iter", ctx.iteration)
                    .with_u64("epoch", ctx.epoch)
                    .with_u64("k", self.config.k as u64);
                let (floor, ceiling) = self.lambda_bounds();
                #[allow(unused_mut)]
                let (pi, mut lambda) =
                    m_step_bounded(&self.acc, self.a, self.b, &self.alpha, floor, ceiling);

                // Failpoint: scale λ past any sane ceiling, modelling the
                // Eq. 13 blow-up the guard rail must catch (chaos suite
                // only). The scale is applied *after* the clamp so the guard
                // sees the explosion, not the clamp.
                #[cfg(feature = "failpoints")]
                if let Some(gmreg_faults::FaultKind::Scale(s)) =
                    gmreg_faults::fire("gm.lambda.blowup")
                {
                    lambda.iter_mut().for_each(|l| *l *= s);
                }
                // π drift (L1) and λ drift (max |log ratio|) per update feed
                // the convergence histograms; computed only when the metric
                // sink exists.
                #[cfg(feature = "telemetry")]
                {
                    let pi_drift: f64 = self
                        .gm
                        .pi()
                        .iter()
                        .zip(&pi)
                        .map(|(old, new)| (old - new).abs())
                        .sum();
                    let lambda_drift = self
                        .gm
                        .lambda()
                        .iter()
                        .zip(&lambda)
                        .map(|(old, new)| (new / old).ln().abs())
                        .fold(0.0f64, f64::max);
                    tele::histogram_record("gm.pi.drift.l1", pi_drift);
                    tele::histogram_record("gm.lambda.drift.log", lambda_drift);
                }
                // The clamps in m_step keep the update valid for finite
                // inputs; if the *weights* have gone non-finite (a diverging
                // host model) the statistics poison the update. Freeze the
                // mixture instead of propagating the corruption.
                if self.gm.set_params(pi, lambda).is_ok() {
                    self.m_steps += 1;
                    #[cfg(feature = "telemetry")]
                    {
                        let (mut pi_min, mut pi_max) = (f64::MAX, f64::MIN);
                        for &p in self.gm.pi() {
                            pi_min = pi_min.min(p);
                            pi_max = pi_max.max(p);
                        }
                        let (mut l_min, mut l_max) = (f64::MAX, f64::MIN);
                        for &l in self.gm.lambda() {
                            l_min = l_min.min(l);
                            l_max = l_max.max(l);
                        }
                        tele::gauge_set("gm.pi.min", pi_min);
                        tele::gauge_set("gm.pi.max", pi_max);
                        tele::gauge_set("gm.lambda.min", l_min);
                        tele::gauge_set("gm.lambda.max", l_max);
                        _t.set_f64("lambda_max", l_max);
                    }
                } else {
                    self.degenerate_skips += 1;
                    tele::counter_inc("gm.m_step.degenerate_skips");
                    _t.set_u64("degenerate", 1);
                }
            }
        } else {
            tele::counter_inc("gm.m_step.skips");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gm::init::InitMethod;
    use crate::gm::lazy::LazySchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_population_weights(n_each: usize, seed: u64) -> Vec<f32> {
        use rand::RngExt as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Vec::with_capacity(2 * n_each);
        for _ in 0..n_each {
            // Box-Muller
            let (u1, u2) = (rng.random::<f64>().max(1e-12), rng.random::<f64>());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            w.push((z * 0.04) as f32);
            let (u1, u2) = (rng.random::<f64>().max(1e-12), rng.random::<f64>());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            w.push((z * 0.8) as f32);
        }
        w
    }

    fn cfg() -> GmConfig {
        GmConfig {
            min_precision: Some(1.0),
            ..GmConfig::default()
        }
    }

    #[test]
    fn constructor_validates() {
        assert!(GmRegularizer::new(0, 0.1, cfg()).is_err());
        assert!(GmRegularizer::new(10, 0.0, cfg()).is_err());
        assert!(GmRegularizer::new(10, f64::NAN, cfg()).is_err());
        let mut bad = cfg();
        bad.k = 0;
        assert!(GmRegularizer::new(10, 0.1, bad).is_err());
        let r = GmRegularizer::new(10, 0.1, cfg()).unwrap();
        assert_eq!(r.dims(), 10);
        assert_eq!(r.name(), "GM");
        assert_eq!(r.mixture().k(), 4);
        assert_eq!(r.alpha().len(), 4);
        assert!(r.a() > 1.0);
        assert!(r.b() > 0.0);
    }

    #[test]
    fn hyper_parameters_follow_recipe() {
        let m = 2500;
        let r = GmRegularizer::new(m, 0.1, GmConfig::default()).unwrap();
        assert!((r.b() - 0.005 * m as f64).abs() < 1e-9);
        assert!((r.a() - (1.0 + 0.01 * r.b())).abs() < 1e-9);
        assert!((r.alpha()[0] - (m as f64).sqrt()).abs() < 1e-9);
        // min precision derived from weight std 0.1 -> 10; linear init spans [10, 40]
        assert!((r.mixture().lambda()[0] - 10.0).abs() < 1e-9);
        assert!((r.mixture().lambda()[3] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn learns_two_components_from_two_populations() {
        let w = two_population_weights(500, 3);
        let mut reg = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut grad = vec![0.0f32; w.len()];
        for it in 0..300u64 {
            grad.fill(0.0);
            reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, 0));
        }
        let eff = reg.learned_mixture().unwrap();
        assert_eq!(
            eff.k(),
            2,
            "expected 2 effective components, got {:?} / {:?}",
            eff.pi(),
            eff.lambda()
        );
        // The Gamma prior (b = γ·M) deliberately caps the tight component:
        // λ_tight ≈ Σr / (2b + Σr·w²) ≈ 500/10.8 ≈ 46 with γ = 0.005,
        // while the wide component lands near its sample precision ~1.5.
        assert!(eff.lambda()[0] < 5.0, "{:?}", eff.lambda());
        assert!(
            eff.lambda()[1] > 10.0 * eff.lambda()[0],
            "{:?}",
            eff.lambda()
        );
    }

    #[test]
    fn gradient_is_coefficient_times_weight_after_e_step() {
        let w = two_population_weights(50, 1);
        let mut reg = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut grad = vec![0.0f32; w.len()];
        reg.accumulate_grad(&w, &mut grad, StepCtx::new(0, 0));
        for (i, (&g, &wv)) in grad.iter().zip(&w).enumerate() {
            let c = reg.mixture().reg_coefficient(wv as f64);
            // The mixture has been M-stepped after caching, so compare against
            // a fresh E-step bound instead: sign must match w, magnitude
            // bounded by lambda_max * |w|.
            assert!(
                (g as f64) * (wv as f64) >= 0.0,
                "dim {i}: greg {g} vs w {wv}"
            );
            let lmax = reg
                .mixture()
                .lambda()
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max)
                .max(c);
            assert!((g as f64).abs() <= lmax * (wv as f64).abs() + 1e-9);
        }
    }

    #[test]
    fn lazy_schedule_skips_updates() {
        let w = two_population_weights(50, 2);
        let mut c = cfg();
        c.lazy = LazySchedule::new(1, 10, 20).unwrap();
        let mut reg = GmRegularizer::new(w.len(), 0.5, c).unwrap();
        let mut grad = vec![0.0f32; w.len()];
        let batches_per_epoch = 10u64;
        for it in 0..100u64 {
            let epoch = it / batches_per_epoch;
            grad.fill(0.0);
            reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, epoch));
        }
        // epoch 0 (it 0..10) -> 10 e-steps; it 10..100 -> every 10th: 9 more.
        assert_eq!(reg.e_step_count(), 19);
        // epoch 0 -> 10 m-steps; it 10..100 every 20th (20,40,60,80) -> 4... plus it=100? no.
        assert_eq!(reg.m_step_count(), 14);
        assert_eq!(reg.grad_call_count(), 100);
    }

    #[test]
    fn lazy_and_eager_agree_when_weights_are_static() {
        // With static weights the cached greg never goes stale, so lazy and
        // eager must produce identical gradients at every step.
        let w = two_population_weights(100, 5);
        let mut eager_cfg = cfg();
        eager_cfg.lazy = LazySchedule::eager();
        let mut lazy_cfg = cfg();
        lazy_cfg.lazy = LazySchedule::new(0, 7, 13).unwrap();
        let mut eager = GmRegularizer::new(w.len(), 0.5, eager_cfg).unwrap();
        let mut lazy = GmRegularizer::new(w.len(), 0.5, lazy_cfg).unwrap();
        let mut ge = vec![0.0f32; w.len()];
        let mut gl = vec![0.0f32; w.len()];
        for it in 0..40u64 {
            ge.fill(0.0);
            gl.fill(0.0);
            eager.accumulate_grad(&w, &mut ge, StepCtx::new(it, 0));
            lazy.accumulate_grad(&w, &mut gl, StepCtx::new(it, 0));
        }
        // Mixtures evolve on different schedules; compare final fixed points
        // rather than step-by-step. Run both to convergence:
        for it in 40..400u64 {
            ge.fill(0.0);
            gl.fill(0.0);
            eager.accumulate_grad(&w, &mut ge, StepCtx::new(it, 0));
            lazy.accumulate_grad(&w, &mut gl, StepCtx::new(it, 0));
        }
        for (a, b) in ge.iter().zip(&gl) {
            // EM paths differ, fixed points agree: compare with a relative
            // tolerance.
            assert!((a - b).abs() <= 1e-2 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn penalty_decreases_as_mixture_adapts() {
        let w = two_population_weights(300, 7);
        let mut reg = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let before = reg.penalty(&w);
        let mut grad = vec![0.0f32; w.len()];
        for it in 0..200u64 {
            grad.fill(0.0);
            reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, 0));
        }
        let after = reg.penalty(&w);
        assert!(
            after < before,
            "adapting the prior should raise the likelihood of w: {before} -> {after}"
        );
    }

    #[test]
    fn max_precision_caps_lambda_for_tiny_weights() {
        // All weights essentially zero: without a ceiling the tight
        // component's λ races toward the prior cap ~1/(2γ) per M-step and,
        // with a pathologically small γ, toward inf. The configured ceiling
        // must hold at every step.
        let w = vec![1e-20f32; 64];
        let mut c = GmConfig {
            gamma: 1e-15, // b = γ·M ≈ 6.4e-14: denominator is effectively 0
            min_precision: Some(1.0),
            max_precision: Some(1e8),
            ..GmConfig::default()
        };
        c.a_factor = 0.0; // a = 1: numerator reduces to Σ r
        let mut reg = GmRegularizer::new(w.len(), 0.5, c).unwrap();
        let mut grad = vec![0.0f32; w.len()];
        for it in 0..20u64 {
            grad.fill(0.0);
            reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, 0));
            for &l in reg.mixture().lambda() {
                assert!(l.is_finite() && l <= 1e8, "λ escaped the ceiling: {l}");
            }
        }
        // The blow-up actually happened (we saturated, not just stayed low).
        assert!(
            reg.mixture().lambda().contains(&1e8),
            "{:?}",
            reg.mixture().lambda()
        );
        // And the gradients derived from the capped mixture stay finite.
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn force_steps_and_errors() {
        let mut reg = GmRegularizer::new(4, 0.5, cfg()).unwrap();
        assert!(reg.force_m_step().is_err(), "no statistics yet");
        assert!(reg.force_e_step(&[0.1, 0.2]).is_err(), "wrong dims");
        reg.force_e_step(&[0.1, -0.2, 0.3, 0.0]).unwrap();
        reg.force_m_step().unwrap();
        assert_eq!(reg.e_step_count(), 1);
        assert_eq!(reg.m_step_count(), 1);
    }

    #[test]
    fn different_init_methods_all_converge_to_same_populations() {
        let w = two_population_weights(400, 11);
        let mut finals = Vec::new();
        for init in InitMethod::ALL {
            let mut c = cfg();
            c.init = init;
            let mut reg = GmRegularizer::new(w.len(), 0.5, c).unwrap();
            let mut grad = vec![0.0f32; w.len()];
            for it in 0..300u64 {
                grad.fill(0.0);
                reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, 0));
            }
            finals.push(reg.learned_mixture().unwrap());
        }
        // linear and proportional must find the two populations
        for (i, gm) in finals.iter().enumerate() {
            if InitMethod::ALL[i] == InitMethod::Identical {
                continue; // identical init can stay collapsed (paper: worst method)
            }
            assert_eq!(gm.k(), 2, "{:?}: {:?}", InitMethod::ALL[i], gm.lambda());
        }
    }
}

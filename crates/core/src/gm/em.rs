//! The lightweight EM machinery: one-pass E-step sweep over the weight
//! vector and the closed-form, prior-smoothed M-step (Eq. 13 and Eq. 17).

use crate::gm::mixture::GaussianMixture;
use crate::gm::simd;
use crate::tele;

/// Per-component sufficient statistics gathered by an E-step sweep:
/// `resp_sum[k] = Σ_m r_k(w_m)` and `resp_wsq_sum[k] = Σ_m r_k(w_m)·w_m²`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmAccumulators {
    /// `Σ_m r_k(w_m)` per component.
    pub resp_sum: Vec<f64>,
    /// `Σ_m r_k(w_m)·w_m²` per component.
    pub resp_wsq_sum: Vec<f64>,
    /// Number of weight dimensions `M` the sweep covered.
    pub m: usize,
}

impl EmAccumulators {
    /// Zeroed accumulators for `k` components.
    pub fn zeros(k: usize) -> Self {
        EmAccumulators {
            resp_sum: vec![0.0; k],
            resp_wsq_sum: vec![0.0; k],
            m: 0,
        }
    }

    /// Shannon entropy (nats) of the aggregate responsibility mass
    /// `resp_sum / M` — 0 when one component claims every weight, `ln K`
    /// when the mass is uniform. Telemetry tracks this per E-step as a
    /// cheap collapse indicator; returns 0 for empty accumulators.
    pub fn mixing_entropy(&self) -> f64 {
        let total: f64 = self.resp_sum.iter().sum();
        if total.is_nan() || total <= 0.0 {
            return 0.0;
        }
        -self
            .resp_sum
            .iter()
            .filter(|&&r| r > 0.0)
            .map(|&r| {
                let p = r / total;
                p * p.ln()
            })
            .sum::<f64>()
    }
}

/// Fixed E-step chunk size, independent of thread count. Both the serial
/// and the parallel sweep accumulate per-chunk partials and fold them in
/// chunk-index order, so the f64 sums are bit-identical for every thread
/// count (including the `--no-default-features` build).
pub const E_STEP_CHUNK: usize = 4096;

/// Minimum chunks a worker must receive before the sweep forks; below
/// `MIN_CHUNKS_PER_THREAD * E_STEP_CHUNK` weights per thread the spawn
/// overhead dominates and the sweep stays on the calling thread.
#[cfg(feature = "parallel")]
const MIN_CHUNKS_PER_THREAD: usize = 4;

/// Reusable per-call buffers for [`e_step_with_scratch`]: the per-component
/// log weights and the four-lane kernel workspace
/// ([`simd::SCRATCH_PER_K`]`·k` f64 slots). Owning one of these across calls
/// (as [`GmRegularizer`] does) removes the two heap allocations the sweep
/// would otherwise make on every invocation.
///
/// [`GmRegularizer`]: crate::gm::GmRegularizer
#[derive(Debug, Clone, Default)]
pub struct EStepScratch {
    log_base: Vec<f64>,
    logs: Vec<f64>,
}

/// One E-step sweep over the weight vector (Eq. 9 applied to every
/// dimension).
///
/// In a single pass this computes the sufficient statistics for the M-step
/// and, when `greg_out` is given, the cached regularization gradient
/// `g_reg[m] = (Σ_k r_k(w_m)·λ_k) · w_m` of Eq. 10 — the quantity
/// Algorithm 2 computes in its E-step and reuses until the next one.
///
/// With the `parallel` feature enabled, large sweeps fork across
/// [`gmreg_parallel::max_threads`] workers; the chunked reduction keeps the
/// result bit-identical to the serial sweep.
pub fn e_step(gm: &GaussianMixture, w: &[f32], greg_out: Option<&mut [f32]>) -> EmAccumulators {
    let mut scratch = EStepScratch::default();
    e_step_with_scratch(gm, w, greg_out, &mut scratch)
}

/// [`e_step`] with caller-owned scratch buffers (no per-call allocations
/// beyond what the parallel fork itself needs).
pub fn e_step_with_scratch(
    gm: &GaussianMixture,
    w: &[f32],
    greg_out: Option<&mut [f32]>,
    scratch: &mut EStepScratch,
) -> EmAccumulators {
    if let Some(out) = greg_out.as_deref() {
        assert_eq!(out.len(), w.len(), "greg buffer must match weight length");
    }
    let _t = tele::span("gm.em.sweep.ns");
    tele::counter_add("gm.em.sweep.weights", w.len() as u64);
    prepare_log_base(gm, &mut scratch.log_base);

    #[cfg(feature = "parallel")]
    {
        let n_chunks = w.len().div_ceil(E_STEP_CHUNK);
        let threads = gmreg_parallel::effective_threads(n_chunks, MIN_CHUNKS_PER_THREAD);
        if threads > 1 {
            return e_step_parallel(gm.lambda(), &scratch.log_base, w, greg_out, threads);
        }
    }

    e_step_serial_chunked(
        gm.lambda(),
        &scratch.log_base,
        w,
        greg_out,
        &mut scratch.logs,
    )
}

/// The serial sweep, always compiled. Property tests compare the parallel
/// sweep against this for bit-identity.
pub fn e_step_serial(
    gm: &GaussianMixture,
    w: &[f32],
    greg_out: Option<&mut [f32]>,
) -> EmAccumulators {
    if let Some(out) = greg_out.as_deref() {
        assert_eq!(out.len(), w.len(), "greg buffer must match weight length");
    }
    let mut scratch = EStepScratch::default();
    prepare_log_base(gm, &mut scratch.log_base);
    e_step_serial_chunked(
        gm.lambda(),
        &scratch.log_base,
        w,
        greg_out,
        &mut scratch.logs,
    )
}

/// The parallel sweep with an explicit worker count, for equivalence tests
/// and benches; production code goes through [`e_step`] /
/// [`e_step_with_scratch`], which pick the count from the pool policy.
#[cfg(feature = "parallel")]
pub fn e_step_with_threads(
    gm: &GaussianMixture,
    w: &[f32],
    greg_out: Option<&mut [f32]>,
    threads: usize,
) -> EmAccumulators {
    if let Some(out) = greg_out.as_deref() {
        assert_eq!(out.len(), w.len(), "greg buffer must match weight length");
    }
    let mut scratch = EStepScratch::default();
    prepare_log_base(gm, &mut scratch.log_base);
    if threads <= 1 {
        return e_step_serial_chunked(
            gm.lambda(),
            &scratch.log_base,
            w,
            greg_out,
            &mut scratch.logs,
        );
    }
    e_step_parallel(gm.lambda(), &scratch.log_base, w, greg_out, threads)
}

/// Per-component log weights: ln π_k + 0.5 ln λ_k (the -0.5 ln 2π constant
/// cancels in the softmax).
fn prepare_log_base(gm: &GaussianMixture, log_base: &mut Vec<f64>) {
    prepare_log_base_parts(gm.pi(), gm.lambda(), log_base);
}

fn prepare_log_base_parts(pi: &[f64], lambda: &[f64], log_base: &mut Vec<f64>) {
    log_base.clear();
    log_base.extend(pi.iter().zip(lambda).map(|(&pi, &lambda)| {
        if pi > 0.0 {
            pi.ln() + 0.5 * lambda.ln()
        } else {
            f64::NEG_INFINITY
        }
    }));
}

/// Per-shard E-step: sufficient statistics (and optionally `g_reg`) for one
/// contiguous run of weights, computed from raw mixture parameters so a
/// remote/sharded worker does not need the [`GaussianMixture`] itself.
///
/// Shard boundaries must sit on [`E_STEP_CHUNK`] multiples of the *global*
/// weight vector; the shard's internal chunking then coincides with the
/// global sweep's, so merging shard partials in a fixed shard order (see
/// [`merge_partials`]) is deterministic for any worker count.
pub fn e_step_partial(
    pi: &[f64],
    lambda: &[f64],
    w: &[f32],
    greg_out: Option<&mut [f32]>,
) -> EmAccumulators {
    if let Some(out) = greg_out.as_deref() {
        assert_eq!(out.len(), w.len(), "greg buffer must match weight length");
    }
    let mut log_base = Vec::new();
    prepare_log_base_parts(pi, lambda, &mut log_base);
    let mut logs = Vec::new();
    e_step_serial_chunked(lambda, &log_base, w, greg_out, &mut logs)
}

/// Merge one shard's E-step statistics into `total` (component-wise f64
/// adds plus the covered-dimension count). Callers must invoke this in a
/// fixed shard order — ascending shard index, or a fixed-shape reduction
/// tree over it — so the floating-point sums are independent of how shards
/// were distributed over workers.
pub fn merge_partials(total: &mut EmAccumulators, partial: &EmAccumulators) {
    fold_partial(total, partial);
    total.m += partial.m;
}

/// The fused per-chunk kernel: responsibilities, sufficient statistics and
/// (optionally) `g_reg` for one contiguous run of weights. Delegates to the
/// four-lane [`simd`] kernel (AVX2 when available, bit-identical scalar
/// mirror otherwise); `scratch` is a caller-owned workspace the kernel
/// resizes to [`simd::SCRATCH_PER_K`]`·k`.
fn e_step_chunk(
    lambda: &[f64],
    log_base: &[f64],
    w: &[f32],
    greg: Option<&mut [f32]>,
    scratch: &mut Vec<f64>,
) -> EmAccumulators {
    simd::chunk_kernel(lambda, log_base, w, greg, scratch)
}

/// Fold `partial` into `total` (component-wise f64 adds). Both sweeps call
/// this in ascending chunk order, which is what makes them bit-identical.
fn fold_partial(total: &mut EmAccumulators, partial: &EmAccumulators) {
    for (t, p) in total.resp_sum.iter_mut().zip(partial.resp_sum.iter()) {
        *t += p;
    }
    for (t, p) in total
        .resp_wsq_sum
        .iter_mut()
        .zip(partial.resp_wsq_sum.iter())
    {
        *t += p;
    }
}

fn e_step_serial_chunked(
    lambda: &[f64],
    log_base: &[f64],
    w: &[f32],
    mut greg_out: Option<&mut [f32]>,
    logs: &mut Vec<f64>,
) -> EmAccumulators {
    let k = lambda.len();
    let mut total = EmAccumulators::zeros(k);
    total.m = w.len();
    let mut start = 0usize;
    for wc in w.chunks(E_STEP_CHUNK) {
        let gc = greg_out
            .as_deref_mut()
            .map(|g| &mut g[start..start + wc.len()]);
        let partial = e_step_chunk(lambda, log_base, wc, gc, logs);
        fold_partial(&mut total, &partial);
        start += wc.len();
    }
    total
}

#[cfg(feature = "parallel")]
fn e_step_parallel(
    lambda: &[f64],
    log_base: &[f64],
    w: &[f32],
    greg_out: Option<&mut [f32]>,
    threads: usize,
) -> EmAccumulators {
    let k = lambda.len();

    /// One fixed-size chunk of the sweep: borrowed inputs/outputs plus the
    /// slot its partial statistics are returned in.
    struct ChunkTask<'a> {
        w: &'a [f32],
        greg: Option<&'a mut [f32]>,
        partial: EmAccumulators,
    }

    let n_chunks = w.len().div_ceil(E_STEP_CHUNK);
    let mut tasks: Vec<ChunkTask<'_>> = Vec::with_capacity(n_chunks);
    match greg_out {
        Some(greg) => {
            for (wc, gc) in w.chunks(E_STEP_CHUNK).zip(greg.chunks_mut(E_STEP_CHUNK)) {
                tasks.push(ChunkTask {
                    w: wc,
                    greg: Some(gc),
                    partial: EmAccumulators::zeros(k),
                });
            }
        }
        None => {
            for wc in w.chunks(E_STEP_CHUNK) {
                tasks.push(ChunkTask {
                    w: wc,
                    greg: None,
                    partial: EmAccumulators::zeros(k),
                });
            }
        }
    }

    gmreg_parallel::for_each_part(&mut tasks, threads, |_, task| {
        let mut scratch = Vec::new();
        task.partial = e_step_chunk(
            lambda,
            log_base,
            task.w,
            task.greg.as_deref_mut(),
            &mut scratch,
        );
    });

    let mut total = EmAccumulators::zeros(k);
    total.m = w.len();
    for task in &tasks {
        fold_partial(&mut total, &task.partial);
    }
    total
}

/// Bounds that keep the M-step's precisions physical even on adversarial
/// inputs (all-zero weights drive λ toward `a/b`-dominated values; the
/// clamp is a safety net, not part of the paper's formulas).
pub const LAMBDA_MIN: f64 = 1e-10;
/// Upper clamp for precisions; see [`LAMBDA_MIN`].
pub const LAMBDA_MAX: f64 = 1e12;
/// Mixing coefficients are floored at this value before renormalization so
/// no component's log weight becomes `-inf` mid-training.
pub const PI_FLOOR: f64 = 1e-12;

/// The M-step: closed-form minimizers for λ (Eq. 13) and π (Eq. 17) given
/// fixed responsibilities.
///
/// * `λ_k = (2(a−1) + Σ_m r_k) / (2b + Σ_m r_k·w_m²)` — the Gamma prior's
///   `2(a−1)` and `2b` act as pseudo-counts that smooth the estimate;
/// * `π_k = (Σ_m r_k + α_k − 1) / (M + Σ_j (α_j − 1))` — the Dirichlet
///   prior biases the mixture toward keeping components alive.
///
/// Returns `(pi, lambda)`.
pub fn m_step(acc: &EmAccumulators, a: f64, b: f64, alpha: &[f64]) -> (Vec<f64>, Vec<f64>) {
    m_step_bounded(acc, a, b, alpha, LAMBDA_MIN, LAMBDA_MAX)
}

/// [`m_step`] with explicit precision bounds `[floor, ceiling]`.
///
/// A component whose responsibility mass concentrates on near-zero weights
/// drives Eq. 13's denominator `2b + Σ r·w²` toward `2b` while the numerator
/// stays O(Σ r); with a tiny `b` the ratio can reach `inf` in one step. The
/// ceiling turns that blow-up into a finite, configurable saturation
/// ([`crate::gm::GmConfig::max_precision`]).
pub fn m_step_bounded(
    acc: &EmAccumulators,
    a: f64,
    b: f64,
    alpha: &[f64],
    floor: f64,
    ceiling: f64,
) -> (Vec<f64>, Vec<f64>) {
    let k = acc.resp_sum.len();
    assert_eq!(alpha.len(), k, "alpha must have one entry per component");
    debug_assert!(floor > 0.0 && ceiling > floor, "invalid precision bounds");

    let mut lambda = Vec::with_capacity(k);
    for i in 0..k {
        let num = 2.0 * (a - 1.0) + acc.resp_sum[i];
        let den = 2.0 * b + acc.resp_wsq_sum[i];
        let l = if den > 0.0 { num / den } else { ceiling };
        // NaN (0/0 with a = 1, b = 0) saturates at the ceiling rather than
        // propagating: clamp() keeps NaN, so handle it explicitly.
        let l = if l.is_nan() { ceiling } else { l };
        lambda.push(l.clamp(floor, ceiling));
    }

    let alpha_excess: f64 = alpha.iter().map(|&av| av - 1.0).sum();
    let den = acc.m as f64 + alpha_excess;
    let mut pi: Vec<f64> = (0..k)
        .map(|i| ((acc.resp_sum[i] + alpha[i] - 1.0) / den).max(PI_FLOOR))
        .collect();
    let z: f64 = pi.iter().sum();
    for p in pi.iter_mut() {
        *p /= z;
    }
    (pi, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Result;
    use proptest::prelude::*;

    fn gm2() -> GaussianMixture {
        GaussianMixture::new(vec![0.4, 0.6], vec![1.0, 64.0]).unwrap()
    }

    #[test]
    fn e_step_statistics_match_per_element_responsibilities() {
        let gm = gm2();
        let w = [0.02f32, -0.5, 1.3, 0.0, -0.01, 0.7];
        let mut greg = vec![0.0f32; w.len()];
        let acc = e_step(&gm, &w, Some(&mut greg));
        assert_eq!(acc.m, w.len());

        let mut want_sum = [0.0f64; 2];
        let mut want_wsq = [0.0f64; 2];
        let mut r = Vec::new();
        for (i, &wv) in w.iter().enumerate() {
            gm.responsibilities(wv as f64, &mut r);
            for k in 0..2 {
                want_sum[k] += r[k];
                want_wsq[k] += r[k] * (wv as f64) * (wv as f64);
            }
            let coeff = gm.reg_coefficient(wv as f64);
            assert!(
                (greg[i] as f64 - coeff * wv as f64).abs() < 1e-6,
                "greg[{i}]"
            );
        }
        for k in 0..2 {
            assert!((acc.resp_sum[k] - want_sum[k]).abs() < 1e-9);
            assert!((acc.resp_wsq_sum[k] - want_wsq[k]).abs() < 1e-9);
        }
        // responsibilities per element sum to 1 => totals sum to M
        assert!((acc.resp_sum.iter().sum::<f64>() - w.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn e_step_without_greg_buffer() {
        let gm = gm2();
        let acc = e_step(&gm, &[0.1, 0.2], None);
        assert_eq!(acc.m, 2);
    }

    #[test]
    #[should_panic(expected = "greg buffer")]
    fn e_step_rejects_mismatched_buffer() {
        let gm = gm2();
        let mut greg = vec![0.0f32; 3];
        e_step(&gm, &[0.1, 0.2], Some(&mut greg));
    }

    #[test]
    fn m_step_matches_paper_formulas_by_hand() {
        // Hand-computed example: K=2, M=4.
        let acc = EmAccumulators {
            resp_sum: vec![1.5, 2.5],
            resp_wsq_sum: vec![0.3, 0.02],
            m: 4,
        };
        let (a, b) = (1.1, 0.5);
        let alpha = [2.0, 2.0];
        let (pi, lambda) = m_step(&acc, a, b, &alpha);
        // lambda_0 = (2*0.1 + 1.5) / (1.0 + 0.3) = 1.7/1.3
        assert!((lambda[0] - 1.7 / 1.3).abs() < 1e-12);
        // lambda_1 = (0.2 + 2.5) / (1.0 + 0.02) = 2.7/1.02
        assert!((lambda[1] - 2.7 / 1.02).abs() < 1e-12);
        // pi_0 = (1.5 + 1) / (4 + 2) = 2.5/6 ; pi_1 = 3.5/6
        assert!((pi[0] - 2.5 / 6.0).abs() < 1e-12);
        assert!((pi[1] - 3.5 / 6.0).abs() < 1e-12);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn m_step_bounded_caps_near_zero_variance_component() {
        // A component whose responsibility mass sits on (essentially) zero
        // weights: Σ r·w² ≈ 0. With a tiny Gamma rate b the unclamped Eq. 13
        // ratio is ~1e14; the ceiling must cap it, and the other component
        // must be unaffected.
        let acc = EmAccumulators {
            resp_sum: vec![100.0, 50.0],
            resp_wsq_sum: vec![1e-16, 25.0],
            m: 150,
        };
        let (a, b) = (1.0, 1e-12);
        let alpha = [2.0, 2.0];
        let ceiling = 1e6;
        let (pi, lambda) = m_step_bounded(&acc, a, b, &alpha, 1e-3, ceiling);
        assert!(lambda.iter().all(|l| l.is_finite()));
        assert_eq!(lambda[0], ceiling, "blow-up must saturate at the ceiling");
        assert!((lambda[1] - 50.0 / (2e-12 + 25.0)).abs() < 1e-9);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // b = 0 with all-zero weights: denominator exactly 0 -> ceiling.
        let acc0 = EmAccumulators {
            resp_sum: vec![10.0],
            resp_wsq_sum: vec![0.0],
            m: 10,
        };
        let (_, lambda) = m_step_bounded(&acc0, 1.0, 0.0, &[1.5], 1e-3, ceiling);
        assert_eq!(lambda[0], ceiling);
    }

    #[test]
    fn m_step_recovers_two_population_precisions() -> Result<()> {
        // Weights drawn (deterministically spaced) from two populations:
        // "noisy" near zero (std 0.05) and "useful" wide (std 1.0).
        let mut w = Vec::new();
        for i in 0..400 {
            let u = (i as f64 + 0.5) / 400.0; // (0,1)
            let q = inv_norm_cdf(u);
            w.push((q * 0.05) as f32); // tight population
            w.push((q * 1.0) as f32); // wide population
        }
        let mut gm = GaussianMixture::new(vec![0.5, 0.5], vec![10.0, 100.0])?;
        let m = w.len();
        let (a, b) = (1.0 + 0.01 * 0.001 * m as f64, 0.001 * m as f64);
        let alpha = vec![(m as f64).sqrt(); 2];
        for _ in 0..200 {
            let acc = e_step(&gm, &w, None);
            let (pi, lambda) = m_step(&acc, a, b, &alpha);
            gm.set_params(pi, lambda)?;
        }
        // Expect one precision near 1/0.05^2 = 400 and one near 1.
        let (lo, hi) = (
            gm.lambda()[0].min(gm.lambda()[1]),
            gm.lambda()[0].max(gm.lambda()[1]),
        );
        assert!(
            (0.5..4.0).contains(&lo),
            "wide-component precision {lo} should be near 1"
        );
        assert!(
            (100.0..1200.0).contains(&hi),
            "tight-component precision {hi} should be near 400"
        );
        // Mixing weights near 0.5 each.
        assert!((gm.pi()[0] - 0.5).abs() < 0.2, "pi {:?}", gm.pi());
        Ok(())
    }

    /// Acklam-style rational approximation of the standard normal inverse
    /// CDF — test-only helper for deterministic "samples".
    fn inv_norm_cdf(p: f64) -> f64 {
        // Beasley-Springer-Moro
        let a = [
            -3.969683028665376e+01,
            2.209460984245205e+02,
            -2.759285104469687e+02,
            1.38357751867269e+02,
            -3.066479806614716e+01,
            2.506628277459239e+00,
        ];
        let b = [
            -5.447609879822406e+01,
            1.615858368580409e+02,
            -1.556989798598866e+02,
            6.680131188771972e+01,
            -1.328068155288572e+01,
        ];
        let c = [
            -7.784894002430293e-03,
            -3.223964580411365e-01,
            -2.400758277161838e+00,
            -2.549732539343734e+00,
            4.374664141464968e+00,
            2.938163982698783e+00,
        ];
        let d = [
            7.784695709041462e-03,
            3.224671290700398e-01,
            2.445134137142996e+00,
            3.754408661907416e+00,
        ];
        let plow = 0.02425;
        if p < plow {
            let q = (-2.0 * p.ln()).sqrt();
            (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
        } else if p <= 1.0 - plow {
            let q = p - 0.5;
            let r = q * q;
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
                / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        } else {
            -inv_norm_cdf(1.0 - p)
        }
    }

    #[test]
    fn m_step_handles_all_zero_weights() {
        let gm = gm2();
        let w = vec![0.0f32; 100];
        let acc = e_step(&gm, &w, None);
        let (pi, lambda) = m_step(&acc, 1.5, 0.1, &[10.0, 10.0]);
        assert!(pi.iter().all(|p| p.is_finite() && *p > 0.0));
        assert!(lambda.iter().all(|l| l.is_finite() && *l > 0.0));
        assert!(lambda.iter().all(|l| *l <= LAMBDA_MAX));
    }

    #[test]
    fn gamma_prior_caps_lambda_blowup() {
        // Without the 2b term, near-zero weights would drive lambda to
        // enormous values; b = gamma*M keeps it at ~M/(2*gamma*M).
        let gm = GaussianMixture::new(vec![1.0], vec![100.0]).unwrap();
        let w = vec![1e-6f32; 1000];
        let acc = e_step(&gm, &w, None);
        let b = 0.005 * 1000.0; // gamma = 0.005
        let (_, lambda) = m_step(&acc, 1.0 + 0.01 * b, b, &[1000f64.sqrt()]);
        // bounded by roughly (2(a-1) + M) / 2b
        let bound = (2.0 * (0.01 * b) + 1000.0) / (2.0 * b);
        assert!(lambda[0] <= bound * 1.001, "{} vs {bound}", lambda[0]);
    }

    #[test]
    fn mixing_entropy_bounds() {
        let mut acc = EmAccumulators::zeros(2);
        assert_eq!(acc.mixing_entropy(), 0.0, "empty accumulators");
        acc.resp_sum = vec![5.0, 5.0];
        assert!((acc.mixing_entropy() - 2f64.ln()).abs() < 1e-12, "uniform");
        acc.resp_sum = vec![10.0, 0.0];
        assert_eq!(acc.mixing_entropy(), 0.0, "collapsed");
        acc.resp_sum = vec![9.0, 1.0];
        let h = acc.mixing_entropy();
        assert!(h > 0.0 && h < 2f64.ln(), "skewed mass in (0, ln 2): {h}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn m_step_rejects_wrong_alpha_len() {
        let acc = EmAccumulators::zeros(2);
        m_step(&acc, 1.0, 1.0, &[1.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn m_step_outputs_are_valid_mixture_params(
            r0 in 0.0f64..1000.0,
            r1 in 0.0f64..1000.0,
            s0 in 0.0f64..100.0,
            s1 in 0.0f64..100.0,
            gamma in 0.0001f64..0.1,
            alpha in 1.0f64..100.0,
        ) {
            let m = (r0 + r1).ceil() as usize + 1;
            let acc = EmAccumulators {
                resp_sum: vec![r0, r1],
                resp_wsq_sum: vec![s0, s1],
                m,
            };
            let b = gamma * m as f64;
            let (pi, lambda) = m_step(&acc, 1.0 + 0.01 * b, b, &[alpha, alpha]);
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(pi.iter().all(|p| *p > 0.0));
            prop_assert!(lambda.iter().all(|l| l.is_finite() && *l >= LAMBDA_MIN && *l <= LAMBDA_MAX));
        }

        #[test]
        fn e_step_resp_totals_equal_m(seed in 0u64..30) {
            use rand::{SeedableRng, rngs::StdRng};
            use rand::RngExt as _;
            let mut rng = StdRng::seed_from_u64(seed);
            let w: Vec<f32> = (0..200).map(|_| (rng.random::<f64>() * 2.0 - 1.0) as f32).collect();
            let gm = gm2();
            let acc = e_step(&gm, &w, None);
            prop_assert!((acc.resp_sum.iter().sum::<f64>() - 200.0).abs() < 1e-6);
        }
    }
}

//! The lazy-update schedule of Algorithm 2.
//!
//! Recomputing responsibilities / `g_reg` (the E-step) and the GM
//! parameters (the M-step) every SGD iteration is the bottleneck of GM
//! regularization. Algorithm 2 runs both every iteration only for the first
//! `E` epochs; afterwards the E-step runs every `Im` iterations and the
//! M-step every `Ig` iterations, with stale values reused in between.

use crate::error::{CoreError, Result};

/// When to recompute the E-step (`g_reg`) and M-step (π, λ) during
/// training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazySchedule {
    /// Number of initial epochs during which every iteration updates
    /// everything (`E` in Algorithm 2).
    pub warmup_epochs: u64,
    /// E-step (model-parameter regularization gradient) update interval
    /// (`Im`).
    pub im: u64,
    /// M-step (GM parameter) update interval (`Ig`). The paper sets
    /// `Ig ≥ Im` because GM parameters converge faster than the model.
    pub ig: u64,
}

impl LazySchedule {
    /// The non-lazy schedule: every step updates everything (Algorithm 1).
    pub fn eager() -> Self {
        LazySchedule {
            warmup_epochs: u64::MAX,
            im: 1,
            ig: 1,
        }
    }

    /// The paper's default experimental setting: `E = 2`, `Im = Ig = 50`.
    pub fn paper_default() -> Self {
        LazySchedule {
            warmup_epochs: 2,
            im: 50,
            ig: 50,
        }
    }

    /// A custom schedule.
    pub fn new(warmup_epochs: u64, im: u64, ig: u64) -> Result<Self> {
        let s = LazySchedule {
            warmup_epochs,
            im,
            ig,
        };
        s.validate()?;
        Ok(s)
    }

    /// Validates the intervals.
    pub fn validate(&self) -> Result<()> {
        if self.im == 0 {
            return Err(CoreError::InvalidConfig {
                field: "im",
                reason: "update interval must be at least 1".into(),
            });
        }
        if self.ig == 0 {
            return Err(CoreError::InvalidConfig {
                field: "ig",
                reason: "update interval must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Should this iteration recompute responsibilities and `g_reg`?
    /// (Algorithm 2 line 4: `epoch_it < E or it mod Im = 0`.)
    #[inline]
    pub fn run_e_step(&self, iteration: u64, epoch: u64) -> bool {
        epoch < self.warmup_epochs || iteration % self.im == 0
    }

    /// Should this iteration recompute the GM parameters π, λ?
    /// (Algorithm 2 line 9: `epoch_it < E or it mod Ig = 0`.)
    #[inline]
    pub fn run_m_step(&self, iteration: u64, epoch: u64) -> bool {
        epoch < self.warmup_epochs || iteration % self.ig == 0
    }

    /// Fraction of iterations that run the E-step once warmup is over —
    /// the asymptotic cost model behind Fig. 5's ×4 speedup.
    pub fn steady_state_e_rate(&self) -> f64 {
        1.0 / self.im as f64
    }

    /// Fraction of iterations that run the M-step once warmup is over.
    pub fn steady_state_m_rate(&self) -> f64 {
        1.0 / self.ig as f64
    }

    /// Exact number of E-steps Algorithm 2 fires over iterations
    /// `0..total_iterations` with `batches_per_epoch` iterations per epoch
    /// (`epoch = it / batches_per_epoch`, matching the training loops).
    ///
    /// Warmup iterations (`epoch < E`) all fire; outside warmup exactly the
    /// multiples of `Im` fire, and the two sets overlap on the multiples
    /// that fall inside warmup:
    /// `warm + ⌈total/Im⌉ − ⌈warm/Im⌉` with
    /// `warm = min(E·batches_per_epoch, total)`.
    ///
    /// This is the prediction the telemetry-measured
    /// `gm.e_step.runs / gm.e_step.decisions` ratio is pinned against.
    pub fn predicted_e_steps(&self, total_iterations: u64, batches_per_epoch: u64) -> u64 {
        Self::predicted_fires(
            self.warmup_epochs,
            self.im,
            total_iterations,
            batches_per_epoch,
        )
    }

    /// Exact number of M-steps over `0..total_iterations`; see
    /// [`Self::predicted_e_steps`].
    pub fn predicted_m_steps(&self, total_iterations: u64, batches_per_epoch: u64) -> u64 {
        Self::predicted_fires(
            self.warmup_epochs,
            self.ig,
            total_iterations,
            batches_per_epoch,
        )
    }

    fn predicted_fires(warmup_epochs: u64, interval: u64, total: u64, bpe: u64) -> u64 {
        debug_assert!(bpe > 0, "batches_per_epoch must be positive");
        let warm = warmup_epochs.saturating_mul(bpe).min(total);
        warm + total.div_ceil(interval) - warm.div_ceil(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_always_updates() {
        let s = LazySchedule::eager();
        for it in 0..100 {
            assert!(s.run_e_step(it, 0));
            assert!(s.run_m_step(it, 1_000_000));
        }
    }

    #[test]
    fn warmup_epochs_always_update() {
        let s = LazySchedule::new(2, 50, 100).unwrap();
        assert!(s.run_e_step(7, 0));
        assert!(s.run_e_step(7, 1));
        assert!(!s.run_e_step(7, 2));
        assert!(s.run_e_step(50, 2));
        assert!(s.run_m_step(100, 5));
        assert!(!s.run_m_step(150, 5)); // 150 % 100 != 0
        assert!(s.run_e_step(150, 5)); // 150 % 50 == 0
    }

    #[test]
    fn intervals_validated() {
        assert!(LazySchedule::new(0, 0, 1).is_err());
        assert!(LazySchedule::new(0, 1, 0).is_err());
        assert!(LazySchedule::new(0, 1, 1).is_ok());
    }

    #[test]
    fn paper_default_matches_section_vf() {
        let s = LazySchedule::paper_default();
        assert_eq!(s.warmup_epochs, 2);
        assert_eq!(s.im, 50);
        assert_eq!(s.ig, 50);
        assert!((s.steady_state_e_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn e_step_count_over_run_matches_rate() {
        let s = LazySchedule::new(2, 10, 20).unwrap();
        let batches_per_epoch = 100u64;
        let mut e_steps = 0;
        let mut m_steps = 0;
        for epoch in 0..10u64 {
            for b in 0..batches_per_epoch {
                let it = epoch * batches_per_epoch + b;
                if s.run_e_step(it, epoch) {
                    e_steps += 1;
                }
                if s.run_m_step(it, epoch) {
                    m_steps += 1;
                }
            }
        }
        // 2 warmup epochs (200 every-step) + 8 epochs at 1/10 and 1/20.
        assert_eq!(e_steps, 200 + 80);
        assert_eq!(m_steps, 200 + 40);
    }

    /// Explicitly simulates the Algorithm 2 decision sequence and counts
    /// fires — the ground truth the closed forms are pinned against.
    fn simulate(s: &LazySchedule, total: u64, bpe: u64) -> (u64, u64) {
        let mut e = 0;
        let mut m = 0;
        for it in 0..total {
            let epoch = it / bpe;
            if s.run_e_step(it, epoch) {
                e += 1;
            }
            if s.run_m_step(it, epoch) {
                m += 1;
            }
        }
        (e, m)
    }

    #[test]
    fn predicted_counts_match_simulated_schedule() {
        // Sweep warmup/interval/run-length combinations, including the
        // off-by-one traps: total not a multiple of bpe or the intervals,
        // warmup longer than the run, interval 1, and interval > total.
        for &(warmup, im, ig) in &[
            (0u64, 1u64, 1u64),
            (0, 7, 13),
            (1, 10, 20),
            (2, 50, 50),
            (3, 50, 100),
            (5, 3, 9),
            (100, 10, 10),   // warmup never ends
            (1, 1000, 1000), // interval longer than the run
        ] {
            let s = LazySchedule::new(warmup, im, ig).unwrap();
            for &(total, bpe) in &[
                (1u64, 1u64),
                (50, 10),
                (99, 10),
                (100, 10),
                (101, 10),
                (997, 31),
                (1000, 50),
            ] {
                let (e, m) = simulate(&s, total, bpe);
                assert_eq!(
                    s.predicted_e_steps(total, bpe),
                    e,
                    "E mismatch: warmup={warmup} im={im} total={total} bpe={bpe}"
                );
                assert_eq!(
                    s.predicted_m_steps(total, bpe),
                    m,
                    "M mismatch: warmup={warmup} ig={ig} total={total} bpe={bpe}"
                );
            }
        }
    }

    #[test]
    fn eager_prediction_is_every_iteration() {
        let s = LazySchedule::eager();
        // warmup_epochs = u64::MAX must not overflow the closed form.
        assert_eq!(s.predicted_e_steps(12_345, 100), 12_345);
        assert_eq!(s.predicted_m_steps(12_345, 100), 12_345);
    }

    #[test]
    fn steady_state_rates_match_long_run_frequency() {
        // Past warmup the measured fire frequency converges to the
        // steady-state rates — the agreement the telemetry report asserts
        // end-to-end (satellite: lazy overhead ratio vs. prediction).
        let s = LazySchedule::new(2, 50, 100).unwrap();
        let bpe = 100u64;
        let warm = 2 * bpe;
        let total = warm + 100_000;
        let (e, m) = simulate(&s, total, bpe);
        let e_rate = (e - warm) as f64 / (total - warm) as f64;
        let m_rate = (m - warm) as f64 / (total - warm) as f64;
        assert!((e_rate - s.steady_state_e_rate()).abs() < 1e-3, "{e_rate}");
        assert!((m_rate - s.steady_state_m_rate()).abs() < 1e-3, "{m_rate}");
    }
}

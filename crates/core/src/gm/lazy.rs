//! The lazy-update schedule of Algorithm 2.
//!
//! Recomputing responsibilities / `g_reg` (the E-step) and the GM
//! parameters (the M-step) every SGD iteration is the bottleneck of GM
//! regularization. Algorithm 2 runs both every iteration only for the first
//! `E` epochs; afterwards the E-step runs every `Im` iterations and the
//! M-step every `Ig` iterations, with stale values reused in between.

use crate::error::{CoreError, Result};

/// When to recompute the E-step (`g_reg`) and M-step (π, λ) during
/// training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazySchedule {
    /// Number of initial epochs during which every iteration updates
    /// everything (`E` in Algorithm 2).
    pub warmup_epochs: u64,
    /// E-step (model-parameter regularization gradient) update interval
    /// (`Im`).
    pub im: u64,
    /// M-step (GM parameter) update interval (`Ig`). The paper sets
    /// `Ig ≥ Im` because GM parameters converge faster than the model.
    pub ig: u64,
}

impl LazySchedule {
    /// The non-lazy schedule: every step updates everything (Algorithm 1).
    pub fn eager() -> Self {
        LazySchedule {
            warmup_epochs: u64::MAX,
            im: 1,
            ig: 1,
        }
    }

    /// The paper's default experimental setting: `E = 2`, `Im = Ig = 50`.
    pub fn paper_default() -> Self {
        LazySchedule {
            warmup_epochs: 2,
            im: 50,
            ig: 50,
        }
    }

    /// A custom schedule.
    pub fn new(warmup_epochs: u64, im: u64, ig: u64) -> Result<Self> {
        let s = LazySchedule {
            warmup_epochs,
            im,
            ig,
        };
        s.validate()?;
        Ok(s)
    }

    /// Validates the intervals.
    pub fn validate(&self) -> Result<()> {
        if self.im == 0 {
            return Err(CoreError::InvalidConfig {
                field: "im",
                reason: "update interval must be at least 1".into(),
            });
        }
        if self.ig == 0 {
            return Err(CoreError::InvalidConfig {
                field: "ig",
                reason: "update interval must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Should this iteration recompute responsibilities and `g_reg`?
    /// (Algorithm 2 line 4: `epoch_it < E or it mod Im = 0`.)
    #[inline]
    pub fn run_e_step(&self, iteration: u64, epoch: u64) -> bool {
        epoch < self.warmup_epochs || iteration % self.im == 0
    }

    /// Should this iteration recompute the GM parameters π, λ?
    /// (Algorithm 2 line 9: `epoch_it < E or it mod Ig = 0`.)
    #[inline]
    pub fn run_m_step(&self, iteration: u64, epoch: u64) -> bool {
        epoch < self.warmup_epochs || iteration % self.ig == 0
    }

    /// Fraction of iterations that run the E-step once warmup is over —
    /// the asymptotic cost model behind Fig. 5's ×4 speedup.
    pub fn steady_state_e_rate(&self) -> f64 {
        1.0 / self.im as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_always_updates() {
        let s = LazySchedule::eager();
        for it in 0..100 {
            assert!(s.run_e_step(it, 0));
            assert!(s.run_m_step(it, 1_000_000));
        }
    }

    #[test]
    fn warmup_epochs_always_update() {
        let s = LazySchedule::new(2, 50, 100).unwrap();
        assert!(s.run_e_step(7, 0));
        assert!(s.run_e_step(7, 1));
        assert!(!s.run_e_step(7, 2));
        assert!(s.run_e_step(50, 2));
        assert!(s.run_m_step(100, 5));
        assert!(!s.run_m_step(150, 5)); // 150 % 100 != 0
        assert!(s.run_e_step(150, 5)); // 150 % 50 == 0
    }

    #[test]
    fn intervals_validated() {
        assert!(LazySchedule::new(0, 0, 1).is_err());
        assert!(LazySchedule::new(0, 1, 0).is_err());
        assert!(LazySchedule::new(0, 1, 1).is_ok());
    }

    #[test]
    fn paper_default_matches_section_vf() {
        let s = LazySchedule::paper_default();
        assert_eq!(s.warmup_epochs, 2);
        assert_eq!(s.im, 50);
        assert_eq!(s.ig, 50);
        assert!((s.steady_state_e_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn e_step_count_over_run_matches_rate() {
        let s = LazySchedule::new(2, 10, 20).unwrap();
        let batches_per_epoch = 100u64;
        let mut e_steps = 0;
        let mut m_steps = 0;
        for epoch in 0..10u64 {
            for b in 0..batches_per_epoch {
                let it = epoch * batches_per_epoch + b;
                if s.run_e_step(it, epoch) {
                    e_steps += 1;
                }
                if s.run_m_step(it, epoch) {
                    m_steps += 1;
                }
            }
        }
        // 2 warmup epochs (200 every-step) + 8 epochs at 1/10 and 1/20.
        assert_eq!(e_steps, 200 + 80);
        assert_eq!(m_steps, 200 + 40);
    }
}

//! Hyper-parameter guidance (the paper's fourth contribution: "we provide
//! guidance on setting the appropriate hyper-parameters for different
//! kinds of models"), extended with the scale-awareness this reproduction
//! had to work out empirically.
//!
//! The knob that actually moves across setups is γ. The Gamma prior caps
//! learnable precisions at ≈ `1/(2γ)`; under the MAP convention the noisy
//! weights therefore shrink by `lr · λ_cap / ((1 − momentum) · N)` per
//! step, and what matters for the final model is the *cumulative* decay
//! over the whole run:
//!
//! ```text
//! D ≈ total_steps · lr · λ_cap / ((1 − momentum) · N)
//! ```
//!
//! Solving for γ with a model-kind-dependent target `D` reproduces both
//! the paper's published grid at CIFAR scale (γ ≈ 0.016 for
//! Alex-CIFAR-10 at 80k steps over 50k images) and the values this
//! repository's own tuning found at reproduction scale (γ ≈ 0.3 at 240
//! steps over 150 images).

use crate::error::{CoreError, Result};
use crate::gm::config::GmConfig;
use crate::gm::lazy::LazySchedule;

/// The kind of model a GM regularizer will be attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Deep network without batch normalization (e.g. Alex-CIFAR-10):
    /// wants relatively strong shrinkage of its noisy weights.
    DeepNoBatchNorm,
    /// Deep network with batch normalization (e.g. ResNet): BN already
    /// regularizes, so the prior should stay weaker.
    DeepBatchNorm,
    /// Linear model on tabular data (the Table VII setting): small-n,
    /// high-dimension runs tolerate — and benefit from — stronger
    /// cumulative shrinkage of the noisy features.
    Linear,
}

impl ModelKind {
    /// Target cumulative decay `D` of the noisy-weight population.
    fn target_cumulative_decay(&self) -> f64 {
        match self {
            ModelKind::DeepNoBatchNorm => 0.5,
            ModelKind::DeepBatchNorm => 0.2,
            ModelKind::Linear => 2.0,
        }
    }
}

/// A [`GmConfig`] following the paper's recipe with γ chosen from the
/// training run's shape (training-set size, total SGD steps, learning
/// rate, momentum) and the paper's default lazy schedule enabled.
///
/// ```
/// use gmreg_core::gm::{recommended_config, ModelKind};
/// // 60 epochs of batch-32 SGD over 1,400 samples ≈ 2,640 steps.
/// let cfg = recommended_config(ModelKind::Linear, 1_400, 2_640, 0.1, 0.9).unwrap();
/// assert_eq!(cfg.k, 4);
/// assert!(cfg.gamma > 0.0);
/// ```
pub fn recommended_config(
    kind: ModelKind,
    n_train: usize,
    total_steps: usize,
    lr: f64,
    momentum: f64,
) -> Result<GmConfig> {
    if n_train == 0 || total_steps == 0 {
        return Err(CoreError::InvalidConfig {
            field: "n_train/total_steps",
            reason: "need at least one sample and one step".into(),
        });
    }
    if !(lr.is_finite() && lr > 0.0) {
        return Err(CoreError::InvalidConfig {
            field: "lr",
            reason: format!("must be positive and finite, got {lr}"),
        });
    }
    if !(0.0..1.0).contains(&momentum) {
        return Err(CoreError::InvalidConfig {
            field: "momentum",
            reason: format!("must lie in [0, 1), got {momentum}"),
        });
    }
    // D = steps · lr · cap / ((1−μ) · N), cap = 1/(2γ)
    //   ⇒ γ = steps · lr / (2 · D · (1−μ) · N)
    let d = kind.target_cumulative_decay();
    let gamma = total_steps as f64 * lr / (2.0 * d * (1.0 - momentum) * n_train as f64);
    // Stay within two decades of the paper's published grid so the Gamma
    // prior still smooths meaningfully.
    let gamma = gamma.clamp(2e-5, 2.0);
    let cfg = GmConfig {
        gamma,
        lazy: LazySchedule::paper_default(),
        ..GmConfig::default()
    };
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_lands_inside_the_published_grid() {
        // Alex-CIFAR-10 in the paper: 160 epochs × 500 batches over 50k
        // images at lr 0.001, momentum 0.9.
        let cfg = recommended_config(ModelKind::DeepNoBatchNorm, 50_000, 80_000, 0.001, 0.9)
            .expect("valid inputs");
        assert!(
            (0.0002..=0.05).contains(&cfg.gamma),
            "γ = {} should fall in the paper's grid",
            cfg.gamma
        );
    }

    #[test]
    fn reproduction_scale_matches_what_tuning_found() {
        // Smoke-scale Alex: 40 epochs × 6 batches over 150 images at lr
        // 0.02; Table VI's grid selected γ = 0.3.
        let cfg = recommended_config(ModelKind::DeepNoBatchNorm, 150, 240, 0.02, 0.9)
            .expect("valid inputs");
        assert!(
            (0.15..=0.65).contains(&cfg.gamma),
            "γ = {} should match the empirically tuned 0.3",
            cfg.gamma
        );
    }

    #[test]
    fn linear_scale_matches_the_extended_grid_winners() {
        // hepatitis: 30 epochs × 4 batches over 124 training samples at lr
        // 0.1; the probe found γ ≈ 0.1–0.2 best.
        let cfg = recommended_config(ModelKind::Linear, 124, 120, 0.1, 0.9).expect("ok");
        assert!(
            (0.05..=0.6).contains(&cfg.gamma),
            "γ = {} should land near the tuned range",
            cfg.gamma
        );
    }

    #[test]
    fn batch_norm_models_get_weaker_regularization() {
        let no_bn =
            recommended_config(ModelKind::DeepNoBatchNorm, 1_000, 2_000, 0.01, 0.9).expect("ok");
        let bn = recommended_config(ModelKind::DeepBatchNorm, 1_000, 2_000, 0.01, 0.9).expect("ok");
        // larger γ = lower precision cap = weaker regularization
        assert!(bn.gamma > no_bn.gamma);
    }

    #[test]
    fn lazy_schedule_is_on_by_default() {
        let cfg = recommended_config(ModelKind::Linear, 300, 300, 0.1, 0.9).expect("ok");
        assert_eq!(cfg.lazy, LazySchedule::paper_default());
        assert_eq!(cfg.k, 4);
        assert_eq!(cfg.alpha_exponent, 0.5);
    }

    #[test]
    fn validation_and_clamping() {
        assert!(recommended_config(ModelKind::Linear, 0, 10, 0.1, 0.9).is_err());
        assert!(recommended_config(ModelKind::Linear, 10, 0, 0.1, 0.9).is_err());
        assert!(recommended_config(ModelKind::Linear, 10, 10, 0.0, 0.9).is_err());
        assert!(recommended_config(ModelKind::Linear, 10, 10, 0.1, 1.0).is_err());
        assert!(recommended_config(ModelKind::Linear, 10, 10, f64::NAN, 0.9).is_err());
        // extreme inputs clamp instead of producing an invalid config
        let tiny = recommended_config(ModelKind::Linear, usize::MAX / 2, 1, 1e-9, 0.0).expect("ok");
        tiny.validate().expect("clamped γ is valid");
        let huge =
            recommended_config(ModelKind::DeepNoBatchNorm, 1, 1_000_000, 10.0, 0.99).expect("ok");
        huge.validate().expect("clamped γ is valid");
    }
}

//! GM initialization methods (Section V-E, Table VIII, Fig. 4).

use crate::error::{CoreError, Result};
use crate::gm::mixture::GaussianMixture;

/// How the `K` initial component precisions are spread out from the base
/// precision `min`.
///
/// The paper compares three methods and finds that methods giving the
/// components *different* initial precisions (linear, proportional)
/// converge to the final one-or-two-component state much faster than
/// `identical`, and that `linear` is best because its components are most
/// scattered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitMethod {
    /// All precisions set to `min`.
    Identical,
    /// Precisions linearly spaced over `[min, K·min]`.
    Linear,
    /// Precision of component `k` is `min · 2^k` (each component twice the
    /// precision of the previous one).
    Proportional,
}

impl InitMethod {
    /// All three methods, in the order Table VIII reports them.
    pub const ALL: [InitMethod; 3] = [
        InitMethod::Linear,
        InitMethod::Identical,
        InitMethod::Proportional,
    ];

    /// Stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            InitMethod::Identical => "identical",
            InitMethod::Linear => "linear",
            InitMethod::Proportional => "proportional",
        }
    }

    /// The initial precision vector for `k` components with base precision
    /// `min`.
    pub fn precisions(&self, k: usize, min: f64) -> Result<Vec<f64>> {
        if k == 0 {
            return Err(CoreError::InvalidConfig {
                field: "k",
                reason: "need at least one component".into(),
            });
        }
        if !(min.is_finite() && min > 0.0) {
            return Err(CoreError::InvalidConfig {
                field: "min_precision",
                reason: format!("must be positive and finite, got {min}"),
            });
        }
        Ok(match self {
            InitMethod::Identical => vec![min; k],
            InitMethod::Linear => {
                if k == 1 {
                    vec![min]
                } else {
                    // linearly spaced over [min, k*min]
                    let hi = k as f64 * min;
                    (0..k)
                        .map(|i| min + (hi - min) * i as f64 / (k - 1) as f64)
                        .collect()
                }
            }
            InitMethod::Proportional => (0..k).map(|i| min * 2f64.powi(i as i32)).collect(),
        })
    }

    /// Builds the full initial mixture: the method's precisions plus uniform
    /// mixing coefficients.
    pub fn mixture(&self, k: usize, min: f64) -> Result<GaussianMixture> {
        let lambda = self.precisions(k, min)?;
        let pi = vec![1.0 / k as f64; k];
        GaussianMixture::new(pi, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_precisions() {
        let l = InitMethod::Identical.precisions(4, 10.0).unwrap();
        assert_eq!(l, vec![10.0; 4]);
    }

    #[test]
    fn linear_precisions_span_min_to_k_min() {
        let l = InitMethod::Linear.precisions(4, 10.0).unwrap();
        assert_eq!(l, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(InitMethod::Linear.precisions(1, 5.0).unwrap(), vec![5.0]);
    }

    #[test]
    fn proportional_precisions_double() {
        let l = InitMethod::Proportional.precisions(4, 10.0).unwrap();
        assert_eq!(l, vec![10.0, 20.0, 40.0, 80.0]);
    }

    #[test]
    fn mixture_is_uniform_simplex() {
        for m in InitMethod::ALL {
            let gm = m.mixture(4, 10.0).unwrap();
            assert_eq!(gm.k(), 4);
            assert!(gm.pi().iter().all(|&p| (p - 0.25).abs() < 1e-12));
            // every lambda >= min
            assert!(gm.lambda().iter().all(|&l| l >= 10.0));
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(InitMethod::Linear.precisions(0, 10.0).is_err());
        assert!(InitMethod::Linear.precisions(4, 0.0).is_err());
        assert!(InitMethod::Linear.precisions(4, f64::NAN).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(InitMethod::Identical.name(), "identical");
        assert_eq!(InitMethod::Linear.name(), "linear");
        assert_eq!(InitMethod::Proportional.name(), "proportional");
    }
}

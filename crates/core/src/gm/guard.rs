//! Numerical guard rails for the GM regularizer: per-step validation,
//! last-good rollback with prior-based re-smoothing, and graceful
//! degradation to a fixed L2 penalty after the retry budget is spent.
//!
//! The inner [`GmRegularizer`] already clamps λ inside its own M-step, so in
//! a healthy run the guard is a cheap no-op scan. Its job is defense in
//! depth against everything the clamp cannot see: a host model whose
//! weights diverge and poison the cached `g_reg`, a restored checkpoint
//! with pathological parameters, or (in the chaos suite) an injected λ
//! blow-up. The recovery ladder is:
//!
//! 1. **Trip** — the step's regularization gradient or the mixture fails
//!    validation ([`GuardTrip`] names what went wrong; `guard.trips`).
//! 2. **Rollback** — the mixture is rolled back to the last-good
//!    [`GmSnapshot`], re-smoothed toward the Gamma/Dirichlet priors
//!    (Eq. 13 / Eq. 17 pseudo-counts) so the same collapse does not
//!    immediately recur, and the E-step re-runs (`guard.rollbacks`).
//! 3. **Degradation** — after `max_retries` rollbacks the regularizer
//!    becomes a fixed [`L2Reg`] whose strength matches the last-good
//!    mixture's expected precision (the paper's own baseline), surfacing
//!    [`CoreError::DegenerateMixture`] through
//!    [`GuardedGmRegularizer::last_error`] (`guard.degraded`). Training
//!    continues; the process never aborts.

use crate::baselines::L2Reg;
use crate::error::{CoreError, Result};
use crate::gm::checkpoint::GmSnapshot;
use crate::gm::em::PI_FLOOR;
use crate::gm::mixture::GaussianMixture;
use crate::gm::regularizer::GmRegularizer;
use crate::regularizer::{Regularizer, StepCtx};
use crate::tele;

/// Tuning knobs for [`GuardedGmRegularizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// λ ceiling the guard trips on. `None` uses the inner regularizer's
    /// own bound ([`GmRegularizer::lambda_bounds`]), so an explicit
    /// `max_precision` doubles as the guard threshold.
    pub lambda_ceiling: Option<f64>,
    /// Rollbacks allowed before degrading to L2. 0 degrades on the first
    /// trip.
    pub max_retries: u32,
    /// Refresh the last-good snapshot after this many consecutive healthy
    /// steps (minimum 1).
    pub snapshot_interval: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            lambda_ceiling: None,
            max_retries: 3,
            snapshot_interval: 50,
        }
    }
}

/// What a guard validation caught, in checking order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardTrip {
    /// The step's `g_reg` contribution contains NaN or ±inf.
    NonFiniteGrad,
    /// Some λ is NaN or ±inf.
    NonFiniteMixture,
    /// Some λ exceeds the configured ceiling.
    LambdaExplosion,
    /// The π simplex is broken: non-finite, non-positive, or its sum has
    /// drifted from 1.
    PiCollapse,
}

impl GuardTrip {
    /// Short stable label used in errors and logs.
    pub fn label(&self) -> &'static str {
        match self {
            GuardTrip::NonFiniteGrad => "non-finite g_reg",
            GuardTrip::NonFiniteMixture => "non-finite lambda",
            GuardTrip::LambdaExplosion => "lambda explosion",
            GuardTrip::PiCollapse => "pi simplex collapse",
        }
    }
}

/// A [`GmRegularizer`] wrapped in numerical guard rails. See the module
/// docs for the trip → rollback → degrade ladder.
pub struct GuardedGmRegularizer {
    inner: GmRegularizer,
    cfg: GuardConfig,
    last_good: GmSnapshot,
    /// Scratch the inner regularizer writes `g_reg` into, so a poisoned
    /// step can be discarded without contaminating the caller's gradient.
    scratch: Vec<f32>,
    trips: u64,
    rollbacks: u64,
    retries_used: u32,
    healthy_steps: u64,
    degraded: Option<L2Reg>,
    last_error: Option<CoreError>,
}

impl GuardedGmRegularizer {
    /// Guard `inner`, snapshotting its current state as the first
    /// rollback target.
    pub fn new(inner: GmRegularizer, cfg: GuardConfig) -> Self {
        let last_good = inner.snapshot();
        GuardedGmRegularizer {
            inner,
            cfg,
            last_good,
            scratch: Vec::new(),
            trips: 0,
            rollbacks: 0,
            retries_used: 0,
            healthy_steps: 0,
            degraded: None,
            last_error: None,
        }
    }

    /// Rebuild a guarded regularizer from a persisted snapshot (resume
    /// path). The snapshot becomes the initial rollback target.
    pub fn from_snapshot(snap: &GmSnapshot, cfg: GuardConfig) -> Result<Self> {
        Ok(Self::new(GmRegularizer::from_snapshot(snap)?, cfg))
    }

    /// A guarded regularizer that starts out already degraded to L2 with
    /// strength `beta` (resume path for a run that degraded before its
    /// checkpoint).
    pub fn degraded_from(snap: &GmSnapshot, beta: f64, cfg: GuardConfig) -> Result<Self> {
        let mut g = Self::from_snapshot(snap, cfg)?;
        g.degraded = Some(L2Reg::new(beta)?);
        Ok(g)
    }

    /// Guard trips observed so far.
    pub fn trip_count(&self) -> u64 {
        self.trips
    }

    /// Rollbacks performed so far.
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks
    }

    /// Whether the regularizer has degraded to fixed L2.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// The L2 strength in effect after degradation.
    pub fn degraded_beta(&self) -> Option<f64> {
        self.degraded.as_ref().map(|l2| l2.beta())
    }

    /// The error recorded when the guard degraded (or `None` while the GM
    /// regularizer is still active).
    pub fn last_error(&self) -> Option<&CoreError> {
        self.last_error.as_ref()
    }

    /// The guarded inner regularizer.
    pub fn inner(&self) -> &GmRegularizer {
        &self.inner
    }

    /// Snapshot for checkpointing: the live mixture while healthy, the
    /// last-good state after degradation.
    pub fn snapshot(&self) -> GmSnapshot {
        if self.degraded.is_some() {
            self.last_good.clone()
        } else {
            self.inner.snapshot()
        }
    }

    /// Immediately degrade to fixed L2 (used by training runtimes whose
    /// global retry budget is exhausted). Idempotent.
    pub fn force_degrade(&mut self, detail: &str) {
        if self.degraded.is_some() {
            return;
        }
        let beta = degraded_beta_from(&self.last_good);
        self.degraded = Some(L2Reg::new(beta).expect("clamped beta is valid"));
        self.last_error = Some(CoreError::DegenerateMixture {
            detail: format!("degraded to L2(beta = {beta:.3e}): {detail}"),
        });
        tele::counter_inc("guard.degraded");
        tele::gauge_set("guard.degraded.beta", beta);
        let _t = tele::span("guard.degrade.ns")
            .with_f64("beta", beta)
            .with_u64("trips", self.trips)
            .with_u64("rollbacks", self.rollbacks);
    }

    fn lambda_ceiling(&self) -> f64 {
        self.cfg
            .lambda_ceiling
            .unwrap_or_else(|| self.inner.lambda_bounds().1)
    }

    /// Validate the step's `g_reg` (in `self.scratch`) and the mixture.
    fn validate(&self, w: &[f32]) -> Option<GuardTrip> {
        if self.scratch.iter().any(|v| !v.is_finite()) {
            return Some(GuardTrip::NonFiniteGrad);
        }
        let ceiling = self.lambda_ceiling();
        // For a zero-mean mixture |g_reg| = coeff·|w| with coeff ≤ λ_max, so
        // any healthy step satisfies |g| ≤ ceiling·|w|; exceeding that bound
        // means an exploded λ fed the sweep even if a later M-step already
        // re-clamped the mixture. The +1 term gives f32 rounding headroom.
        if self
            .scratch
            .iter()
            .zip(w)
            .any(|(&g, &wv)| (g as f64).abs() > ceiling * ((wv as f64).abs() + 1.0))
        {
            return Some(GuardTrip::LambdaExplosion);
        }
        let gm = self.inner.mixture();
        if gm.lambda().iter().any(|l| !l.is_finite()) {
            return Some(GuardTrip::NonFiniteMixture);
        }
        if gm.lambda().iter().any(|&l| l > ceiling) {
            return Some(GuardTrip::LambdaExplosion);
        }
        let pi = gm.pi();
        if pi.iter().any(|p| !p.is_finite() || *p <= 0.0) {
            return Some(GuardTrip::PiCollapse);
        }
        if (pi.iter().sum::<f64>() - 1.0).abs() > 1e-6 {
            return Some(GuardTrip::PiCollapse);
        }
        None
    }

    /// Roll the mixture back to the last-good snapshot, re-smoothed toward
    /// the Gamma/Dirichlet priors, and re-run the E-step on `w`.
    fn rollback(&mut self, w: &[f32]) -> Result<()> {
        let (floor, ceiling) = self.inner.lambda_bounds();
        let a = self.inner.a();
        let b = self.inner.b();
        let alpha = self.inner.alpha().to_vec();
        let m = self.inner.dims();
        let (pi, lambda) = resmooth(
            &self.last_good.pi,
            &self.last_good.lambda,
            a,
            b,
            &alpha,
            m,
            floor,
            ceiling.min(self.lambda_ceiling()),
        );
        let gm = GaussianMixture::new(pi, lambda)?;
        self.inner.install_mixture(gm)?;
        // Rebuild the cached g_reg from the restored mixture; a host model
        // with non-finite weights will poison it again, which the *next*
        // validation pass reports (and the weights are the runtime's job).
        if w.iter().all(|v| v.is_finite()) {
            self.inner.force_e_step(w)?;
        }
        Ok(())
    }
}

/// Dirichlet/Gamma re-smoothing of a snapshot's mixture parameters.
///
/// λ entries that are non-finite or outside `[floor, ceiling]` are replaced
/// by the Gamma prior's mean `a/b` (Eq. 13 with zero responsibility mass),
/// clamped into bounds. π is pulled toward the Dirichlet prior's mean with
/// the α − 1 pseudo-counts of Eq. 17 — `π'_k ∝ π_k·M + α_k − 1` — which
/// lifts collapsed components off the floor; non-finite entries fall back
/// to uniform before smoothing.
#[allow(clippy::too_many_arguments)]
fn resmooth(
    pi: &[f64],
    lambda: &[f64],
    a: f64,
    b: f64,
    alpha: &[f64],
    m: usize,
    floor: f64,
    ceiling: f64,
) -> (Vec<f64>, Vec<f64>) {
    let k = pi.len();
    let prior_mean = if b > 0.0 { a / b } else { 1.0 };
    let lambda: Vec<f64> = lambda
        .iter()
        .map(|&l| {
            if l.is_finite() && l >= floor && l <= ceiling {
                l
            } else {
                prior_mean.clamp(floor, ceiling)
            }
        })
        .collect();

    let uniform = 1.0 / k as f64;
    let raw: Vec<f64> = pi
        .iter()
        .map(|&p| if p.is_finite() && p > 0.0 { p } else { uniform })
        .collect();
    let mf = m as f64;
    let mut smoothed: Vec<f64> = raw
        .iter()
        .zip(alpha)
        .map(|(&p, &av)| (p * mf + (av - 1.0).max(0.0)).max(PI_FLOOR))
        .collect();
    let z: f64 = smoothed.iter().sum();
    smoothed.iter_mut().for_each(|p| *p /= z);
    (smoothed, lambda)
}

fn degraded_beta_from(snap: &GmSnapshot) -> f64 {
    // E[λ] under the mixture = the L2 strength that matches the prior's
    // average pull toward zero; clamp so a saturated snapshot cannot turn
    // the fallback into a sledgehammer.
    let expected: f64 = snap
        .pi
        .iter()
        .zip(&snap.lambda)
        .filter(|(p, l)| p.is_finite() && l.is_finite())
        .map(|(p, l)| p * l)
        .sum();
    if expected.is_finite() && expected > 0.0 {
        expected.clamp(1e-8, 1e6)
    } else {
        1.0
    }
}

impl Regularizer for GuardedGmRegularizer {
    fn name(&self) -> &str {
        if self.degraded.is_some() {
            "L2(degraded)"
        } else {
            "GM"
        }
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        match &self.degraded {
            Some(l2) => l2.penalty(w),
            None => self.inner.penalty(w),
        }
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], ctx: StepCtx) {
        if let Some(l2) = &mut self.degraded {
            l2.accumulate_grad(w, grad, ctx);
            return;
        }

        // Run the inner regularizer against a zeroed scratch buffer so a
        // poisoned step can be discarded instead of reaching `grad`.
        self.scratch.resize(w.len(), 0.0);
        self.scratch.fill(0.0);
        self.inner.accumulate_grad(w, &mut self.scratch, ctx);

        if let Some(trip) = self.validate(w) {
            self.trips += 1;
            tele::counter_inc("guard.trips");
            let mut _trip_span = tele::span("guard.trip.ns")
                .with_str("trip", trip.label())
                .with_u64("iter", ctx.iteration)
                .with_u64("epoch", ctx.epoch)
                .with_u64("retries_used", self.retries_used as u64);
            if self.retries_used < self.cfg.max_retries {
                self.retries_used += 1;
                let recovered = self
                    .rollback(w)
                    .is_ok()
                    .then(|| {
                        // Adopt the rebuilt cache only if it is clean; with
                        // non-finite host weights nothing is added this step.
                        let greg = self.inner.cached_reg_grad();
                        if greg.iter().all(|v| v.is_finite()) {
                            for (g, &r) in grad.iter_mut().zip(greg) {
                                *g += r;
                            }
                        }
                    })
                    .is_some();
                if recovered {
                    self.rollbacks += 1;
                    self.healthy_steps = 0;
                    tele::counter_inc("guard.rollbacks");
                    _trip_span.set_u64("rolled_back", 1);
                    return;
                }
            }
            // Budget spent (or the rollback itself failed): degrade.
            _trip_span.set_u64("degraded", 1);
            self.force_degrade(trip.label());
            if let Some(l2) = &mut self.degraded {
                l2.accumulate_grad(w, grad, ctx);
            }
            return;
        }

        // Healthy step: publish the scratch gradient and maybe refresh the
        // rollback target.
        for (g, &r) in grad.iter_mut().zip(&self.scratch) {
            *g += r;
        }
        self.healthy_steps += 1;
        if self.healthy_steps >= self.cfg.snapshot_interval.max(1)
            && !self.inner.mixture().is_degenerate()
        {
            self.last_good = self.inner.snapshot();
            self.healthy_steps = 0;
        }
    }

    fn end_epoch(&mut self) {
        match &mut self.degraded {
            Some(l2) => l2.end_epoch(),
            None => self.inner.end_epoch(),
        }
    }

    fn as_gm(&self) -> Option<&GmRegularizer> {
        if self.degraded.is_some() {
            None
        } else {
            Some(&self.inner)
        }
    }

    fn as_guard(&self) -> Option<&GuardedGmRegularizer> {
        Some(self)
    }

    fn as_guard_mut(&mut self) -> Option<&mut GuardedGmRegularizer> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gm::config::GmConfig;

    fn cfg() -> GmConfig {
        GmConfig {
            min_precision: Some(1.0),
            ..GmConfig::default()
        }
    }

    fn weights(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| if i % 4 == 0 { 0.6 } else { 0.03 } * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn healthy_run_matches_unguarded() {
        let w = weights(120);
        let inner = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut plain = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut guarded = GuardedGmRegularizer::new(inner, GuardConfig::default());
        let mut ga = vec![0.0f32; w.len()];
        let mut gb = vec![0.0f32; w.len()];
        for it in 0..60u64 {
            ga.fill(0.0);
            gb.fill(0.0);
            plain.accumulate_grad(&w, &mut ga, StepCtx::new(it, 0));
            guarded.accumulate_grad(&w, &mut gb, StepCtx::new(it, 0));
            assert_eq!(ga, gb, "guard must be transparent on healthy steps");
        }
        assert_eq!(guarded.trip_count(), 0);
        assert!(!guarded.is_degraded());
        assert_eq!(guarded.name(), "GM");
        assert!(guarded.as_gm().is_some());
        assert!((guarded.penalty(&w) - plain.penalty(&w)).abs() < 1e-12);
    }

    #[test]
    fn exploded_lambda_snapshot_trips_and_rolls_back() {
        let w = weights(80);
        let inner = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut guarded = GuardedGmRegularizer::new(
            inner,
            GuardConfig {
                lambda_ceiling: Some(1e9),
                ..GuardConfig::default()
            },
        );
        // Warm up and snapshot a healthy state.
        let mut g = vec![0.0f32; w.len()];
        for it in 0..10u64 {
            g.fill(0.0);
            guarded.accumulate_grad(&w, &mut g, StepCtx::new(it, 0));
        }
        // Sabotage the live mixture with an exploded λ (bypasses the inner
        // clamp, as the failpoint would).
        let k = guarded.inner().mixture().k();
        let pi = guarded.inner().mixture().pi().to_vec();
        let lambda = vec![1e30; k];
        guarded
            .inner
            .install_mixture(GaussianMixture::new(pi, lambda).unwrap())
            .unwrap();
        guarded.inner.force_e_step(&w).unwrap();

        g.fill(0.0);
        guarded.accumulate_grad(&w, &mut g, StepCtx::new(10, 0));
        assert_eq!(guarded.trip_count(), 1);
        assert_eq!(guarded.rollback_count(), 1);
        assert!(!guarded.is_degraded());
        // Restored mixture is sane and the produced gradient is finite.
        assert!(guarded
            .inner()
            .mixture()
            .lambda()
            .iter()
            .all(|&l| l.is_finite() && l <= 1e9));
        assert!(g.iter().all(|v| v.is_finite()));
        // It keeps training normally afterwards.
        for it in 11..30u64 {
            g.fill(0.0);
            guarded.accumulate_grad(&w, &mut g, StepCtx::new(it, 0));
        }
        assert_eq!(guarded.trip_count(), 1);
    }

    #[test]
    fn exhausted_retry_budget_degrades_to_l2_and_never_panics() {
        let w = weights(60);
        let inner = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut guarded = GuardedGmRegularizer::new(
            inner,
            GuardConfig {
                lambda_ceiling: Some(1e9),
                max_retries: 2,
                ..GuardConfig::default()
            },
        );
        let mut g = vec![0.0f32; w.len()];
        guarded.accumulate_grad(&w, &mut g, StepCtx::new(0, 0));

        let sabotage = |guarded: &mut GuardedGmRegularizer| {
            let k = guarded.inner().mixture().k();
            let pi = guarded.inner().mixture().pi().to_vec();
            guarded
                .inner
                .install_mixture(GaussianMixture::new(pi, vec![1e30; k]).unwrap())
                .unwrap();
            guarded.inner.force_e_step(&w).unwrap();
        };

        for it in 1..=3u64 {
            sabotage(&mut guarded);
            g.fill(0.0);
            guarded.accumulate_grad(&w, &mut g, StepCtx::new(it, 0));
            assert!(g.iter().all(|v| v.is_finite()));
        }
        assert!(guarded.is_degraded());
        assert_eq!(guarded.name(), "L2(degraded)");
        assert!(guarded.as_gm().is_none());
        let beta = guarded.degraded_beta().unwrap();
        assert!(beta.is_finite() && beta > 0.0);
        assert!(matches!(
            guarded.last_error(),
            Some(CoreError::DegenerateMixture { .. })
        ));
        // Degraded mode behaves exactly like L2.
        let mut l2 = L2Reg::new(beta).unwrap();
        let mut gl = vec![0.0f32; w.len()];
        g.fill(0.0);
        guarded.accumulate_grad(&w, &mut g, StepCtx::new(4, 0));
        l2.accumulate_grad(&w, &mut gl, StepCtx::new(4, 0));
        assert_eq!(g, gl);
    }

    #[test]
    fn nan_greg_is_discarded_not_propagated() {
        let w = weights(40);
        // A lazy schedule so the poisoned cache is actually *used* by the
        // next step instead of being refreshed — the real staleness hazard.
        let mut c = cfg();
        c.lazy = crate::gm::lazy::LazySchedule::new(0, 10, 10).unwrap();
        let inner = GmRegularizer::new(w.len(), 0.5, c).unwrap();
        let mut guarded = GuardedGmRegularizer::new(inner, GuardConfig::default());
        let mut g = vec![0.0f32; w.len()];
        guarded.accumulate_grad(&w, &mut g, StepCtx::new(0, 0));

        // Poison the cached greg directly (what the gm.greg.nan failpoint
        // does) by E-stepping against NaN weights.
        let bad = vec![f32::NAN; w.len()];
        let _ = guarded.inner.force_e_step(&bad);

        g.fill(0.0);
        guarded.accumulate_grad(&w, &mut g, StepCtx::new(1, 0));
        assert!(
            g.iter().all(|v| v.is_finite()),
            "NaN g_reg must never reach the caller's gradient"
        );
        assert_eq!(guarded.trip_count(), 1);
        assert_eq!(guarded.rollback_count(), 1);
    }

    #[test]
    fn resmooth_repairs_degenerate_parameters() {
        let alpha = [3.0, 3.0, 3.0];
        let (pi, lambda) = resmooth(
            &[f64::NAN, 0.0, 1.0],
            &[f64::INFINITY, 5.0, f64::NAN],
            1.5,
            0.5,
            &alpha,
            100,
            1e-3,
            1e6,
        );
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|p| p.is_finite() && *p > 0.0));
        assert!(lambda.iter().all(|l| l.is_finite()));
        assert_eq!(lambda[1], 5.0, "in-bounds λ is preserved");
        assert_eq!(lambda[0], 3.0, "broken λ gets the Gamma prior mean a/b");
        assert_eq!(lambda[2], 3.0);
    }

    #[test]
    fn snapshot_roundtrip_through_guard() {
        let w = weights(50);
        let inner = GmRegularizer::new(w.len(), 0.5, cfg()).unwrap();
        let mut guarded = GuardedGmRegularizer::new(inner, GuardConfig::default());
        let mut g = vec![0.0f32; w.len()];
        for it in 0..20u64 {
            g.fill(0.0);
            guarded.accumulate_grad(&w, &mut g, StepCtx::new(it, 0));
        }
        let snap = guarded.snapshot();
        let restored = GuardedGmRegularizer::from_snapshot(&snap, GuardConfig::default()).unwrap();
        assert_eq!(
            restored.inner().mixture().pi(),
            guarded.inner().mixture().pi()
        );
        assert_eq!(
            restored.inner().mixture().lambda(),
            guarded.inner().mixture().lambda()
        );

        let degraded =
            GuardedGmRegularizer::degraded_from(&snap, 0.125, GuardConfig::default()).unwrap();
        assert!(degraded.is_degraded());
        assert_eq!(degraded.degraded_beta(), Some(0.125));
    }
}

//! Four-lane vectorized E-step responsibility kernel with a bit-identical
//! scalar mirror.
//!
//! The E-step's per-weight work — `t_k = ln π_k + ½ln λ_k − ½λ_k w²`,
//! max-subtracted softmax, sufficient-statistic accumulation — is batched
//! four weights at a time. On x86_64 with AVX2 the four lanes live in one
//! `__m256d`; everywhere else (or with `GMREG_SIMD=0`) the scalar mirror
//! runs the same operation sequence per lane. Both paths produce **identical
//! bits**, because:
//!
//! * every lane op is a plain IEEE-754 multiply/add/divide (no FMA);
//! * `exp` is our own Cephes-style rational approximation, evaluated with
//!   the same magic-number rounding and polynomial order in both paths
//!   (`std`'s `exp` is libm-dependent and has no vector form);
//! * the running max uses the same `if m < t` select semantics;
//! * per-component sums accumulate into four per-lane partials folded by a
//!   fixed tree `(l0+l1)+(l2+l3)` at chunk end, and the `len % 4` tail runs
//!   through the scalar mirror in both paths.
//!
//! Swapping `std::f64::exp` for the rational approximation moves
//! responsibilities by ~1 ulp — far inside the 1e-12 band the golden tests
//! pin — while making the whole sweep independent of the platform libm.

use crate::gm::em::EmAccumulators;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Lanes per group: four f64 weights per pass.
pub const LANES: usize = 4;

/// f64 scratch slots the chunk kernel needs per mixture component: the
/// per-lane log/exp workspace plus two per-lane accumulator rows.
pub const SCRATCH_PER_K: usize = 3 * LANES;

/// Tri-state runtime override: 0 = auto, 1 = force scalar, 2 = force vector.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Pin the dispatch for tests and benches: `Some(false)` forces the scalar
/// mirror, `Some(true)` requests the AVX2 path (still requires CPU
/// support), `None` restores automatic dispatch.
pub fn set_simd_enabled(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(v, Ordering::Release);
}

/// True when the running CPU supports the AVX2 path.
pub fn simd_supported() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

fn env_allows_simd() -> bool {
    static ALLOWED: OnceLock<bool> = OnceLock::new();
    *ALLOWED.get_or_init(|| {
        !matches!(
            std::env::var("GMREG_SIMD").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// True when the vector path is taken for the next kernel call.
pub fn simd_enabled() -> bool {
    match OVERRIDE.load(Ordering::Acquire) {
        1 => false,
        2 => simd_supported(),
        _ => simd_supported() && env_allows_simd(),
    }
}

// ---------------------------------------------------------------------------
// exp: Cephes-style rational approximation, shared constants.
// ---------------------------------------------------------------------------

/// Round-to-nearest magic constant (2^52 + 2^51): adding and subtracting it
/// leaves the nearest integer, which is how both paths round `x·log2(e)`
/// (Rust 1.75 has no `round_ties_even`, and `round()` ties away from zero —
/// different semantics from the vector rounding).
const MAGIC: f64 = 6755399441055744.0;
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// Cody–Waite split of ln 2 for exact range reduction. The low part keeps
/// its published digits (beyond f64 precision), hence the lint allow.
const LN2_HI: f64 = 6.93145751953125e-1;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.42860682030941723212e-6;
/// Below this the true `exp` underflows toward subnormals; both paths
/// return exactly 0 to stay clear of platform-dependent subnormal handling.
const EXP_CUTOFF: f64 = -708.0;
// Cephes expl() rational coefficients: exp(r) = 1 + 2·p/(q − p) on
// |r| ≤ ½ln2 with p = r·P(r²), q = Q(r²). Digits are quoted as published
// (beyond f64 precision), hence the module-wide lint allow.
#[allow(clippy::excessive_precision)]
mod cephes {
    pub const P0: f64 = 1.26177193074810590878e-4;
    pub const P1: f64 = 3.02994407707441961300e-2;
    pub const P2: f64 = 9.99999999999999999910e-1;
    pub const Q0: f64 = 3.00198505138664455042e-6;
    pub const Q1: f64 = 2.52448340349684104192e-3;
    pub const Q2: f64 = 2.27265548208155028766e-1;
    pub const Q3: f64 = 2.00000000000000000005e0;
}
use cephes::{P0, P1, P2, Q0, Q1, Q2, Q3};

/// Scalar `exp` mirror. Accurate to ~1 ulp on the E-step's domain
/// `(-inf, 0]`; bit-identical to the lanes of [`exp4_avx2`].
#[inline]
pub fn exp_scalar(x: f64) -> f64 {
    let nf = x * LOG2E + MAGIC - MAGIC;
    let r = x - nf * LN2_HI - nf * LN2_LO;
    let xx = r * r;
    let p = r * ((P0 * xx + P1) * xx + P2);
    let q = ((Q0 * xx + Q1) * xx + Q2) * xx + Q3;
    let e = p / (q - p);
    let y = 1.0 + 2.0 * e;
    // 2^n by exponent-field construction; n is integral and, on the kernel's
    // domain, within [-1022, 1023]. The cutoff select below discards the
    // (wrapped, but well-defined) bit pattern for deeper arguments.
    let n = nf as i64;
    let pow2 = f64::from_bits(((n + 1023) << 52) as u64);
    if x < EXP_CUTOFF {
        0.0
    } else {
        y * pow2
    }
}

/// Four-lane AVX2 `exp`, lane-for-lane identical to [`exp_scalar`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn exp4_avx2(x: core::arch::x86_64::__m256d) -> core::arch::x86_64::__m256d {
    use core::arch::x86_64::*;
    let magic = _mm256_set1_pd(MAGIC);
    let nf = _mm256_sub_pd(
        _mm256_add_pd(_mm256_mul_pd(x, _mm256_set1_pd(LOG2E)), magic),
        magic,
    );
    let r = _mm256_sub_pd(
        _mm256_sub_pd(x, _mm256_mul_pd(nf, _mm256_set1_pd(LN2_HI))),
        _mm256_mul_pd(nf, _mm256_set1_pd(LN2_LO)),
    );
    let xx = _mm256_mul_pd(r, r);
    let p = _mm256_mul_pd(
        r,
        _mm256_add_pd(
            _mm256_mul_pd(
                _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(P0), xx), _mm256_set1_pd(P1)),
                xx,
            ),
            _mm256_set1_pd(P2),
        ),
    );
    let q = _mm256_add_pd(
        _mm256_mul_pd(
            _mm256_add_pd(
                _mm256_mul_pd(
                    _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(Q0), xx), _mm256_set1_pd(Q1)),
                    xx,
                ),
                _mm256_set1_pd(Q2),
            ),
            xx,
        ),
        _mm256_set1_pd(Q3),
    );
    let e = _mm256_div_pd(p, _mm256_sub_pd(q, p));
    let y = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(_mm256_set1_pd(2.0), e));
    // 2^n: nf -> i32 (exact, nf is integral) -> i64, exponent-field build.
    let n32 = _mm256_cvtpd_epi32(nf);
    let n64 = _mm256_cvtepi32_epi64(n32);
    let bits = _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
    let pow2 = _mm256_castsi256_pd(bits);
    let val = _mm256_mul_pd(y, pow2);
    // Lanes below the cutoff flush to exactly 0, like the scalar mirror.
    let under = _mm256_cmp_pd(x, _mm256_set1_pd(EXP_CUTOFF), _CMP_LT_OQ);
    _mm256_andnot_pd(under, val)
}

// ---------------------------------------------------------------------------
// The chunk kernel.
// ---------------------------------------------------------------------------

/// Scratch layout inside the caller's `Vec<f64>` (resized to
/// `SCRATCH_PER_K * k`): `[t/e values (4k)] [resp lanes (4k)] [wsq lanes (4k)]`.
fn split_scratch(scratch: &mut [f64], k: usize) -> (&mut [f64], &mut [f64], &mut [f64]) {
    let (logs, rest) = scratch.split_at_mut(LANES * k);
    let (resp, wsq) = rest.split_at_mut(LANES * k);
    (logs, resp, wsq)
}

/// One scalar group of `g ≤ 4` weights: the mirror both dispatch paths use
/// for the chunk tail, and the whole-chunk body when SIMD is off. Lane `l`
/// of the group writes `logs[i*4+l]` and accumulates `resp[i*4+l]` /
/// `wsq[i*4+l]` — the same slots the vector path uses.
#[allow(clippy::too_many_arguments)]
fn group_scalar(
    lambda: &[f64],
    log_base: &[f64],
    w: &[f32],
    mut greg: Option<&mut [f32]>,
    logs: &mut [f64],
    resp: &mut [f64],
    wsq: &mut [f64],
) {
    let k = lambda.len();
    for (l, &wv) in w.iter().enumerate() {
        let x = wv as f64;
        let xsq = x * x;
        let mut max = f64::NEG_INFINITY;
        for i in 0..k {
            let half_lambda = 0.5 * lambda[i];
            let t = log_base[i] - half_lambda * xsq;
            logs[i * LANES + l] = t;
            max = if max < t { t } else { max };
        }
        let mut z = 0.0;
        for i in 0..k {
            let e = exp_scalar(logs[i * LANES + l] - max);
            logs[i * LANES + l] = e;
            z += e;
        }
        let mut coeff = 0.0;
        for i in 0..k {
            let r = logs[i * LANES + l] / z;
            resp[i * LANES + l] += r;
            wsq[i * LANES + l] += r * xsq;
            coeff += r * lambda[i];
        }
        if let Some(out) = greg.as_deref_mut() {
            out[l] = (coeff * x) as f32;
        }
    }
}

/// One AVX2 group of exactly four weights; lane-for-lane identical to
/// [`group_scalar`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX2; `w` (and `greg`, if given)
/// must hold at least four elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn group_avx2(
    lambda: &[f64],
    log_base: &[f64],
    w: &[f32],
    greg: Option<&mut [f32]>,
    logs: &mut [f64],
    resp: &mut [f64],
    wsq: &mut [f64],
) {
    use core::arch::x86_64::*;
    let k = lambda.len();
    let x = _mm256_cvtps_pd(_mm_loadu_ps(w.as_ptr()));
    let xsq = _mm256_mul_pd(x, x);
    let mut max = _mm256_set1_pd(f64::NEG_INFINITY);
    for i in 0..k {
        let half_lambda = _mm256_set1_pd(0.5 * lambda[i]);
        let t = _mm256_sub_pd(_mm256_set1_pd(log_base[i]), _mm256_mul_pd(half_lambda, xsq));
        _mm256_storeu_pd(logs.as_mut_ptr().add(i * LANES), t);
        // `if max < t { t } else { max }`, lane-wise.
        let lt = _mm256_cmp_pd(max, t, _CMP_LT_OQ);
        max = _mm256_blendv_pd(max, t, lt);
    }
    let mut z = _mm256_setzero_pd();
    for i in 0..k {
        let t = _mm256_loadu_pd(logs.as_ptr().add(i * LANES));
        let e = exp4_avx2(_mm256_sub_pd(t, max));
        _mm256_storeu_pd(logs.as_mut_ptr().add(i * LANES), e);
        z = _mm256_add_pd(z, e);
    }
    let mut coeff = _mm256_setzero_pd();
    for (i, &lam) in lambda.iter().enumerate() {
        let e = _mm256_loadu_pd(logs.as_ptr().add(i * LANES));
        let r = _mm256_div_pd(e, z);
        let acc = _mm256_loadu_pd(resp.as_ptr().add(i * LANES));
        _mm256_storeu_pd(resp.as_mut_ptr().add(i * LANES), _mm256_add_pd(acc, r));
        let acc = _mm256_loadu_pd(wsq.as_ptr().add(i * LANES));
        _mm256_storeu_pd(
            wsq.as_mut_ptr().add(i * LANES),
            _mm256_add_pd(acc, _mm256_mul_pd(r, xsq)),
        );
        coeff = _mm256_add_pd(coeff, _mm256_mul_pd(r, _mm256_set1_pd(lam)));
    }
    if let Some(out) = greg {
        let g = _mm256_cvtpd_ps(_mm256_mul_pd(coeff, x));
        _mm_storeu_ps(out.as_mut_ptr(), g);
    }
}

/// The fused per-chunk E-step kernel: responsibilities, sufficient
/// statistics and (optionally) `g_reg` for one contiguous run of weights,
/// four lanes at a time. `scratch` is resized to `SCRATCH_PER_K * k` and
/// owned by the caller so repeated sweeps allocate nothing.
pub(crate) fn chunk_kernel(
    lambda: &[f64],
    log_base: &[f64],
    w: &[f32],
    mut greg: Option<&mut [f32]>,
    scratch: &mut Vec<f64>,
) -> EmAccumulators {
    let k = lambda.len();
    scratch.clear();
    scratch.resize(SCRATCH_PER_K * k, 0.0);
    let (logs, resp, wsq) = split_scratch(scratch, k);

    let n_groups = w.len() / LANES;
    let split = n_groups * LANES;
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        for g in 0..n_groups {
            let at = g * LANES;
            let gout = greg.as_deref_mut().map(|o| &mut o[at..at + LANES]);
            // SAFETY: AVX2 support was verified by `simd_enabled`; the
            // group slices hold exactly LANES elements.
            unsafe { group_avx2(lambda, log_base, &w[at..at + LANES], gout, logs, resp, wsq) };
        }
        let gout = greg.as_deref_mut().map(|o| &mut o[split..]);
        group_scalar(lambda, log_base, &w[split..], gout, logs, resp, wsq);
        return fold(resp, wsq, k, w.len());
    }
    for g in 0..n_groups {
        let at = g * LANES;
        let gout = greg.as_deref_mut().map(|o| &mut o[at..at + LANES]);
        group_scalar(lambda, log_base, &w[at..at + LANES], gout, logs, resp, wsq);
    }
    let gout = greg.map(|o| &mut o[split..]);
    group_scalar(lambda, log_base, &w[split..], gout, logs, resp, wsq);
    fold(resp, wsq, k, w.len())
}

/// Fold the four lane partials per component with the fixed tree
/// `(l0+l1)+(l2+l3)` — the only cross-lane reduction in the kernel.
fn fold(resp: &[f64], wsq: &[f64], k: usize, m: usize) -> EmAccumulators {
    let mut acc = EmAccumulators::zeros(k);
    acc.m = m;
    for i in 0..k {
        let r = &resp[i * LANES..(i + 1) * LANES];
        let s = &wsq[i * LANES..(i + 1) * LANES];
        acc.resp_sum[i] = (r[0] + r[1]) + (r[2] + r[3]);
        acc.resp_wsq_sum[i] = (s[0] + s[1]) + (s[2] + s[3]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global dispatch override.
    static TOGGLE: Mutex<()> = Mutex::new(());

    #[test]
    fn exp_scalar_tracks_std_exp() {
        let mut worst = 0.0f64;
        let mut x = -708.0;
        while x < 0.5 {
            let got = exp_scalar(x);
            let want = x.exp();
            let rel = if want == 0.0 {
                got.abs()
            } else {
                ((got - want) / want).abs()
            };
            worst = worst.max(rel);
            x += 0.137;
        }
        assert!(worst < 1e-14, "worst relative error {worst:e}");
        assert_eq!(exp_scalar(0.0), 1.0);
        assert_eq!(exp_scalar(-800.0), 0.0, "below cutoff flushes to zero");
        assert_eq!(exp_scalar(f64::NEG_INFINITY), 0.0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn exp4_lanes_match_scalar_bitwise() {
        if !simd_supported() {
            return;
        }
        use core::arch::x86_64::*;
        let mut x = -750.0;
        while x < 1.0 {
            let xs = [x, x + 0.03, x + 0.61, x + 0.99];
            // SAFETY: AVX2 support verified above.
            let got: [f64; 4] = unsafe {
                let v = exp4_avx2(_mm256_loadu_pd(xs.as_ptr()));
                let mut out = [0.0; 4];
                _mm256_storeu_pd(out.as_mut_ptr(), v);
                out
            };
            for (g, xv) in got.iter().zip(xs) {
                assert_eq!(
                    g.to_bits(),
                    exp_scalar(xv).to_bits(),
                    "lane mismatch at x={xv}"
                );
            }
            x += 1.618;
        }
    }

    #[test]
    fn chunk_kernel_paths_are_bit_identical() {
        let _g = TOGGLE.lock().unwrap();
        if !simd_supported() {
            return;
        }
        let lambda = [1.0f64, 64.0, 0.25];
        let log_base: Vec<f64> = lambda.iter().map(|l| 0.3 + 0.5 * l.ln()).collect();
        for len in [1usize, 3, 4, 5, 8, 17, 100] {
            let w: Vec<f32> = (0..len).map(|i| (i as f32 * 0.31 - 2.0) * 0.8).collect();
            let mut scratch = Vec::new();

            set_simd_enabled(Some(false));
            let mut greg_s = vec![0.0f32; len];
            let want = chunk_kernel(&lambda, &log_base, &w, Some(&mut greg_s), &mut scratch);

            set_simd_enabled(Some(true));
            let mut greg_v = vec![0.0f32; len];
            let got = chunk_kernel(&lambda, &log_base, &w, Some(&mut greg_v), &mut scratch);
            set_simd_enabled(None);

            assert_eq!(got, want, "accumulators len={len}");
            assert_eq!(greg_v, greg_s, "greg len={len}");
        }
    }

    #[test]
    fn override_pins_dispatch() {
        let _g = TOGGLE.lock().unwrap();
        set_simd_enabled(Some(false));
        assert!(!simd_enabled());
        set_simd_enabled(Some(true));
        assert_eq!(simd_enabled(), simd_supported());
        set_simd_enabled(None);
    }
}

//! Adaptive Gaussian-Mixture regularization — the paper's contribution.
//!
//! * [`GaussianMixture`] — the zero-mean mixture prior (Eq. 4);
//! * [`GmConfig`] — the "easy setting" hyper-parameter recipe (Sec. V-B1);
//! * [`InitMethod`] — identical / linear / proportional precision
//!   initialization (Sec. V-E);
//! * [`LazySchedule`] — Algorithm 2's E/M update cadence;
//! * [`e_step`] / [`m_step`] — the lightweight EM (Eqs. 9, 13, 17);
//! * [`GmRegularizer`] — the schedule-driven [`Regularizer`]
//!   implementation (Algorithms 1 and 2);
//! * [`GmRegTool`] — the paper's three-function tool API (Sec. IV);
//! * [`effective_mixture`] — collapses merged components for reporting;
//! * [`GmSnapshot`] — serializable checkpoints of the learned state;
//! * [`GuardedGmRegularizer`] — numerical guard rails with last-good
//!   rollback and graceful L2 degradation;
//! * [`SoftSharingRegularizer`] — the learnable-means extension (classic
//!   soft weight-sharing; the paper's zero-mean GM is its centered case).
//!
//! [`Regularizer`]: crate::Regularizer

mod checkpoint;
mod config;
mod em;
mod guard;
mod guidance;
mod init;
mod lazy;
mod merge;
mod mixture;
mod regularizer;
pub mod simd;
mod soft_sharing;
mod tool;

pub use checkpoint::{GmConfigSnapshot, GmSnapshot};
pub use config::{GmConfig, GAMMA_GRID};
#[cfg(feature = "parallel")]
pub use em::e_step_with_threads;
pub use em::{
    e_step, e_step_partial, e_step_serial, e_step_with_scratch, m_step, m_step_bounded,
    merge_partials, EStepScratch, EmAccumulators, E_STEP_CHUNK, LAMBDA_MAX, LAMBDA_MIN, PI_FLOOR,
};
pub use guard::{GuardConfig, GuardTrip, GuardedGmRegularizer};
pub use guidance::{recommended_config, ModelKind};
pub use init::InitMethod;
pub use lazy::LazySchedule;
pub use merge::{effective_mixture, effective_mixture_with, MERGE_RATIO, PI_DROP};
pub use mixture::GaussianMixture;
pub use regularizer::GmRegularizer;
pub use soft_sharing::{SoftSharingConfig, SoftSharingRegularizer};
pub use tool::GmRegTool;

//! Checkpointing: serializable snapshots of a GM regularizer's adaptive
//! state, so long training runs can pause and resume without re-learning
//! the mixture (a requirement for the GEMINI-style pipeline deployments
//! the paper targets).

use crate::error::{CoreError, Result};
use crate::gm::config::GmConfig;
use crate::gm::init::InitMethod;
use crate::gm::lazy::LazySchedule;
use crate::gm::mixture::GaussianMixture;
use crate::gm::regularizer::GmRegularizer;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a [`GmRegularizer`]'s learned state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmSnapshot {
    /// Mixing coefficients π.
    pub pi: Vec<f64>,
    /// Precisions λ.
    pub lambda: Vec<f64>,
    /// Weight dimensionality the regularizer was built for.
    pub m: usize,
    /// The configuration, flattened to serializable primitives.
    pub config: GmConfigSnapshot,
}

/// Serializable form of [`GmConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmConfigSnapshot {
    /// Component count K.
    pub k: usize,
    /// γ of `b = γ·M`.
    pub gamma: f64,
    /// `c` of `a = 1 + c·b`.
    pub a_factor: f64,
    /// Exponent of `α = M^e`.
    pub alpha_exponent: f64,
    /// Initialization method name (`identical` / `linear` / `proportional`).
    pub init: String,
    /// Explicit min precision, if set.
    pub min_precision: Option<f64>,
    /// Explicit max precision ceiling, if set.
    pub max_precision: Option<f64>,
    /// Lazy schedule: warm-up epochs, Im, Ig.
    pub lazy: (u64, u64, u64),
}

impl From<&GmConfig> for GmConfigSnapshot {
    fn from(c: &GmConfig) -> Self {
        GmConfigSnapshot {
            k: c.k,
            gamma: c.gamma,
            a_factor: c.a_factor,
            alpha_exponent: c.alpha_exponent,
            init: c.init.name().to_string(),
            min_precision: c.min_precision,
            max_precision: c.max_precision,
            lazy: (c.lazy.warmup_epochs, c.lazy.im, c.lazy.ig),
        }
    }
}

impl GmConfigSnapshot {
    /// Rebuilds the configuration, validating every field.
    pub fn restore(&self) -> Result<GmConfig> {
        let init = match self.init.as_str() {
            "identical" => InitMethod::Identical,
            "linear" => InitMethod::Linear,
            "proportional" => InitMethod::Proportional,
            other => {
                return Err(CoreError::InvalidConfig {
                    field: "init",
                    reason: format!("unknown init method `{other}`"),
                })
            }
        };
        let cfg = GmConfig {
            k: self.k,
            gamma: self.gamma,
            a_factor: self.a_factor,
            alpha_exponent: self.alpha_exponent,
            init,
            min_precision: self.min_precision,
            max_precision: self.max_precision,
            lazy: LazySchedule::new(self.lazy.0, self.lazy.1, self.lazy.2)?,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

impl GmSnapshot {
    /// Persist this snapshot to `path` inside the CRC-protected durable
    /// container ([`crate::durable`]), written atomically.
    pub fn save_file(&self, path: &std::path::Path) -> Result<()> {
        let payload = serde_json::to_string(self).map_err(|e| CoreError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason: format!("serialize failed: {e}"),
        })?;
        crate::durable::write_checkpoint(path, payload.as_bytes())
    }

    /// Load and validate a snapshot previously written by
    /// [`GmSnapshot::save_file`]. Corruption (truncation, bit flips, bad
    /// magic) and newer format versions surface as dedicated
    /// [`CoreError`] variants instead of panics.
    pub fn load_file(path: &std::path::Path) -> Result<GmSnapshot> {
        let payload = crate::durable::read_checkpoint(path)?;
        let text = String::from_utf8(payload).map_err(|e| CoreError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason: format!("payload is not UTF-8: {e}"),
        })?;
        serde_json::from_str(&text).map_err(|e| CoreError::CheckpointCorrupt {
            path: path.display().to_string(),
            reason: format!("payload parse failed: {e}"),
        })
    }
}

impl GmRegularizer {
    /// Captures the learned mixture and configuration.
    pub fn snapshot(&self) -> GmSnapshot {
        GmSnapshot {
            pi: self.mixture().pi().to_vec(),
            lambda: self.mixture().lambda().to_vec(),
            m: self.dims(),
            config: GmConfigSnapshot::from(self.config()),
        }
    }

    /// Rebuilds a regularizer from a snapshot. The weight vector itself is
    /// owned by the model; only the adaptive mixture state is restored (the
    /// next scheduled E-step refreshes the cached `g_reg`).
    pub fn from_snapshot(snap: &GmSnapshot) -> Result<GmRegularizer> {
        let config = snap.config.restore()?;
        if snap.pi.len() != config.k || snap.lambda.len() != config.k {
            return Err(CoreError::InvalidConfig {
                field: "snapshot",
                reason: format!(
                    "component count mismatch: config K = {}, snapshot has {}/{}",
                    config.k,
                    snap.pi.len(),
                    snap.lambda.len()
                ),
            });
        }
        // Validate the mixture parameters before installing them.
        let gm = GaussianMixture::new(snap.pi.clone(), snap.lambda.clone())?;
        let mut reg = GmRegularizer::new(snap.m, 0.1, config)?;
        reg.install_mixture(gm)?;
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regularizer::{Regularizer, StepCtx};

    fn trained_reg() -> GmRegularizer {
        let w: Vec<f32> = (0..200)
            .map(|i| if i % 5 == 0 { 0.8 } else { 0.02 } * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut reg = GmRegularizer::new(
            w.len(),
            0.1,
            GmConfig {
                min_precision: Some(5.0),
                ..GmConfig::default()
            },
        )
        .expect("valid");
        let mut grad = vec![0.0f32; w.len()];
        for it in 0..50 {
            grad.fill(0.0);
            reg.accumulate_grad(&w, &mut grad, StepCtx::new(it, 0));
        }
        reg
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = trained_reg();
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: GmSnapshot = serde_json::from_str(&json).expect("deserializes");
        // JSON float formatting can drift by 1 ULP; compare with tolerance.
        assert_eq!(back.m, snap.m);
        assert_eq!(back.config, snap.config);
        for (a, b) in snap.pi.iter().zip(&back.pi) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in snap.lambda.iter().zip(&back.lambda) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
        let restored = GmRegularizer::from_snapshot(&back).expect("restores");
        assert!(restored
            .mixture()
            .pi()
            .iter()
            .zip(reg.mixture().pi())
            .all(|(a, b)| (a - b).abs() < 1e-12));
        assert_eq!(restored.dims(), reg.dims());
        assert_eq!(restored.config(), reg.config());
    }

    #[test]
    fn restored_regularizer_produces_same_gradients() {
        let reg = trained_reg();
        // direct snapshot (no JSON) restores bit-exactly
        let mut restored = GmRegularizer::from_snapshot(&reg.snapshot()).expect("restores");
        let w: Vec<f32> = (0..200).map(|i| (i as f32 - 100.0) / 150.0).collect();
        let mut g1 = vec![0.0f32; 200];
        let mut g2 = vec![0.0f32; 200];
        let mut orig = reg;
        orig.accumulate_grad(&w, &mut g1, StepCtx::new(1_000, 50));
        restored.accumulate_grad(&w, &mut g2, StepCtx::new(1_000, 50));
        // Same mixture + same weights => identical E-step output.
        assert_eq!(g1, g2);
    }

    #[test]
    fn snapshot_validation_rejects_corruption() {
        let reg = trained_reg();
        let mut snap = reg.snapshot();
        snap.lambda[0] = -1.0;
        assert!(GmRegularizer::from_snapshot(&snap).is_err());

        let mut snap = reg.snapshot();
        snap.pi.pop();
        assert!(GmRegularizer::from_snapshot(&snap).is_err());

        let mut snap = reg.snapshot();
        snap.config.init = "nonsense".into();
        assert!(GmRegularizer::from_snapshot(&snap).is_err());

        let mut snap = reg.snapshot();
        snap.config.lazy = (0, 0, 1);
        assert!(GmRegularizer::from_snapshot(&snap).is_err());
    }

    #[test]
    fn snapshot_file_roundtrip_detects_truncation() {
        let dir = std::env::temp_dir().join(format!("gmreg-snapfile-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gm.gmck");

        let snap = trained_reg().snapshot();
        snap.save_file(&path).expect("saves");
        let back = GmSnapshot::load_file(&path).expect("loads");
        assert_eq!(back.m, snap.m);
        assert_eq!(back.config, snap.config);

        // Truncate the container: load reports corruption, never panics.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            GmSnapshot::load_file(&path),
            Err(CoreError::CheckpointCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_snapshot_round_trips_all_init_methods() {
        for init in InitMethod::ALL {
            let cfg = GmConfig {
                init,
                ..GmConfig::default()
            };
            let snap = GmConfigSnapshot::from(&cfg);
            assert_eq!(snap.restore().expect("valid"), cfg);
        }
    }
}

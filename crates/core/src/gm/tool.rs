//! The paper's tool-facing API (Section IV, "Key Functions").
//!
//! The GM regularization tool exposes exactly three operations to a host
//! deep-learning platform: `calResponsibility()`, `calcRegGrad()` and
//! `uptGMParam()`. [`GmRegTool`] mirrors that surface over
//! [`GmRegularizer`] so a training framework that wants manual control of
//! the E/M cadence (instead of the built-in lazy schedule) can drive the
//! steps itself.

use crate::error::Result;
use crate::gm::mixture::GaussianMixture;
use crate::gm::regularizer::GmRegularizer;
use crate::gm::GmConfig;
use crate::tele;

/// Manual-cadence façade over the GM regularizer, mirroring the paper's
/// `calResponsibility` / `calcRegGrad` / `uptGMParam` functions.
///
/// ```
/// use gmreg_core::gm::{GmConfig, GmRegTool};
///
/// let mut tool = GmRegTool::new(4, 0.5, GmConfig::default()).unwrap();
/// let w = [0.1_f32, -0.7, 0.02, 0.4];
/// let resp = tool.cal_responsibility(&w).unwrap();
/// assert_eq!(resp.len(), 4); // one row per weight dimension
/// let greg = tool.calc_reg_grad(&w).unwrap();
/// assert_eq!(greg.len(), 4);
/// tool.upt_gm_param(&w).unwrap(); // one EM step on the mixture
/// ```
pub struct GmRegTool {
    inner: GmRegularizer,
}

impl GmRegTool {
    /// Creates a tool for a parameter group of `m` dimensions whose weights
    /// were initialized with standard deviation `weight_std`.
    pub fn new(m: usize, weight_std: f64, config: GmConfig) -> Result<Self> {
        Ok(GmRegTool {
            inner: GmRegularizer::new(m, weight_std, config)?,
        })
    }

    /// `calResponsibility()`: the responsibility of every component for
    /// every weight dimension (Eq. 9) — an `M × K` row-major matrix.
    pub fn cal_responsibility(&self, w: &[f32]) -> Result<Vec<Vec<f64>>> {
        self.check(w)?;
        tele::counter_inc("gm.tool.cal_responsibility.calls");
        let _t = tele::span("gm.tool.cal_responsibility.ns");
        let gm = self.inner.mixture();
        let mut rows = Vec::with_capacity(w.len());
        let mut buf = Vec::new();
        for &wv in w {
            gm.responsibilities(wv as f64, &mut buf);
            rows.push(buf.clone());
        }
        Ok(rows)
    }

    /// `calcRegGrad()`: the regularization gradient `g_reg` (Eq. 10) under
    /// the current mixture, freshly computed (no lazy cache).
    pub fn calc_reg_grad(&mut self, w: &[f32]) -> Result<Vec<f32>> {
        self.check(w)?;
        tele::counter_inc("gm.tool.calc_reg_grad.calls");
        let _t = tele::span("gm.tool.calc_reg_grad.ns");
        let gm = self.inner.mixture();
        Ok(w.iter()
            .map(|&wv| (gm.reg_coefficient(wv as f64) * wv as f64) as f32)
            .collect())
    }

    /// `uptGMParam()`: one full EM step (E-step sweep + M-step refresh) of
    /// the mixture parameters against the supplied weights.
    pub fn upt_gm_param(&mut self, w: &[f32]) -> Result<()> {
        tele::counter_inc("gm.tool.upt_gm_param.calls");
        let _t = tele::span("gm.tool.upt_gm_param.ns");
        self.inner.force_e_step(w)?;
        self.inner.force_m_step()
    }

    /// The current mixture.
    pub fn mixture(&self) -> &GaussianMixture {
        self.inner.mixture()
    }

    /// The mixture with merged components collapsed, as reported in the
    /// paper's tables.
    pub fn learned_mixture(&self) -> Result<GaussianMixture> {
        self.inner.learned_mixture()
    }

    /// Grants access to the underlying schedule-driven regularizer.
    pub fn into_regularizer(self) -> GmRegularizer {
        self.inner
    }

    fn check(&self, w: &[f32]) -> Result<()> {
        if w.len() != self.inner.dims() {
            return Err(crate::error::CoreError::DimensionMismatch {
                expected: self.inner.dims(),
                actual: w.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GmConfig {
        GmConfig {
            min_precision: Some(1.0),
            ..GmConfig::default()
        }
    }

    #[test]
    fn responsibilities_rows_are_simplexes() {
        let tool = GmRegTool::new(3, 0.5, cfg()).unwrap();
        let rows = tool.cal_responsibility(&[0.0, 0.5, -2.0]).unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row.len(), 4);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reg_grad_matches_coefficient_times_weight() {
        let mut tool = GmRegTool::new(2, 0.5, cfg()).unwrap();
        let w = [0.3f32, -0.1];
        let g = tool.calc_reg_grad(&w).unwrap();
        for (gi, wi) in g.iter().zip(&w) {
            let c = tool.mixture().reg_coefficient(*wi as f64);
            assert!((*gi as f64 - c * *wi as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn upt_gm_param_changes_mixture() {
        let mut tool = GmRegTool::new(64, 0.5, cfg()).unwrap();
        let before = tool.mixture().clone();
        let w: Vec<f32> = (0..64).map(|i| ((i as f32) - 32.0) / 40.0).collect();
        tool.upt_gm_param(&w).unwrap();
        assert_ne!(tool.mixture(), &before);
        tool.learned_mixture().unwrap();
    }

    #[test]
    fn dimension_checks() {
        let mut tool = GmRegTool::new(3, 0.5, cfg()).unwrap();
        assert!(tool.cal_responsibility(&[0.0; 2]).is_err());
        assert!(tool.calc_reg_grad(&[0.0; 4]).is_err());
        assert!(tool.upt_gm_param(&[0.0; 4]).is_err());
    }

    #[test]
    fn into_regularizer_preserves_state() {
        let mut tool = GmRegTool::new(8, 0.5, cfg()).unwrap();
        tool.upt_gm_param(&[0.1; 8]).unwrap();
        let reg = tool.into_regularizer();
        assert_eq!(reg.e_step_count(), 1);
        assert_eq!(reg.m_step_count(), 1);
    }
}

//! Extension: adaptive regularization with *learnable component means* —
//! classic soft weight-sharing (Nowlan & Hinton, 1992), of which the
//! paper's zero-mean GM regularization is the centered special case.
//!
//! The paper fixes every component's mean at zero because its goal is
//! shrinkage with adaptive per-weight strength. Letting the means move
//! turns the prior into a clustering penalty: weights are attracted to a
//! small set of learned centers, which is the natural "future work"
//! extension for weight quantization / sharing use cases. The machinery is
//! the same interleaved EM + SGD; the M-step gains a responsibility-
//! weighted mean update with a Normal prior (strength `mean_pseudo`)
//! keeping centers near zero on non-stationary early weights.

use crate::error::{CoreError, Result};
use crate::regularizer::{Regularizer, StepCtx};

/// Configuration for [`SoftSharingRegularizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoftSharingConfig {
    /// Number of mixture components.
    pub k: usize,
    /// γ in `b = γ·M` — Gamma-prior rate scale for the precisions, exactly
    /// as in the zero-mean GM.
    pub gamma: f64,
    /// Factor `c` in `a = 1 + c·b`.
    pub a_factor: f64,
    /// Dirichlet exponent: `α = M^e`.
    pub alpha_exponent: f64,
    /// Pseudo-count of the zero-centered Normal prior on each component
    /// mean; larger values keep means closer to zero.
    pub mean_pseudo: f64,
    /// Half-width of the initial mean spread: means start linearly spaced
    /// over `[-spread, +spread]` (a spread of 0 reduces to all-zero means).
    pub init_mean_spread: f64,
    /// Initial precision of every component.
    pub init_precision: f64,
}

impl Default for SoftSharingConfig {
    fn default() -> Self {
        SoftSharingConfig {
            k: 4,
            gamma: 0.005,
            a_factor: 0.01,
            alpha_exponent: 0.5,
            mean_pseudo: 10.0,
            init_mean_spread: 0.5,
            init_precision: 10.0,
        }
    }
}

impl SoftSharingConfig {
    /// Validates every field.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(CoreError::InvalidConfig {
                field: "k",
                reason: "need at least one component".into(),
            });
        }
        for (field, v) in [
            ("gamma", self.gamma),
            ("init_precision", self.init_precision),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidConfig {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        for (field, v) in [
            ("a_factor", self.a_factor),
            ("alpha_exponent", self.alpha_exponent),
            ("mean_pseudo", self.mean_pseudo),
            ("init_mean_spread", self.init_mean_spread),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(CoreError::InvalidConfig {
                    field,
                    reason: format!("must be non-negative and finite, got {v}"),
                });
            }
        }
        Ok(())
    }
}

/// A Gaussian-Mixture penalty whose component means are learned alongside
/// the mixing coefficients and precisions.
pub struct SoftSharingRegularizer {
    config: SoftSharingConfig,
    pi: Vec<f64>,
    mu: Vec<f64>,
    lambda: Vec<f64>,
    m: usize,
    a: f64,
    b: f64,
    alpha: f64,
    em_steps: u64,
}

impl SoftSharingRegularizer {
    /// Creates a regularizer for a parameter group of `m` dimensions.
    pub fn new(m: usize, config: SoftSharingConfig) -> Result<Self> {
        config.validate()?;
        if m == 0 {
            return Err(CoreError::InvalidConfig {
                field: "m",
                reason: "parameter group must have at least one dimension".into(),
            });
        }
        let k = config.k;
        let mu: Vec<f64> = if k == 1 {
            vec![0.0]
        } else {
            (0..k)
                .map(|i| {
                    -config.init_mean_spread
                        + 2.0 * config.init_mean_spread * i as f64 / (k - 1) as f64
                })
                .collect()
        };
        let b = config.gamma * m as f64;
        let a = 1.0 + config.a_factor * b;
        let alpha = (m as f64).powf(config.alpha_exponent);
        Ok(SoftSharingRegularizer {
            pi: vec![1.0 / k as f64; k],
            lambda: vec![config.init_precision; k],
            mu,
            m,
            a,
            b,
            alpha,
            config,
            em_steps: 0,
        })
    }

    /// Mixing coefficients π.
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Component means μ.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Component precisions λ.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// EM steps performed so far.
    pub fn em_step_count(&self) -> u64 {
        self.em_steps
    }

    /// Responsibilities of every component for the value `x`, in log space.
    fn responsibilities(&self, x: f64, out: &mut Vec<f64>) {
        out.clear();
        let mut max = f64::NEG_INFINITY;
        for k in 0..self.config.k {
            let d = x - self.mu[k];
            let t = if self.pi[k] > 0.0 {
                self.pi[k].ln() + 0.5 * self.lambda[k].ln() - 0.5 * self.lambda[k] * d * d
            } else {
                f64::NEG_INFINITY
            };
            out.push(t);
            if t > max {
                max = t;
            }
        }
        let mut z = 0.0;
        for t in out.iter_mut() {
            *t = (*t - max).exp();
            z += *t;
        }
        for t in out.iter_mut() {
            *t /= z;
        }
    }

    /// One full EM step against the weights.
    pub fn em_step(&mut self, w: &[f32]) -> Result<()> {
        if w.len() != self.m {
            return Err(CoreError::DimensionMismatch {
                expected: self.m,
                actual: w.len(),
            });
        }
        let k = self.config.k;
        let mut r_sum = vec![0.0f64; k];
        let mut rw_sum = vec![0.0f64; k];
        let mut rdd_sum = vec![0.0f64; k];
        let mut buf = Vec::with_capacity(k);
        for &wv in w {
            let x = wv as f64;
            self.responsibilities(x, &mut buf);
            for i in 0..k {
                r_sum[i] += buf[i];
                rw_sum[i] += buf[i] * x;
                let d = x - self.mu[i];
                rdd_sum[i] += buf[i] * d * d;
            }
        }
        // Means: responsibility-weighted average, shrunk toward zero by the
        // Normal prior's pseudo-count.
        for i in 0..k {
            self.mu[i] = rw_sum[i] / (r_sum[i] + self.config.mean_pseudo);
        }
        // Precisions: Gamma-smoothed as in the zero-mean GM (distances are
        // measured to the *old* means here; one-step EM tolerates the lag).
        for i in 0..k {
            let num = 2.0 * (self.a - 1.0) + r_sum[i];
            let den = 2.0 * self.b + rdd_sum[i];
            self.lambda[i] = (num / den).clamp(crate::gm::LAMBDA_MIN, crate::gm::LAMBDA_MAX);
        }
        // Mixing coefficients: Dirichlet-smoothed.
        let excess = k as f64 * (self.alpha - 1.0);
        let den = self.m as f64 + excess;
        let mut z = 0.0;
        for (p, &r) in self.pi.iter_mut().zip(&r_sum) {
            *p = ((r + self.alpha - 1.0) / den).max(crate::gm::PI_FLOOR);
            z += *p;
        }
        for p in self.pi.iter_mut() {
            *p /= z;
        }
        self.em_steps += 1;
        Ok(())
    }
}

impl Regularizer for SoftSharingRegularizer {
    fn name(&self) -> &str {
        "soft-sharing"
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        const LN_TAU: f64 = 1.837_877_066_409_345_5;
        -w.iter()
            .map(|&wv| {
                let x = wv as f64;
                let mut max = f64::NEG_INFINITY;
                let mut terms = Vec::with_capacity(self.config.k);
                for i in 0..self.config.k {
                    let d = x - self.mu[i];
                    let t = self.pi[i].max(f64::MIN_POSITIVE).ln()
                        + 0.5 * (self.lambda[i].ln() - LN_TAU)
                        - 0.5 * self.lambda[i] * d * d;
                    max = max.max(t);
                    terms.push(t);
                }
                max + terms.iter().map(|t| (t - max).exp()).sum::<f64>().ln()
            })
            .sum::<f64>()
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], _ctx: StepCtx) {
        assert_eq!(
            w.len(),
            grad.len(),
            "weight and gradient buffers must match"
        );
        assert_eq!(w.len(), self.m, "weight vector length changed");
        // g_reg[m] = Σ_k r_k(w_m) · λ_k · (w_m − μ_k): pulls each weight
        // toward the centers responsible for it.
        let mut buf = Vec::with_capacity(self.config.k);
        for (g, &wv) in grad.iter_mut().zip(w) {
            let x = wv as f64;
            self.responsibilities(x, &mut buf);
            let mut acc = 0.0;
            for ((&r, &lambda), &mu) in buf.iter().zip(&self.lambda).zip(&self.mu) {
                acc += r * lambda * (x - mu);
            }
            *g += acc as f32;
        }
        // One EM step per call (the lazy schedule could be layered on top
        // exactly as for the zero-mean GM).
        let _ = self.em_step(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_weights() -> Vec<f32> {
        // Three clusters at -0.8, 0, +0.8.
        let mut w = Vec::new();
        for i in 0..300 {
            let c = [-0.8f32, 0.0, 0.8][i % 3];
            let jitter = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
            w.push(c + 0.05 * jitter);
        }
        w
    }

    #[test]
    fn construction_and_validation() {
        assert!(SoftSharingRegularizer::new(0, SoftSharingConfig::default()).is_err());
        let bad = SoftSharingConfig {
            k: 0,
            ..SoftSharingConfig::default()
        };
        assert!(SoftSharingRegularizer::new(4, bad).is_err());
        let bad = SoftSharingConfig {
            gamma: -1.0,
            ..SoftSharingConfig::default()
        };
        assert!(SoftSharingRegularizer::new(4, bad).is_err());
        let bad = SoftSharingConfig {
            mean_pseudo: f64::NAN,
            ..SoftSharingConfig::default()
        };
        assert!(SoftSharingRegularizer::new(4, bad).is_err());

        let r = SoftSharingRegularizer::new(10, SoftSharingConfig::default()).unwrap();
        assert_eq!(r.name(), "soft-sharing");
        assert_eq!(r.pi().len(), 4);
        // linear mean spread covers [-0.5, 0.5]
        assert!((r.mu()[0] + 0.5).abs() < 1e-12);
        assert!((r.mu()[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn em_finds_the_clusters() {
        let w = clustered_weights();
        let cfg = SoftSharingConfig {
            k: 3,
            init_mean_spread: 0.4,
            gamma: 0.001,
            mean_pseudo: 1.0,
            ..SoftSharingConfig::default()
        };
        let mut reg = SoftSharingRegularizer::new(w.len(), cfg).unwrap();
        for _ in 0..100 {
            reg.em_step(&w).unwrap();
        }
        let mut mu = reg.mu().to_vec();
        mu.sort_by(f64::total_cmp);
        assert!((mu[0] + 0.8).abs() < 0.1, "{mu:?}");
        assert!(mu[1].abs() < 0.1, "{mu:?}");
        assert!((mu[2] - 0.8).abs() < 0.1, "{mu:?}");
        assert!((reg.pi().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(reg.em_step_count(), 100);
    }

    #[test]
    fn gradient_pulls_weights_toward_their_cluster() {
        let w = clustered_weights();
        let cfg = SoftSharingConfig {
            k: 3,
            init_mean_spread: 0.4,
            gamma: 0.001,
            mean_pseudo: 1.0,
            ..SoftSharingConfig::default()
        };
        let mut reg = SoftSharingRegularizer::new(w.len(), cfg).unwrap();
        for _ in 0..100 {
            reg.em_step(&w).unwrap();
        }
        // A weight slightly right of the +0.8 center is pulled left
        // (positive gradient), slightly left is pulled right.
        let mut probe = w.clone();
        probe[0] = 0.9;
        probe[1] = 0.7;
        let mut grad = vec![0.0f32; w.len()];
        reg.accumulate_grad(&probe, &mut grad, StepCtx::new(0, 0));
        assert!(grad[0] > 0.0, "w=0.9 should be pulled down: {}", grad[0]);
        assert!(grad[1] < 0.0, "w=0.7 should be pulled up: {}", grad[1]);
    }

    #[test]
    fn penalty_is_lower_for_clustered_weights() {
        let cfg = SoftSharingConfig {
            k: 3,
            init_mean_spread: 0.4,
            gamma: 0.001,
            mean_pseudo: 1.0,
            ..SoftSharingConfig::default()
        };
        let w = clustered_weights();
        let mut reg = SoftSharingRegularizer::new(w.len(), cfg).unwrap();
        for _ in 0..100 {
            reg.em_step(&w).unwrap();
        }
        let on_cluster = reg.penalty(&w);
        let off: Vec<f32> = w.iter().map(|v| v + 0.4).collect();
        let off_cluster = reg.penalty(&off);
        assert!(
            on_cluster < off_cluster,
            "clustered weights should be more probable: {on_cluster} vs {off_cluster}"
        );
    }

    #[test]
    fn zero_spread_reduces_to_centered_mixture() {
        let cfg = SoftSharingConfig {
            init_mean_spread: 0.0,
            mean_pseudo: 1e12, // pin the means
            ..SoftSharingConfig::default()
        };
        let w: Vec<f32> = (0..100).map(|i| ((i as f32) - 50.0) / 100.0).collect();
        let mut reg = SoftSharingRegularizer::new(w.len(), cfg).unwrap();
        reg.em_step(&w).unwrap();
        assert!(reg.mu().iter().all(|m| m.abs() < 1e-6), "{:?}", reg.mu());
        // and the gradient then shrinks toward zero like the paper's GM
        let mut grad = vec![0.0f32; w.len()];
        reg.accumulate_grad(&w, &mut grad, StepCtx::new(0, 0));
        for (g, &wv) in grad.iter().zip(&w) {
            assert!(g * wv >= 0.0);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut reg = SoftSharingRegularizer::new(8, SoftSharingConfig::default()).unwrap();
        assert!(reg.em_step(&[0.0; 4]).is_err());
    }
}

//! Collapsing near-duplicate mixture components for reporting.
//!
//! During training, EM drives redundant components toward identical
//! precisions (the paper: "some of the Gaussian components are gradually
//! merged to one during the GM learning process", leaving one or two).
//! Numerically they remain distinct entries with near-equal λ, so reports
//! like Tables IV/V collapse them with [`effective_mixture`].

use crate::error::Result;
use crate::gm::mixture::GaussianMixture;

/// Components whose precisions differ by less than this ratio are treated
/// as one component when reporting.
pub const MERGE_RATIO: f64 = 1.5;

/// Components with mixing weight below this are dropped when reporting.
pub const PI_DROP: f64 = 1e-3;

/// Returns the mixture with near-identical components merged and
/// negligible-weight components dropped, sorted by ascending precision.
///
/// Merging preserves the mixture's second moment: the merged component's
/// variance is the π-weighted mean of the merged variances.
pub fn effective_mixture(gm: &GaussianMixture) -> Result<GaussianMixture> {
    effective_mixture_with(gm, MERGE_RATIO, PI_DROP)
}

/// [`effective_mixture`] with explicit merge ratio and drop threshold.
pub fn effective_mixture_with(
    gm: &GaussianMixture,
    merge_ratio: f64,
    pi_drop: f64,
) -> Result<GaussianMixture> {
    // Sort surviving components by precision.
    let mut comps: Vec<(f64, f64)> = gm
        .pi()
        .iter()
        .zip(gm.lambda())
        .map(|(&p, &l)| (p, l))
        .filter(|&(p, _)| p >= pi_drop)
        .collect();
    if comps.is_empty() {
        // Everything fell below the drop threshold; keep the heaviest
        // original component so the result is still a valid mixture.
        let (idx, _) = gm
            .pi()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("mixture has at least one component");
        comps.push((1.0, gm.lambda()[idx]));
    }
    comps.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Greedily merge runs of components whose precision ratio stays below
    // merge_ratio, pooling their variance π-weighted.
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(comps.len());
    for (p, l) in comps {
        match merged.last_mut() {
            Some((mp, ml)) if l / *ml < merge_ratio => {
                let pooled_var = (*mp / *ml + p / l) / (*mp + p);
                *mp += p;
                *ml = 1.0 / pooled_var;
            }
            _ => merged.push((p, l)),
        }
    }

    let z: f64 = merged.iter().map(|(p, _)| p).sum();
    let pi = merged.iter().map(|(p, _)| p / z).collect();
    let lambda = merged.iter().map(|&(_, l)| l).collect();
    GaussianMixture::new(pi, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_components_collapse_to_one() {
        let gm = GaussianMixture::new(vec![0.25; 4], vec![10.0, 10.1, 10.2, 9.9]).unwrap();
        let eff = effective_mixture(&gm).unwrap();
        assert_eq!(eff.k(), 1);
        assert!((eff.pi()[0] - 1.0).abs() < 1e-12);
        assert!((eff.lambda()[0] - 10.0).abs() < 0.5);
    }

    #[test]
    fn two_populations_stay_two() {
        let gm = GaussianMixture::new(vec![0.25; 4], vec![1.0, 1.2, 800.0, 810.0]).unwrap();
        let eff = effective_mixture(&gm).unwrap();
        assert_eq!(eff.k(), 2);
        assert!(eff.lambda()[0] < 2.0);
        assert!(eff.lambda()[1] > 700.0);
        assert!((eff.pi()[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tiny_weight_components_are_dropped() {
        let gm = GaussianMixture::new(vec![0.9995, 0.0005], vec![100.0, 1.0]).unwrap();
        let eff = effective_mixture(&gm).unwrap();
        assert_eq!(eff.k(), 1);
        assert!((eff.lambda()[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merging_preserves_variance() {
        let gm = GaussianMixture::new(vec![0.5, 0.5], vec![10.0, 12.0]).unwrap();
        let eff = effective_mixture(&gm).unwrap();
        assert_eq!(eff.k(), 1);
        assert!((eff.variance() - gm.variance()).abs() < 1e-12);
    }

    #[test]
    fn all_below_drop_threshold_keeps_heaviest() {
        let gm = GaussianMixture::new(vec![0.5, 0.5], vec![1.0, 2.0]).unwrap();
        // absurd drop threshold: everything below 0.9
        let eff = effective_mixture_with(&gm, 1.5, 0.9).unwrap();
        assert_eq!(eff.k(), 1);
        assert!((eff.pi()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_ascending_precision() {
        let gm = GaussianMixture::new(vec![0.3, 0.3, 0.4], vec![500.0, 1.0, 30.0]).unwrap();
        let eff = effective_mixture(&gm).unwrap();
        let l = eff.lambda();
        assert!(l.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(eff.k(), 3);
    }
}

//! The four fixed-norm baseline regularizers the paper compares against:
//! L1, L2, elastic-net, and Huber-norm (Section V, Table VII).
//!
//! Each corresponds to a fixed prior on the weights (Section II-A): L1 to a
//! Laplacian, L2 to a Gaussian, elastic-net to a compromise of the two, and
//! Huber to a piecewise Gaussian-center / Laplacian-tail prior.

use crate::error::{CoreError, Result};
use crate::regularizer::{Regularizer, StepCtx};

fn check_positive(field: &'static str, v: f64) -> Result<()> {
    if !(v.is_finite() && v > 0.0) {
        return Err(CoreError::InvalidConfig {
            field,
            reason: format!("must be a positive finite number, got {v}"),
        });
    }
    Ok(())
}

fn check_len(w: &[f32], grad: &[f32]) {
    assert_eq!(
        w.len(),
        grad.len(),
        "weight and gradient buffers must have equal length"
    );
}

/// L1-norm (lasso) regularization: `β · Σ|w_m|`, Laplacian prior.
///
/// The gradient uses the subgradient `β · sign(w)` with `sign(0) = 0`.
#[derive(Debug, Clone, Copy)]
pub struct L1Reg {
    beta: f64,
}

impl L1Reg {
    /// Creates an L1 penalty with strength `beta > 0`.
    pub fn new(beta: f64) -> Result<Self> {
        check_positive("beta", beta)?;
        Ok(L1Reg { beta })
    }

    /// The strength parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Regularizer for L1Reg {
    fn name(&self) -> &str {
        "L1"
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        self.beta * w.iter().map(|&v| v.abs() as f64).sum::<f64>()
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], _ctx: StepCtx) {
        check_len(w, grad);
        let b = self.beta as f32;
        for (g, &v) in grad.iter_mut().zip(w) {
            *g += b * v.signum() * (v != 0.0) as u8 as f32;
        }
    }
}

/// L2-norm (weight decay / ridge) regularization: `β/2 · Σ w_m²`,
/// Gaussian prior. A GM prior restricted to one component (Section VI-A).
#[derive(Debug, Clone, Copy)]
pub struct L2Reg {
    beta: f64,
}

impl L2Reg {
    /// Creates an L2 penalty with strength `beta > 0`.
    pub fn new(beta: f64) -> Result<Self> {
        check_positive("beta", beta)?;
        Ok(L2Reg { beta })
    }

    /// The strength parameter β — in the Gaussian-prior view, the precision
    /// λ of the single component (Tables IV/V report it this way).
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Regularizer for L2Reg {
    fn name(&self) -> &str {
        "L2"
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        0.5 * self.beta * w.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], _ctx: StepCtx) {
        check_len(w, grad);
        let b = self.beta as f32;
        for (g, &v) in grad.iter_mut().zip(w) {
            *g += b * v;
        }
    }
}

/// Elastic-net regularization: `β · (ρ·Σ|w| + (1-ρ)/2 · Σw²)`.
///
/// `l1_ratio` (ρ) interpolates between pure L2 (ρ=0) and pure L1 (ρ=1),
/// matching the paper's description of the `l1_ratio` knob.
#[derive(Debug, Clone, Copy)]
pub struct ElasticNetReg {
    beta: f64,
    l1_ratio: f64,
}

impl ElasticNetReg {
    /// Creates an elastic-net penalty with strength `beta > 0` and mixing
    /// ratio `l1_ratio ∈ [0, 1]`.
    pub fn new(beta: f64, l1_ratio: f64) -> Result<Self> {
        check_positive("beta", beta)?;
        if !(0.0..=1.0).contains(&l1_ratio) {
            return Err(CoreError::InvalidConfig {
                field: "l1_ratio",
                reason: format!("must lie in [0, 1], got {l1_ratio}"),
            });
        }
        Ok(ElasticNetReg { beta, l1_ratio })
    }

    /// The strength parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The L1 proportion ρ.
    pub fn l1_ratio(&self) -> f64 {
        self.l1_ratio
    }
}

impl Regularizer for ElasticNetReg {
    fn name(&self) -> &str {
        "elastic-net"
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        let l1: f64 = w.iter().map(|&v| v.abs() as f64).sum();
        let l2: f64 = w.iter().map(|&v| (v as f64) * (v as f64)).sum();
        self.beta * (self.l1_ratio * l1 + 0.5 * (1.0 - self.l1_ratio) * l2)
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], _ctx: StepCtx) {
        check_len(w, grad);
        let b1 = (self.beta * self.l1_ratio) as f32;
        let b2 = (self.beta * (1.0 - self.l1_ratio)) as f32;
        for (g, &v) in grad.iter_mut().zip(w) {
            *g += b1 * v.signum() * (v != 0.0) as u8 as f32 + b2 * v;
        }
    }
}

/// Huber-norm regularization: quadratic inside `|w| ≤ mu`, linear outside.
///
/// `f(w) = β · Σ h(w_m)` with `h(v) = v²/(2μ)` for `|v| ≤ μ` and
/// `h(v) = |v| − μ/2` otherwise — L2 behaviour on small weights, L1 on
/// large ones, and differentiable everywhere (Section VI-A).
#[derive(Debug, Clone, Copy)]
pub struct HuberReg {
    beta: f64,
    mu: f64,
}

impl HuberReg {
    /// Creates a Huber penalty with strength `beta > 0` and transition
    /// threshold `mu > 0`.
    pub fn new(beta: f64, mu: f64) -> Result<Self> {
        check_positive("beta", beta)?;
        check_positive("mu", mu)?;
        Ok(HuberReg { beta, mu })
    }

    /// The strength parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The L2→L1 transition threshold μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }
}

impl Regularizer for HuberReg {
    fn name(&self) -> &str {
        "huber"
    }

    fn penalty(&self, w: &[f32]) -> f64 {
        let mu = self.mu;
        self.beta
            * w.iter()
                .map(|&v| {
                    let v = v.abs() as f64;
                    if v <= mu {
                        v * v / (2.0 * mu)
                    } else {
                        v - mu / 2.0
                    }
                })
                .sum::<f64>()
    }

    fn accumulate_grad(&mut self, w: &[f32], grad: &mut [f32], _ctx: StepCtx) {
        check_len(w, grad);
        let b = self.beta as f32;
        let mu = self.mu as f32;
        for (g, &v) in grad.iter_mut().zip(w) {
            *g += if v.abs() <= mu {
                b * v / mu
            } else {
                b * v.signum()
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> StepCtx {
        StepCtx::new(0, 0)
    }

    /// Finite-difference check of `accumulate_grad` against `penalty`.
    fn grad_check(mut reg: impl Regularizer, w: &[f32], skip_kink: bool) {
        let mut grad = vec![0.0f32; w.len()];
        reg.accumulate_grad(w, &mut grad, ctx());
        let eps = 1e-3f32;
        for i in 0..w.len() {
            if skip_kink && w[i].abs() < 10.0 * eps {
                continue; // subgradient point
            }
            let mut wp = w.to_vec();
            let mut wm = w.to_vec();
            wp[i] += eps;
            wm[i] -= eps;
            let num = (reg.penalty(&wp) - reg.penalty(&wm)) / (2.0 * eps as f64);
            assert!(
                (num - grad[i] as f64).abs() < 1e-2 * (1.0 + num.abs()),
                "dim {i}: numeric {num} vs analytic {}",
                grad[i]
            );
        }
    }

    const W: [f32; 6] = [0.5, -1.5, 0.0, 2.0, -0.3, 0.05];

    #[test]
    fn l2_matches_closed_form() {
        let mut r = L2Reg::new(2.0).unwrap();
        assert_eq!(r.name(), "L2");
        assert_eq!(r.beta(), 2.0);
        let w = [1.0f32, -2.0];
        assert!((r.penalty(&w) - 5.0).abs() < 1e-9); // 0.5*2*(1+4)
        let mut g = [0.0f32; 2];
        r.accumulate_grad(&w, &mut g, ctx());
        assert_eq!(g, [2.0, -4.0]);
        grad_check(r, &W, false);
    }

    #[test]
    fn l1_matches_closed_form() {
        let mut r = L1Reg::new(0.5).unwrap();
        assert_eq!(r.name(), "L1");
        assert_eq!(r.beta(), 0.5);
        let w = [1.0f32, -2.0, 0.0];
        assert!((r.penalty(&w) - 1.5).abs() < 1e-9);
        let mut g = [0.0f32; 3];
        r.accumulate_grad(&w, &mut g, ctx());
        assert_eq!(g, [0.5, -0.5, 0.0]); // sign(0) treated as 0
        grad_check(r, &W, true);
    }

    #[test]
    fn elastic_net_interpolates() {
        let l1 = L1Reg::new(1.0).unwrap();
        let l2 = L2Reg::new(1.0).unwrap();
        let en_l1 = ElasticNetReg::new(1.0, 1.0).unwrap();
        let en_l2 = ElasticNetReg::new(1.0, 0.0).unwrap();
        let w = [0.7f32, -1.2, 2.0];
        assert!((en_l1.penalty(&w) - l1.penalty(&w)).abs() < 1e-9);
        assert!((en_l2.penalty(&w) - l2.penalty(&w)).abs() < 1e-9);
        let r = ElasticNetReg::new(2.0, 0.3).unwrap();
        assert_eq!(r.beta(), 2.0);
        assert_eq!(r.l1_ratio(), 0.3);
        assert_eq!(r.name(), "elastic-net");
        grad_check(r, &W, true);
    }

    #[test]
    fn huber_is_l2_inside_l1_outside() {
        let r = HuberReg::new(1.0, 1.0).unwrap();
        assert_eq!(r.name(), "huber");
        assert_eq!(r.mu(), 1.0);
        assert_eq!(r.beta(), 1.0);
        // inside: v^2/2; outside: |v| - 1/2
        assert!((r.penalty(&[0.5]) - 0.125).abs() < 1e-9);
        assert!((r.penalty(&[3.0]) - 2.5).abs() < 1e-9);
        // continuity at the threshold
        assert!((r.penalty(&[1.0 - 1e-6]) - r.penalty(&[1.0 + 1e-6])).abs() < 1e-5);
        grad_check(r, &W, false);
    }

    #[test]
    fn constructors_validate() {
        assert!(L1Reg::new(0.0).is_err());
        assert!(L2Reg::new(-1.0).is_err());
        assert!(L2Reg::new(f64::NAN).is_err());
        assert!(ElasticNetReg::new(1.0, 1.5).is_err());
        assert!(ElasticNetReg::new(0.0, 0.5).is_err());
        assert!(HuberReg::new(1.0, 0.0).is_err());
        assert!(HuberReg::new(0.0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_buffers_panic() {
        let mut r = L2Reg::new(1.0).unwrap();
        let mut g = [0.0f32; 2];
        r.accumulate_grad(&[1.0, 2.0, 3.0], &mut g, ctx());
    }

    #[test]
    fn gradient_shrinks_weights() {
        // One SGD step with each penalty must move weights toward zero.
        let w = [0.8f32, -0.6];
        let regs: Vec<Box<dyn Regularizer>> = vec![
            Box::new(L1Reg::new(0.1).unwrap()),
            Box::new(L2Reg::new(0.1).unwrap()),
            Box::new(ElasticNetReg::new(0.1, 0.5).unwrap()),
            Box::new(HuberReg::new(0.1, 0.5).unwrap()),
        ];
        for mut r in regs {
            let mut g = [0.0f32; 2];
            r.accumulate_grad(&w, &mut g, ctx());
            for (wi, gi) in w.iter().zip(g) {
                assert!(wi * gi > 0.0, "{} must shrink weights", r.name());
            }
        }
    }
}

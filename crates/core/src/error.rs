//! Error type for regularizer configuration and state validation.

use std::fmt;

/// Errors raised when configuring or driving a regularizer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration field has a value outside its valid range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A weight vector of unexpected length was supplied to a regularizer
    /// that was initialized for a fixed dimensionality.
    DimensionMismatch {
        /// Dimensionality the regularizer was initialized with.
        expected: usize,
        /// Dimensionality of the vector supplied.
        actual: usize,
    },
    /// The mixture state became numerically degenerate (NaN or non-finite
    /// parameters) and could not be repaired.
    DegenerateMixture {
        /// Description of what became degenerate.
        detail: String,
    },
    /// A filesystem operation failed. The underlying `std::io::Error` is
    /// flattened to a string so the error stays `Clone + PartialEq`.
    Io {
        /// Path the operation was acting on.
        path: String,
        /// The operation that failed (`"read"`, `"write"`, `"rename"`, ...).
        op: &'static str,
        /// Stringified OS error.
        detail: String,
    },
    /// A checkpoint file failed integrity validation (bad magic, length
    /// mismatch, CRC mismatch, or unparseable payload).
    CheckpointCorrupt {
        /// Path of the offending checkpoint.
        path: String,
        /// What specifically failed to validate.
        reason: String,
    },
    /// A checkpoint was written by a newer, unsupported format version.
    CheckpointVersion {
        /// Version found in the file header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            CoreError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "weight vector has {actual} dimensions, expected {expected}"
                )
            }
            CoreError::DegenerateMixture { detail } => {
                write!(f, "degenerate mixture state: {detail}")
            }
            CoreError::Io { path, op, detail } => {
                write!(f, "io error during {op} of `{path}`: {detail}")
            }
            CoreError::CheckpointCorrupt { path, reason } => {
                write!(f, "corrupt checkpoint `{path}`: {reason}")
            }
            CoreError::CheckpointVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} is newer than supported version {supported}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_fields() {
        let e = CoreError::InvalidConfig {
            field: "k",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains('k'));
        let e = CoreError::DimensionMismatch {
            expected: 3,
            actual: 4,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('4'));
        let e = CoreError::DegenerateMixture {
            detail: "lambda is NaN".into(),
        };
        assert!(e.to_string().contains("NaN"));
    }
}

//! Feature-gated telemetry facade: re-exports `gmreg-telemetry` when the
//! `telemetry` feature is enabled and compiles to inlined no-ops otherwise,
//! so instrumented call sites need no `cfg` of their own. Computations that
//! exist only to feed a metric (entropy, drift) must still sit inside a
//! `#[cfg(feature = "telemetry")]` block — a no-op function does not stop
//! its arguments from being evaluated.

#![allow(unused_imports, dead_code)]

#[cfg(feature = "telemetry")]
pub(crate) use gmreg_telemetry::{
    counter_add, counter_inc, gauge_set, histogram_record, span, Span,
};

#[cfg(not(feature = "telemetry"))]
mod noop {
    /// Zero-cost stand-in for the telemetry span guard.
    #[must_use = "a span measures the scope it is bound to"]
    pub struct Span;

    impl Span {
        /// Always 0 without the `telemetry` feature.
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
    }

    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub fn counter_inc(_name: &'static str) {}

    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn histogram_record(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }
}

#[cfg(not(feature = "telemetry"))]
pub(crate) use noop::*;

//! The long-lived work-stealing pool behind the fork-join primitives.
//!
//! PR 1's fork-join spawned fresh scoped threads on every call; at Fig. 3
//! scale that is tens of thousands of spawns per training run. This module
//! replaces it with a process-wide pool that is:
//!
//! * **lazy** — no thread exists until the first real fork. Serial builds
//!   and `threads <= 1` calls never touch it, so `--no-default-features`
//!   consumers and small problems stay spawn-free.
//! * **work-stealing** — every worker owns a deque. Jobs submitted from
//!   non-worker threads spread their participation tokens round-robin over
//!   the deques; a nested job submitted from inside a worker pushes to
//!   that worker's own deque. Idle workers pop their own deque front,
//!   then the shared injector, then steal from the backs of their peers'
//!   deques (counted as `pool.steals`).
//! * **parked when idle** — workers sleep on a condvar between jobs and
//!   are woken by submissions; an `epoch` counter bumped under the state
//!   lock on every submission closes the classic lost-wakeup race (a
//!   worker only parks if the epoch is unchanged since its last scan).
//! * **deterministic in its reduction order** — the pool distributes
//!   *range claims*, not results. A job still splits into exactly
//!   `threads` contiguous ranges whose partials the caller folds in
//!   range-index order, so scheduling cannot perturb float reductions
//!   and `e_step` stays bit-identical at every thread count.
//! * **cleanly shut down** — the first spawn registers a C `atexit` hook
//!   (no dependencies) that signals and joins every worker before the
//!   process exits.
//!
//! ## Participation tokens and the completion protocol
//!
//! A [`Job`] lives on the **caller's stack**; workers reach it through a
//! lifetime-erased pointer. A job with `n_ranges` ranges queues
//! `n_refs = min(n_ranges - 1, width)` **tokens**. `pending` starts at
//! `n_ranges + n_refs`: every completed range and every released token
//! decrements it, and the decrement that reaches zero unparks the caller.
//! `run_job` returns only at zero, so no worker can touch the job — or
//! the borrowed closure behind it — after the call returns. (The `Thread`
//! handle is cloned *before* the final decrement: the caller may return
//! the instant `pending` hits zero, after which the job memory is gone.)
//!
//! A token admits **one distinct worker** to the job (enforced by a
//! participant bitmap — a worker that pops a second token of the same job
//! re-queues it for a peer). Each admitted worker emits exactly one
//! `pool.worker.ns` span and then claims ranges from the shared atomic
//! cursor until the job is dry; the caller does the same under its own
//! span. Range distribution is therefore fully dynamic — whichever
//! participant is free takes the next range — while the *observable
//! shape* of a fork (one span per participant, `1 + n_refs` participants)
//! is deterministic, which keeps the trace-replay guarantees of the
//! observability suite intact on a pool whose scheduling is not.
//!
//! Workers flush their telemetry ring *before* releasing their token:
//! a persistent worker has no thread-exit flush (PR 1's scoped threads
//! did), and the caller may snapshot the registry the moment the join
//! completes.
//!
//! A nested (worker-initiated) job retracts its still-queued tokens once
//! the submitting worker has drained the ranges itself, instead of
//! waiting for busy peers — two workers forking into each other could
//! otherwise deadlock waiting for tokens neither can service.

use crate::tele;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::Thread;

/// Hard ceiling on spawned workers (also the participant-bitmap width).
/// The pool grows to the largest width any job has requested, but never
/// past this; ranges beyond the width are simply multiplexed over the
/// existing workers plus the caller.
pub(crate) const MAX_WORKERS: usize = 64;

thread_local! {
    /// `Some(index)` on pool worker threads, `None` everywhere else.
    static WORKER_ID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// One fork-join job: a lifetime-erased range runner plus the claim and
/// completion state. Stack-allocated by [`run_job`].
struct Job {
    /// Runs one range by index. Erased to `'static`; soundness comes from
    /// the `pending` protocol (see module docs).
    run: &'static (dyn Fn(usize) + Sync),
    /// Ranges `0..n_ranges` are claimable through `next`.
    n_ranges: usize,
    /// Next unclaimed range (values at or past `n_ranges` mean done).
    next: AtomicUsize,
    /// Unfinished ranges + outstanding tokens.
    pending: AtomicUsize,
    /// Bit `i` set once worker `i` holds or has held a token of this job.
    participants: AtomicU64,
    /// Unparked when `pending` reaches zero.
    caller: Thread,
    /// The fork span's id; participants adopt it so their spans stay
    /// linked to the caller's trace tree.
    fork_id: u64,
}

impl Job {
    /// Claim the next range, if any remain.
    fn claim(&self) -> Option<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        (idx < self.n_ranges).then_some(idx)
    }

    /// Admit worker `me` to the job; `false` if it already participated
    /// (its token must go to a different worker).
    fn try_admit(&self, me: usize) -> bool {
        let bit = 1u64 << me;
        self.participants.fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Decrement `pending`; the decrement that reaches zero unparks the
    /// caller. The `Thread` clone must happen first — the caller may
    /// return (freeing this job) the instant the counter hits zero.
    fn finish_one(&self) {
        let caller = self.caller.clone();
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            caller.unpark();
        }
    }
}

/// Decrements one `pending` unit on drop, so a range claim is paid back
/// even if the runner unwinds.
struct RangeGuard<'a>(&'a Job);

impl Drop for RangeGuard<'_> {
    fn drop(&mut self) {
        self.0.finish_one();
    }
}

/// A queued participation token for an in-flight job. Plain pointer copy;
/// validity is guaranteed by the `pending` protocol.
#[derive(Clone, Copy)]
struct JobRef(*const Job);

// SAFETY: the pointee outlives every queued token (each token is counted
// in `pending`, and the owning `run_job` frame does not return until
// `pending` is zero). Workers only use the pointer to claim ranges and
// decrement counters, all of which are atomic.
unsafe impl Send for JobRef {}

struct State {
    /// Re-queued tokens (and nothing else in steady state): any worker
    /// may take them.
    injector: VecDeque<JobRef>,
    /// One deque per worker; tokens are dealt round-robin onto these and
    /// idle workers steal from the backs of their peers'.
    deques: Vec<Arc<Mutex<VecDeque<JobRef>>>>,
    /// Round-robin cursor for dealing tokens.
    deal: usize,
    /// Bumped under the lock on every submission; parks compare it.
    epoch: u64,
    shutdown: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Pool {
    state: Mutex<State>,
    work_cv: Condvar,
    width: AtomicUsize,
}

/// The process-wide pool, created on first use (no threads yet).
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            injector: VecDeque::new(),
            deques: Vec::new(),
            deal: 0,
            epoch: 0,
            shutdown: false,
            handles: Vec::new(),
        }),
        work_cv: Condvar::new(),
        width: AtomicUsize::new(0),
    })
}

/// Number of live pool workers (0 until the first fork).
pub(crate) fn width() -> usize {
    pool().width.load(Ordering::Acquire)
}

/// Run `run(range_idx)` for every range in `0..n_ranges`, distributing
/// ranges over the pool workers and the calling thread, and return once
/// every range has finished and no worker holds a token for the job.
///
/// Requires `n_ranges >= 2` (the `threads <= 1` case never reaches the
/// pool). The closure must not unwind — callers wrap the user function in
/// `catch_unwind` and report panics through their result slots.
pub(crate) fn run_job(n_ranges: usize, fork_id: u64, run: &(dyn Fn(usize) + Sync)) {
    debug_assert!(n_ranges >= 2, "serial jobs must not reach the pool");
    let p = pool();
    let caller_is_worker = WORKER_ID.with(|w| w.get().is_some());
    let width = p.ensure_width((n_ranges - 1).min(MAX_WORKERS));
    let n_refs = (n_ranges - 1).min(width);

    // SAFETY: `run` outlives this frame; the frame does not return until
    // `pending` is zero, i.e. until no queued or held token remains.
    let run_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(run) };
    let job = Job {
        run: run_static,
        n_ranges,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(n_ranges + n_refs),
        participants: AtomicU64::new(0),
        caller: std::thread::current(),
        fork_id,
    };
    p.submit(JobRef(&job), n_refs, caller_is_worker);

    // The caller participates like any admitted worker: one span, then
    // dynamic range claims against the shared cursor.
    {
        let span = tele::span("pool.worker.ns").with_u64("worker", 0);
        let mut claimed = 0u64;
        while let Some(idx) = job.claim() {
            let _g = RangeGuard(&job);
            (job.run)(idx);
            claimed += 1;
        }
        drop(span.with_u64("ranges", claimed));
    }

    if caller_is_worker {
        // Nested job: peers may all be busy, so reclaim the tokens still
        // sitting in queues instead of waiting for them. Tokens already
        // popped are actively held and will be released promptly.
        let removed = p.retract(&job);
        for _ in 0..removed {
            job.finish_one();
        }
    }

    while job.pending.load(Ordering::Acquire) > 0 {
        // `unpark` tokens make a bare `park` safe here; the timeout is
        // pure defense in depth.
        std::thread::park_timeout(std::time::Duration::from_millis(2));
    }
}

impl Pool {
    /// Grow the pool to `target` workers (capped at [`MAX_WORKERS`]);
    /// returns the resulting width.
    fn ensure_width(&self, target: usize) -> usize {
        let target = target.min(MAX_WORKERS);
        let cur = self.width.load(Ordering::Acquire);
        if cur >= target {
            return cur;
        }
        let mut st = self.state.lock().expect("pool state");
        if st.shutdown {
            return st.deques.len();
        }
        while st.deques.len() < target {
            let me = st.deques.len();
            st.deques.push(Arc::new(Mutex::new(VecDeque::new())));
            let handle = std::thread::Builder::new()
                .name(format!("gmreg-pool-{me}"))
                .spawn(move || worker_main(pool(), me))
                .expect("spawn pool worker");
            st.handles.push(handle);
        }
        let w = st.deques.len();
        drop(st);
        self.width.store(w, Ordering::Release);
        tele::gauge_set("pool.width", w as f64);
        register_shutdown_hook();
        w
    }

    /// Queue `n_refs` tokens for the job and wake the workers: dealt
    /// round-robin over the worker deques for a non-worker caller, pushed
    /// onto the submitting worker's own deque for a nested job.
    fn submit(&self, jref: JobRef, n_refs: usize, from_worker: bool) {
        if n_refs == 0 {
            return;
        }
        let own = from_worker.then(|| WORKER_ID.with(|w| w.get())).flatten();
        let mut st = self.state.lock().expect("pool state");
        match own {
            Some(me) => {
                let deque = st.deques[me].clone();
                let mut d = deque.lock().expect("worker deque");
                for _ in 0..n_refs {
                    d.push_back(jref);
                }
            }
            None => {
                for _ in 0..n_refs {
                    let at = st.deal % st.deques.len();
                    st.deal = st.deal.wrapping_add(1);
                    let deque = st.deques[at].clone();
                    deque.lock().expect("worker deque").push_back(jref);
                }
            }
        }
        st.epoch += 1;
        drop(st);
        self.work_cv.notify_all();
    }

    /// Push one token back for a different worker to take (the popper
    /// already participated in its job). Goes to the shared injector and
    /// re-signals, so no peer can miss it.
    fn requeue(&self, jref: JobRef) {
        let mut st = self.state.lock().expect("pool state");
        st.injector.push_back(jref);
        st.epoch += 1;
        drop(st);
        self.work_cv.notify_all();
    }

    /// Remove every queued token of `job`; returns how many were removed.
    /// Used by nested (worker-initiated) jobs to avoid waiting on busy
    /// peers.
    fn retract(&self, job: &Job) -> usize {
        let target: *const Job = job;
        let mut removed = 0usize;
        let deques = {
            let mut st = self.state.lock().expect("pool state");
            let before = st.injector.len();
            st.injector.retain(|r| !std::ptr::eq(r.0, target));
            removed += before - st.injector.len();
            st.deques.clone()
        };
        for deque in deques {
            let mut d = deque.lock().expect("worker deque");
            let before = d.len();
            d.retain(|r| !std::ptr::eq(r.0, target));
            removed += before - d.len();
        }
        removed
    }

    /// Pop work for worker `me`: own deque first, then the injector, then
    /// steal from peers. Parks when everything is empty; returns `None`
    /// on shutdown. The boolean is `true` for a steal.
    fn find_work(&self, me: usize) -> Option<(JobRef, bool)> {
        loop {
            let (epoch, own, peers) = {
                let st = self.state.lock().expect("pool state");
                if st.shutdown {
                    return None;
                }
                (st.epoch, st.deques[me].clone(), st.deques.clone())
            };
            if let Some(j) = own.lock().expect("worker deque").pop_front() {
                return Some((j, false));
            }
            {
                let mut st = self.state.lock().expect("pool state");
                if let Some(j) = st.injector.pop_front() {
                    return Some((j, false));
                }
            }
            for k in 1..peers.len() {
                let victim = (me + k) % peers.len();
                if let Some(j) = peers[victim].lock().expect("worker deque").pop_back() {
                    return Some((j, true));
                }
            }
            let st = self.state.lock().expect("pool state");
            if st.shutdown {
                return None;
            }
            if st.epoch == epoch {
                // Nothing was submitted since the scan began: sleep until
                // the next submission (or shutdown) bumps the condvar.
                let _unused = self.work_cv.wait(st).expect("pool condvar");
            }
        }
    }

    /// Signal shutdown and join every worker. Idempotent; called from the
    /// `atexit` hook (and from nothing else in normal operation).
    fn shutdown(&self) {
        let handles = {
            let mut st = self.state.lock().expect("pool state");
            st.shutdown = true;
            st.epoch += 1;
            std::mem::take(&mut st.handles)
        };
        self.work_cv.notify_all();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Worker thread body: pop a token, work the job dry under one span,
/// flush telemetry, release the token, repeat. A panic escaping a job is
/// contained here and counted as `pool.workers.replaced` — the worker
/// re-enters service immediately (a logical replacement on the same OS
/// thread), so one poisoned job cannot shrink the pool.
fn worker_main(p: &'static Pool, me: usize) {
    WORKER_ID.with(|w| w.set(Some(me)));
    while let Some((jref, stolen)) = p.find_work(me) {
        // SAFETY: a popped token is counted in `pending`, so the job is
        // alive until `finish_one` below releases it.
        let job = unsafe { &*jref.0 };
        if !job.try_admit(me) {
            // Already participated: this token belongs to a peer. Requeue
            // and give the scheduler a chance to run that peer before we
            // scan again (it re-signals, so nothing is lost).
            p.requeue(jref);
            std::thread::yield_now();
            continue;
        }
        if stolen {
            tele::counter_inc("pool.steals");
        }
        tele::adopt_parent(job.fork_id);
        {
            let span = tele::span("pool.worker.ns").with_u64("worker", me as u64 + 1);
            let mut claimed = 0u64;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                while let Some(idx) = job.claim() {
                    let _g = RangeGuard(job);
                    (job.run)(idx);
                    claimed += 1;
                }
            }));
            if outcome.is_err() {
                tele::counter_inc("pool.workers.replaced");
            }
            drop(span.with_u64("ranges", claimed));
        }
        tele::adopt_parent(0);
        // Drain this thread's span ring into the process registry *before*
        // releasing the token: the caller may snapshot the registry the
        // moment the job completes, and a persistent worker (unlike PR 1's
        // scoped threads) has no thread-exit flush to rely on.
        tele::flush();
        job.finish_one();
    }
    tele::flush();
}

/// Register the process-exit shutdown hook exactly once. `atexit` is C89,
/// present in every libc and the Windows CRT, so this stays dependency-free.
fn register_shutdown_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        extern "C" fn pool_shutdown_at_exit() {
            pool().shutdown();
        }
        extern "C" {
            fn atexit(cb: extern "C" fn()) -> core::ffi::c_int;
        }
        // SAFETY: registering a no-argument C function pointer with the
        // C runtime; the hook only touches process-static state.
        unsafe {
            atexit(pool_shutdown_at_exit);
        }
    });
}

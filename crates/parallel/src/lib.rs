//! Fork-join execution layer for the gmreg workspace, backed by a
//! persistent work-stealing pool.
//!
//! Every compute kernel in the workspace that wants parallelism goes through
//! the two primitives in this crate:
//!
//! * [`map_chunks`] — evaluate a pure function over chunk indices
//!   `0..n_chunks` across the pool and return the partial results **in
//!   chunk-index order**. Callers fold the returned partials serially, so a
//!   floating-point reduction performed through `map_chunks` is
//!   bit-identical for every thread count, including one.
//! * [`for_each_part`] — apply a function to every element of a slice of
//!   disjoint work items (mutable output bands, parameter groups). Each item
//!   is touched exactly once; items never alias, so no synchronisation
//!   beyond the job's completion protocol is needed.
//!
//! Work is split into **contiguous** index ranges — always exactly
//! `threads` of them, regardless of how many pool workers exist — so the
//! reduction order is a function of the requested thread count alone, never
//! of scheduling. Which thread *executes* a range is dynamic (the caller
//! and the pool workers race to claim them; idle workers steal), which
//! keeps all cores busy without perturbing results.
//!
//! The executing threads live in a lazily-created, process-wide pool
//! ([`mod@pool`]): the first real fork spawns the workers, subsequent forks
//! reuse them (no per-call spawn), idle workers park on a condvar, and a
//! C `atexit` hook joins them at process exit. The crate still has zero
//! dependencies, and a `--no-default-features` build of the consuming
//! crates drops it — and the pool — entirely.
//!
//! ## Thread-count policy
//!
//! [`max_threads`] resolves the process ceiling once: the
//! `GMREG_NUM_THREADS` environment variable when set to a positive integer,
//! otherwise [`std::thread::available_parallelism`]. [`set_thread_cap`]
//! lowers (or raises, up to the pool's hard cap) that ceiling at runtime —
//! benches use it to sweep thread counts inside one process. Kernels derive
//! their actual worker count with [`effective_threads`], which also caps
//! the fork so every worker receives a minimum amount of work — small
//! problems stay on the calling thread and never touch the pool.

mod pool;
mod tele;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A worker panic contained by one of the `try_*` primitives.
///
/// The panic payload is flattened to a string so the error stays
/// `Clone + PartialEq` and can cross crate boundaries without carrying
/// `Box<dyn Any>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the work range (0 = the first range) that panicked.
    pub worker: usize,
    /// The panic message, or a placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gmreg-parallel worker {} panicked: {}",
            self.worker, self.message
        )
    }
}

impl std::error::Error for PoolError {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(feature = "failpoints")]
fn worker_failpoint() {
    if let Some(gmreg_faults::FaultKind::Panic) = gmreg_faults::fire("pool.worker") {
        panic!("injected fault: pool.worker");
    }
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn worker_failpoint() {}

/// Process-wide thread ceiling, resolved once.
///
/// Honours `GMREG_NUM_THREADS` (positive integer) and falls back to
/// [`std::thread::available_parallelism`]. Never returns 0. See
/// [`set_thread_cap`] for the runtime override.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| match std::env::var("GMREG_NUM_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(available),
        Err(_) => available(),
    })
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runtime override of the [`max_threads`] ceiling (0 clears it).
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Override the process thread ceiling at runtime. `0` restores the
/// [`max_threads`] default. Values above the pool's hard cap (64) are
/// honoured for range *counts* but executed on at most 64 workers.
///
/// This exists for thread-sweep benches (`bench_pr1 --threads 1,2,4,8`)
/// where `GMREG_NUM_THREADS` — read once per process — cannot vary.
pub fn set_thread_cap(cap: usize) {
    THREAD_CAP.store(cap, Ordering::Release);
}

/// The ceiling [`effective_threads`] currently applies: the
/// [`set_thread_cap`] override when set, otherwise [`max_threads`].
pub fn current_threads() -> usize {
    match THREAD_CAP.load(Ordering::Acquire) {
        0 => max_threads(),
        cap => cap,
    }
}

/// Number of live pool workers (0 until the first fork). Exposed so
/// observability endpoints can report whether parallelism is engaged.
pub fn pool_width() -> usize {
    pool::width()
}

/// Worker count for a kernel with `n_units` units of work, ensuring every
/// worker gets at least `min_units_per_thread` units. Returns a value in
/// `1..=current_threads()`; `1` means "stay serial".
pub fn effective_threads(n_units: usize, min_units_per_thread: usize) -> usize {
    let ceil = current_threads();
    if min_units_per_thread == 0 {
        return ceil.max(1);
    }
    (n_units / min_units_per_thread).clamp(1, ceil.max(1))
}

/// The half-open range of unit indices owned by worker `idx` when `n` units
/// are split into `parts` contiguous, near-equal ranges. The first
/// `n % parts` workers receive one extra unit.
pub fn split_range(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    debug_assert!(parts > 0 && idx < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    (start, start + len)
}

/// Per-range result slots written concurrently by the range executors.
/// Each index is written by exactly one executor (the range claim is an
/// atomic fetch-add), and the caller reads only after the job's completion
/// protocol has synchronised, so the `UnsafeCell` access never races.
struct Slots<T> {
    cells: Vec<std::cell::UnsafeCell<Option<T>>>,
}

// SAFETY: see the struct docs — disjoint writes, synchronised read-back.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots {
            cells: (0..n).map(|_| std::cell::UnsafeCell::new(None)).collect(),
        }
    }

    /// Store range `i`'s result. Called exactly once per index.
    fn set(&self, i: usize, v: T) {
        // SAFETY: index `i` is owned by the single executor that claimed
        // range `i`; no other thread touches this cell until read-back.
        unsafe { *self.cells[i].get() = Some(v) };
    }

    fn take(&mut self, i: usize) -> Option<T> {
        self.cells[i].get_mut().take()
    }
}

/// A raw mutable base pointer that may cross threads. Range executors use
/// it to carve **disjoint** sub-slices out of one parts buffer.
struct SendPtr<T>(*mut T);

// SAFETY: executors only ever form non-overlapping sub-slices from the
// pointer, and the job completion protocol orders all writes before the
// caller resumes.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Evaluate `f(chunk_idx)` for every `chunk_idx` in `0..n_chunks` using up to
/// `threads` workers, returning the results **in chunk-index order**.
///
/// Each work range covers a contiguous run of chunk indices evaluated in
/// ascending order; the per-range vectors are concatenated in range order.
/// The output is therefore identical — element for element — to
/// `(0..n_chunks).map(f).collect()` regardless of `threads`.
///
/// `threads <= 1` (or fewer than two chunks) runs on the calling thread with
/// no fork. A panic in any worker propagates to the caller.
pub fn map_chunks<T, F>(n_chunks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_map_chunks(n_chunks, threads, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`map_chunks`] with worker-panic containment: a panic in any range (on a
/// pool worker or on the calling thread) is caught, every other range runs
/// to completion, and the panic of the lowest-indexed failing range is
/// returned as a [`PoolError`] instead of unwinding through the join.
pub fn try_map_chunks<T, F>(n_chunks: usize, threads: usize, f: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n_chunks.max(1));
    let run_range = |lo: usize, hi: usize| -> Result<Vec<T>, String> {
        catch_unwind(AssertUnwindSafe(|| {
            worker_failpoint();
            (lo..hi).map(&f).collect::<Vec<T>>()
        }))
        .map_err(|p| payload_message(p.as_ref()))
    };
    if threads <= 1 {
        return run_range(0, n_chunks).map_err(|message| PoolError { worker: 0, message });
    }
    tele::counter_inc("pool.jobs");
    let _fork = tele::span("pool.fork.ns")
        .with_u64("threads", threads as u64)
        .with_u64("chunks", n_chunks as u64);
    // Pool workers run with empty span stacks; handing them the fork span's
    // id keeps the trace tree connected across the join.
    let fork_id = _fork.id();
    let mut slots: Slots<Result<Vec<T>, String>> = Slots::new(threads);
    let runner = |range: usize| {
        let (lo, hi) = split_range(n_chunks, threads, range);
        tele::counter_add("pool.tasks", (hi - lo) as u64);
        slots.set(range, run_range(lo, hi));
    };
    pool::run_job(threads, fork_id, &runner);
    collect_ranges(&mut slots, threads, n_chunks)
}

/// Fold the per-range slots of a finished map job in range order; the
/// lowest failing range index wins for determinism.
fn collect_ranges<T>(
    slots: &mut Slots<Result<Vec<T>, String>>,
    threads: usize,
    n_chunks: usize,
) -> Result<Vec<T>, PoolError> {
    let mut out = Vec::with_capacity(n_chunks);
    for range in 0..threads {
        match slots.take(range) {
            Some(Ok(items)) => out.extend(items),
            Some(Err(message)) => {
                tele::counter_inc("pool.worker.panics");
                return Err(PoolError {
                    worker: range,
                    message,
                });
            }
            // Unreachable in practice (every claimed range writes its
            // slot, even on a contained panic); fail closed regardless.
            None => {
                tele::counter_inc("pool.worker.panics");
                return Err(PoolError {
                    worker: range,
                    message: "pool worker produced no result".to_string(),
                });
            }
        }
    }
    Ok(out)
}

/// Apply `f(part_idx, &mut part)` to every element of `parts` using up to
/// `threads` workers. Parts are distributed as contiguous ranges; each part
/// is visited exactly once and parts never alias, so `f` may mutate freely.
///
/// `threads <= 1` (or fewer than two parts) runs on the calling thread with
/// no fork. A panic in any worker propagates to the caller.
pub fn for_each_part<T, F>(parts: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if let Err(e) = try_for_each_part(parts, threads, f) {
        panic!("{e}");
    }
}

/// [`for_each_part`] with worker-panic containment (see [`try_map_chunks`]).
///
/// On `Err` the parts owned by non-panicking ranges have been fully
/// processed and the panicking range's parts may be partially mutated —
/// callers that need transactional semantics must discard the buffer.
pub fn try_for_each_part<T, F>(parts: &mut [T], threads: usize, f: F) -> Result<(), PoolError>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = parts.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            worker_failpoint();
            for (i, p) in parts.iter_mut().enumerate() {
                f(i, p);
            }
        }))
        .map_err(|p| PoolError {
            worker: 0,
            message: payload_message(p.as_ref()),
        });
    }
    tele::counter_inc("pool.jobs");
    let _fork = tele::span("pool.fork.ns")
        .with_u64("threads", threads as u64)
        .with_u64("parts", n as u64);
    let fork_id = _fork.id();
    let base = SendPtr(parts.as_mut_ptr());
    let mut slots: Slots<Result<(), String>> = Slots::new(threads);
    let runner = |range: usize| {
        let (lo, hi) = split_range(n, threads, range);
        // SAFETY: ranges partition `0..n`, so these sub-slices are
        // disjoint; the borrow of `parts` is inactive until the job
        // completes.
        let mine = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        tele::counter_add("pool.tasks", mine.len() as u64);
        let res = catch_unwind(AssertUnwindSafe(|| {
            worker_failpoint();
            for (i, p) in mine.iter_mut().enumerate() {
                f(lo + i, p);
            }
        }))
        .map_err(|p| payload_message(p.as_ref()));
        slots.set(range, res);
    };
    pool::run_job(threads, fork_id, &runner);
    for range in 0..threads {
        match slots.take(range) {
            Some(Ok(())) => {}
            Some(Err(message)) => {
                tele::counter_inc("pool.worker.panics");
                return Err(PoolError {
                    worker: range,
                    message,
                });
            }
            None => {
                tele::counter_inc("pool.worker.panics");
                return Err(PoolError {
                    worker: range,
                    message: "pool worker produced no result".to_string(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the global [`set_thread_cap`] override.
    static CAP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn split_range_covers_everything_once() {
        for n in [0usize, 1, 2, 3, 7, 64, 65, 1000] {
            for parts in 1..=9usize {
                let mut next = 0usize;
                for idx in 0..parts {
                    let (lo, hi) = split_range(n, parts, idx);
                    assert_eq!(lo, next, "gap at n={n} parts={parts} idx={idx}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, n, "n={n} parts={parts} does not cover");
            }
        }
    }

    #[test]
    fn split_range_is_balanced() {
        let (lo, hi) = split_range(10, 4, 0);
        assert_eq!(hi - lo, 3);
        let (lo, hi) = split_range(10, 4, 3);
        assert_eq!(hi - lo, 2);
    }

    #[test]
    fn map_chunks_preserves_order_for_every_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 16, 97, 200] {
            let got = map_chunks(97, threads, |i| i * i);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_handles_empty_and_single() {
        assert_eq!(map_chunks(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(map_chunks(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn map_chunks_float_fold_is_bit_identical_across_threads() {
        // A sum with wildly mixed magnitudes: any re-association changes
        // the bits. Folding ordered partials must not.
        let vals: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761usize) % 1000) as f64 * 1e-3 + 1e12 * ((i % 7) as f64))
            .collect();
        let chunk = 128;
        let n_chunks = vals.len().div_ceil(chunk);
        let serial: f64 = map_chunks(n_chunks, 1, |c| {
            vals[c * chunk..((c + 1) * chunk).min(vals.len())]
                .iter()
                .sum::<f64>()
        })
        .into_iter()
        .sum();
        for threads in [2, 3, 8] {
            let par: f64 = map_chunks(n_chunks, threads, |c| {
                vals[c * chunk..((c + 1) * chunk).min(vals.len())]
                    .iter()
                    .sum::<f64>()
            })
            .into_iter()
            .sum();
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn for_each_part_visits_every_part_once_with_its_index() {
        for threads in [1, 2, 3, 8, 40] {
            let mut parts: Vec<(usize, u32)> = (0..33).map(|i| (i, 0u32)).collect();
            for_each_part(&mut parts, threads, |idx, p| {
                assert_eq!(idx, p.0, "index mismatch");
                p.1 += 1;
            });
            assert!(
                parts.iter().all(|&(_, c)| c == 1),
                "threads={threads}: some part not visited exactly once"
            );
        }
    }

    #[test]
    fn for_each_part_on_disjoint_bands() {
        let mut buf = vec![0u64; 100];
        let mut bands: Vec<&mut [u64]> = buf.chunks_mut(13).collect();
        let n_bands = bands.len();
        for_each_part(&mut bands, 4, |idx, band| {
            for v in band.iter_mut() {
                *v = idx as u64 + 1;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, (i / 13) as u64 + 1);
        }
        assert_eq!(n_bands, 8);
    }

    #[test]
    fn effective_threads_respects_min_work() {
        let _cap = CAP_LOCK.lock().unwrap();
        // With a huge per-thread minimum only one thread qualifies.
        assert_eq!(effective_threads(100, usize::MAX), 1);
        // Zero minimum means "use the ceiling".
        assert_eq!(effective_threads(100, 0), max_threads());
        // The ratio bound: 10 units / 5 per thread = at most 2 workers.
        assert!(effective_threads(10, 5) <= 2);
        assert!(effective_threads(10, 5) >= 1);
    }

    #[test]
    fn thread_cap_overrides_the_ceiling() {
        let _cap = CAP_LOCK.lock().unwrap();
        set_thread_cap(3);
        assert_eq!(current_threads(), 3);
        assert_eq!(effective_threads(1000, 1), 3);
        set_thread_cap(0);
        assert_eq!(current_threads(), max_threads());
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn pool_threads_are_persistent_and_named() {
        // Two forks must reuse the same pool: collect the executing thread
        // names and assert every non-caller thread is a pool worker (the
        // PR 1 scoped threads were unnamed and died after every call), and
        // that the pool's width is bounded by the request.
        let me = std::thread::current().name().map(str::to_string);
        for _ in 0..2 {
            let names = map_chunks(16, 4, |_| std::thread::current().name().map(str::to_string));
            for name in names {
                assert!(
                    name.as_deref()
                        .is_some_and(|n| n.starts_with("gmreg-pool-"))
                        || name == me,
                    "unexpected executor {name:?}"
                );
            }
        }
        assert!(pool_width() >= 1, "a fork must have spawned the pool");
        assert!(pool_width() <= super::pool::MAX_WORKERS);
    }

    #[test]
    fn nested_forks_complete_without_deadlock() {
        // A job whose ranges fork again: the inner jobs are submitted from
        // pool workers (own-deque path + ref retraction) and from the
        // caller. Everything must drain.
        let mut parts: Vec<u64> = vec![0; 6];
        for_each_part(&mut parts, 3, |idx, p| {
            let inner: u64 = map_chunks(8, 2, |i| (i + idx) as u64).into_iter().sum();
            *p = inner;
        });
        for (idx, p) in parts.iter().enumerate() {
            assert_eq!(*p, (0..8u64).map(|i| i + idx as u64).sum::<u64>());
        }
    }

    #[test]
    fn try_map_chunks_contains_worker_panic() {
        for threads in [1, 2, 4, 8] {
            let err = try_map_chunks(64, threads, |i| {
                if i == 40 {
                    panic!("chunk {i} poisoned");
                }
                i * 2
            })
            .unwrap_err();
            assert!(
                err.message.contains("chunk 40 poisoned"),
                "threads={threads}: {err}"
            );
            assert!(err.to_string().contains("gmreg-parallel worker"));
        }
        // Healthy runs are identical to the infallible primitive.
        let ok = try_map_chunks(64, 4, |i| i * 2).unwrap();
        assert_eq!(ok, map_chunks(64, 4, |i| i * 2));
    }

    #[test]
    fn pool_survives_contained_panics() {
        // A panicking job must not cost the pool a worker: the same
        // thread count keeps working afterwards, repeatedly.
        for round in 0..4 {
            let _ = try_map_chunks(16, 4, |i| {
                if i % 5 == round {
                    panic!("round {round}");
                }
                i
            });
            assert_eq!(map_chunks(16, 4, |i| i).len(), 16, "round {round}");
        }
    }

    #[test]
    fn try_for_each_part_contains_worker_panic_and_joins_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 2, 4] {
            let visited = AtomicUsize::new(0);
            let mut parts: Vec<usize> = (0..32).collect();
            let err = try_for_each_part(&mut parts, threads, |idx, p| {
                if idx == 5 {
                    panic!("part {idx} poisoned");
                }
                visited.fetch_add(1, Ordering::Relaxed);
                *p += 100;
            })
            .unwrap_err();
            assert!(err.message.contains("part 5 poisoned"), "threads={threads}");
            // Parts before the faulting index in the same range are always
            // processed, and the join completed (nothing hung).
            assert!(visited.load(Ordering::Relaxed) >= 5, "threads={threads}");
        }
    }

    #[test]
    fn infallible_wrappers_repanic_with_clean_message() {
        let caught = std::panic::catch_unwind(|| {
            map_chunks(16, 4, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        })
        .unwrap_err();
        let msg = payload_message(caught.as_ref());
        assert!(msg.contains("gmreg-parallel worker") && msg.contains("boom"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn pool_worker_failpoint_is_contained() {
        gmreg_faults::reset();
        gmreg_faults::arm(
            "pool.worker",
            gmreg_faults::FaultSpec::once_at(gmreg_faults::FaultKind::Panic, 0),
        );
        let err = try_map_chunks(8, 2, |i| i).unwrap_err();
        assert!(err.message.contains("injected fault: pool.worker"));
        gmreg_faults::reset();
        // Once disarmed the same call succeeds — the pool replaced nothing
        // and lost nothing.
        assert_eq!(try_map_chunks(8, 2, |i| i).unwrap().len(), 8);
    }

    #[test]
    fn pool_error_display_and_payload_flattening() {
        let e = PoolError {
            worker: 3,
            message: "x".into(),
        };
        assert_eq!(e.to_string(), "gmreg-parallel worker 3 panicked: x");
        assert_eq!(
            payload_message(&Box::new(17u32)),
            "non-string panic payload"
        );
    }
}

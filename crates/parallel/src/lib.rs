//! Fork-join execution layer for the gmreg workspace.
//!
//! Every compute kernel in the workspace that wants parallelism goes through
//! the two primitives in this crate:
//!
//! * [`map_chunks`] — evaluate a pure function over chunk indices
//!   `0..n_chunks` on a small pool of scoped threads and return the partial
//!   results **in chunk-index order**. Callers fold the returned partials
//!   serially, so a floating-point reduction performed through `map_chunks`
//!   is bit-identical for every thread count, including one.
//! * [`for_each_part`] — apply a function to every element of a slice of
//!   disjoint work items (mutable output bands, parameter groups) from a
//!   small pool of scoped threads. Each item is touched exactly once; items
//!   never alias, so no synchronisation beyond the fork/join is needed.
//!
//! Work is split into **contiguous** index ranges, one per worker, rather
//! than work-stolen: gmreg kernels have uniform per-chunk cost, and static
//! partitioning keeps the reduction order independent of scheduling.
//!
//! The crate has zero dependencies and is built directly on
//! [`std::thread::scope`], so a `--no-default-features` build of the
//! consuming crates drops it entirely.
//!
//! ## Thread-count policy
//!
//! [`max_threads`] resolves the pool ceiling once per process: the
//! `GMREG_NUM_THREADS` environment variable when set to a positive integer,
//! otherwise [`std::thread::available_parallelism`]. Kernels derive their
//! actual worker count with [`effective_threads`], which caps the pool so
//! that every worker receives at least a minimum amount of work — small
//! problems stay on the calling thread with no spawn at all.

mod tele;

use std::sync::OnceLock;

/// Process-wide thread ceiling, resolved once.
///
/// Honours `GMREG_NUM_THREADS` (positive integer) and falls back to
/// [`std::thread::available_parallelism`]. Never returns 0.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| match std::env::var("GMREG_NUM_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(available),
        Err(_) => available(),
    })
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count for a kernel with `n_units` units of work, ensuring every
/// worker gets at least `min_units_per_thread` units. Returns a value in
/// `1..=max_threads()`; `1` means "stay serial".
pub fn effective_threads(n_units: usize, min_units_per_thread: usize) -> usize {
    let ceil = max_threads();
    if min_units_per_thread == 0 {
        return ceil.max(1);
    }
    (n_units / min_units_per_thread).clamp(1, ceil.max(1))
}

/// The half-open range of unit indices owned by worker `idx` when `n` units
/// are split into `parts` contiguous, near-equal ranges. The first
/// `n % parts` workers receive one extra unit.
pub fn split_range(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    debug_assert!(parts > 0 && idx < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    (start, start + len)
}

/// Evaluate `f(chunk_idx)` for every `chunk_idx` in `0..n_chunks` using up to
/// `threads` workers, returning the results **in chunk-index order**.
///
/// Each worker owns a contiguous range of chunk indices and evaluates them in
/// ascending order; the per-worker vectors are concatenated in worker order.
/// The output is therefore identical — element for element — to
/// `(0..n_chunks).map(f).collect()` regardless of `threads`.
///
/// `threads <= 1` (or fewer than two chunks) runs on the calling thread with
/// no spawn. A panic in any worker propagates to the caller.
pub fn map_chunks<T, F>(n_chunks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n_chunks.max(1));
    if threads <= 1 {
        return (0..n_chunks).map(f).collect();
    }
    tele::counter_inc("pool.forks");
    tele::gauge_set("pool.threads", threads as f64);
    let _fork = tele::span("pool.fork.ns");
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (1..threads)
            .map(|w| {
                let (lo, hi) = split_range(n_chunks, threads, w);
                s.spawn(move || {
                    let _t = tele::span("pool.worker.ns");
                    tele::counter_add("pool.tasks", (hi - lo) as u64);
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        // The calling thread computes worker 0's range while the pool runs.
        let (lo, hi) = split_range(n_chunks, threads, 0);
        let _t = tele::span("pool.worker.ns");
        tele::counter_add("pool.tasks", (hi - lo) as u64);
        let mut out = Vec::with_capacity(n_chunks);
        out.extend((lo..hi).map(f));
        for h in handles {
            out.extend(h.join().expect("gmreg-parallel worker panicked"));
        }
        out
    })
}

/// Apply `f(part_idx, &mut part)` to every element of `parts` using up to
/// `threads` workers. Parts are distributed as contiguous ranges; each part
/// is visited exactly once and parts never alias, so `f` may mutate freely.
///
/// `threads <= 1` (or fewer than two parts) runs on the calling thread with
/// no spawn. A panic in any worker propagates to the caller.
pub fn for_each_part<T, F>(parts: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = parts.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (i, p) in parts.iter_mut().enumerate() {
            f(i, p);
        }
        return;
    }
    tele::counter_inc("pool.forks");
    tele::gauge_set("pool.threads", threads as f64);
    let _fork = tele::span("pool.fork.ns");
    std::thread::scope(|s| {
        let f = &f;
        // Peel contiguous ranges off the slice; the calling thread keeps
        // range 0 and computes it while the pool runs the rest.
        let (head, mut rest) = parts.split_at_mut(split_range(n, threads, 0).1);
        for w in 1..threads {
            let (lo, hi) = split_range(n, threads, w);
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
            rest = tail;
            s.spawn(move || {
                let _t = tele::span("pool.worker.ns");
                tele::counter_add("pool.tasks", mine.len() as u64);
                for (i, p) in mine.iter_mut().enumerate() {
                    f(lo + i, p);
                }
            });
        }
        assert!(rest.is_empty(), "range partition must cover all parts");
        let _t = tele::span("pool.worker.ns");
        tele::counter_add("pool.tasks", head.len() as u64);
        for (i, p) in head.iter_mut().enumerate() {
            f(i, p);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_everything_once() {
        for n in [0usize, 1, 2, 3, 7, 64, 65, 1000] {
            for parts in 1..=9usize {
                let mut next = 0usize;
                for idx in 0..parts {
                    let (lo, hi) = split_range(n, parts, idx);
                    assert_eq!(lo, next, "gap at n={n} parts={parts} idx={idx}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, n, "n={n} parts={parts} does not cover");
            }
        }
    }

    #[test]
    fn split_range_is_balanced() {
        let (lo, hi) = split_range(10, 4, 0);
        assert_eq!(hi - lo, 3);
        let (lo, hi) = split_range(10, 4, 3);
        assert_eq!(hi - lo, 2);
    }

    #[test]
    fn map_chunks_preserves_order_for_every_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 16, 97, 200] {
            let got = map_chunks(97, threads, |i| i * i);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_handles_empty_and_single() {
        assert_eq!(map_chunks(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(map_chunks(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn map_chunks_float_fold_is_bit_identical_across_threads() {
        // A sum with wildly mixed magnitudes: any re-association changes
        // the bits. Folding ordered partials must not.
        let vals: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761usize) % 1000) as f64 * 1e-3 + 1e12 * ((i % 7) as f64))
            .collect();
        let chunk = 128;
        let n_chunks = vals.len().div_ceil(chunk);
        let serial: f64 = map_chunks(n_chunks, 1, |c| {
            vals[c * chunk..((c + 1) * chunk).min(vals.len())]
                .iter()
                .sum::<f64>()
        })
        .into_iter()
        .sum();
        for threads in [2, 3, 8] {
            let par: f64 = map_chunks(n_chunks, threads, |c| {
                vals[c * chunk..((c + 1) * chunk).min(vals.len())]
                    .iter()
                    .sum::<f64>()
            })
            .into_iter()
            .sum();
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn for_each_part_visits_every_part_once_with_its_index() {
        for threads in [1, 2, 3, 8, 40] {
            let mut parts: Vec<(usize, u32)> = (0..33).map(|i| (i, 0u32)).collect();
            for_each_part(&mut parts, threads, |idx, p| {
                assert_eq!(idx, p.0, "index mismatch");
                p.1 += 1;
            });
            assert!(
                parts.iter().all(|&(_, c)| c == 1),
                "threads={threads}: some part not visited exactly once"
            );
        }
    }

    #[test]
    fn for_each_part_on_disjoint_bands() {
        let mut buf = vec![0u64; 100];
        let mut bands: Vec<&mut [u64]> = buf.chunks_mut(13).collect();
        let n_bands = bands.len();
        for_each_part(&mut bands, 4, |idx, band| {
            for v in band.iter_mut() {
                *v = idx as u64 + 1;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, (i / 13) as u64 + 1);
        }
        assert_eq!(n_bands, 8);
    }

    #[test]
    fn effective_threads_respects_min_work() {
        // With a huge per-thread minimum only one thread qualifies.
        assert_eq!(effective_threads(100, usize::MAX), 1);
        // Zero minimum means "use the ceiling".
        assert_eq!(effective_threads(100, 0), max_threads());
        // The ratio bound: 10 units / 5 per thread = at most 2 workers.
        assert!(effective_threads(10, 5) <= 2);
        assert!(effective_threads(10, 5) >= 1);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}

//! Windowed aggregation: a ring of per-second metric snapshots giving
//! rolling rates and percentiles without unbounded memory.
//!
//! Every flush ([`crate::flush`]) attributes the drained deltas — counter
//! increments and histogram observations since the thread's last flush —
//! to the current second's slot of a fixed-size ring ([`WINDOW_SLOTS`]
//! seconds deep, enough for a 60 s window plus slack). Reading a window
//! merges the slots belonging to the last N whole seconds, so
//! [`crate::snapshot`] can report rolling 10 s / 60 s request rates and
//! p50/p95/p99 for any histogram next to the cumulative totals.
//!
//! The ring lives inside the global registry and is only touched at drain
//! time — the recording hot path never sees it. Memory is fixed: one
//! [`Hist`] (or one `u64`) per occupied slot per metric name, reused in
//! place as seconds wrap around.

use crate::report::{summarize, HistogramSummary};
use crate::Hist;

/// Ring depth in seconds. Must exceed the longest supported window (60 s)
/// so a slot is never overwritten while still inside it.
pub const WINDOW_SLOTS: usize = 64;

/// The two rolling windows surfaced in reports, in seconds.
pub const WINDOWS_SECS: [u64; 2] = [10, 60];

/// Per-second histogram deltas for one metric name.
pub(crate) struct HistRing {
    /// `slots[sec % WINDOW_SLOTS] = Some((sec, deltas))`; a slot whose
    /// stored second disagrees with the current one is stale and is reset
    /// in place before reuse.
    slots: Vec<Option<(u64, Hist)>>,
}

impl HistRing {
    pub(crate) fn new() -> Self {
        let mut slots = Vec::with_capacity(WINDOW_SLOTS);
        slots.resize_with(WINDOW_SLOTS, || None);
        HistRing { slots }
    }

    /// Merges one flush's histogram delta into second `sec`'s slot.
    pub(crate) fn add(&mut self, sec: u64, delta: &Hist) {
        let idx = (sec as usize) % WINDOW_SLOTS;
        match &mut self.slots[idx] {
            Some((slot_sec, h)) => {
                if *slot_sec != sec {
                    *slot_sec = sec;
                    h.count = 0;
                    h.sum = 0.0;
                    h.min = f64::INFINITY;
                    h.max = f64::NEG_INFINITY;
                    h.buckets.fill(0);
                }
                h.merge(delta);
            }
            empty => {
                let mut h = Hist::new();
                h.merge(delta);
                *empty = Some((sec, h));
            }
        }
    }

    /// Merged view over the last `window` seconds ending at `now_sec`
    /// (inclusive). `None` when no slot in the window holds data.
    pub(crate) fn merged(&self, now_sec: u64, window: u64) -> Option<Hist> {
        let lo = now_sec.saturating_sub(window.saturating_sub(1).min(WINDOW_SLOTS as u64 - 1));
        let mut out: Option<Hist> = None;
        for slot in self.slots.iter().flatten() {
            let (sec, h) = slot;
            if *sec >= lo && *sec <= now_sec && h.count > 0 {
                out.get_or_insert_with(Hist::new).merge(h);
            }
        }
        out
    }
}

/// Per-second counter deltas for one metric name.
pub(crate) struct CounterRing {
    slots: [(u64, u64); WINDOW_SLOTS],
}

impl CounterRing {
    pub(crate) fn new() -> Self {
        CounterRing {
            slots: [(u64::MAX, 0); WINDOW_SLOTS],
        }
    }

    /// Adds one flush's counter delta to second `sec`'s slot.
    pub(crate) fn add(&mut self, sec: u64, delta: u64) {
        let idx = (sec as usize) % WINDOW_SLOTS;
        let (slot_sec, v) = &mut self.slots[idx];
        if *slot_sec != sec {
            *slot_sec = sec;
            *v = 0;
        }
        *v += delta;
    }

    /// Total increments over the last `window` seconds ending at `now_sec`.
    pub(crate) fn total(&self, now_sec: u64, window: u64) -> u64 {
        let lo = now_sec.saturating_sub(window.saturating_sub(1).min(WINDOW_SLOTS as u64 - 1));
        self.slots
            .iter()
            .filter(|(sec, _)| *sec >= lo && *sec <= now_sec)
            .map(|(_, v)| v)
            .sum()
    }
}

/// Rolling-window view of one metric: event rates over the standard 10 s /
/// 60 s windows, plus in-window percentile summaries for histograms.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Events in the last 10 seconds (counter increments or histogram
    /// observations).
    pub count_10s: u64,
    /// Events in the last 60 seconds.
    pub count_60s: u64,
    /// `count_10s / 10` — events per second.
    pub rate_10s: f64,
    /// `count_60s / 60` — events per second.
    pub rate_60s: f64,
    /// Merged histogram over the last 10 seconds (histograms only).
    pub hist_10s: Option<HistogramSummary>,
    /// Merged histogram over the last 60 seconds (histograms only).
    pub hist_60s: Option<HistogramSummary>,
}

impl WindowStats {
    pub(crate) fn from_counter(ring: &CounterRing, now_sec: u64) -> WindowStats {
        let (c10, c60) = (ring.total(now_sec, 10), ring.total(now_sec, 60));
        WindowStats {
            count_10s: c10,
            count_60s: c60,
            rate_10s: c10 as f64 / 10.0,
            rate_60s: c60 as f64 / 60.0,
            hist_10s: None,
            hist_60s: None,
        }
    }

    pub(crate) fn from_hist(ring: &HistRing, now_sec: u64) -> WindowStats {
        let h10 = ring.merged(now_sec, 10);
        let h60 = ring.merged(now_sec, 60);
        let c10 = h10.as_ref().map_or(0, |h| h.count);
        let c60 = h60.as_ref().map_or(0, |h| h.count);
        WindowStats {
            count_10s: c10,
            count_60s: c60,
            rate_10s: c10 as f64 / 10.0,
            rate_60s: c60 as f64 / 60.0,
            hist_10s: h10.as_ref().map(summarize),
            hist_60s: h60.as_ref().map(summarize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[f64]) -> Hist {
        let mut h = Hist::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn counter_ring_windows_by_second() {
        let mut r = CounterRing::new();
        r.add(100, 5);
        r.add(101, 7);
        r.add(109, 1);
        assert_eq!(r.total(109, 10), 13);
        assert_eq!(r.total(109, 1), 1);
        assert_eq!(r.total(110, 10), 8, "second 100 aged out");
        assert_eq!(r.total(200, 60), 0, "all slots aged out");
    }

    #[test]
    fn counter_slots_reset_on_wraparound() {
        let mut r = CounterRing::new();
        r.add(10, 3);
        // Same slot index WINDOW_SLOTS seconds later must not inherit the
        // stale delta.
        r.add(10 + WINDOW_SLOTS as u64, 2);
        assert_eq!(r.total(10 + WINDOW_SLOTS as u64, 10), 2);
    }

    #[test]
    fn hist_ring_merges_only_in_window_slots() {
        let mut r = HistRing::new();
        r.add(50, &hist_of(&[1.0, 2.0]));
        r.add(55, &hist_of(&[100.0]));
        let merged = r.merged(55, 10).expect("data in window");
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 103.0);
        let only_new = r.merged(70, 10);
        assert!(only_new.is_none(), "both slots aged out");
    }

    #[test]
    fn hist_slots_reset_in_place_on_reuse() {
        let mut r = HistRing::new();
        r.add(7, &hist_of(&[5.0]));
        r.add(7 + WINDOW_SLOTS as u64, &hist_of(&[9.0]));
        let merged = r.merged(7 + WINDOW_SLOTS as u64, 5).unwrap();
        assert_eq!(merged.count, 1);
        assert_eq!(merged.sum, 9.0);
    }

    #[test]
    fn window_stats_compute_rates_and_percentiles() {
        let mut r = HistRing::new();
        for sec in 90..100 {
            r.add(sec, &hist_of(&[10.0, 20.0]));
        }
        let w = WindowStats::from_hist(&r, 99);
        assert_eq!(w.count_10s, 20);
        assert_eq!(w.rate_10s, 2.0);
        let h = w.hist_10s.expect("histogram in window");
        assert_eq!(h.count, 20);
        assert!(h.p99() >= 10.0);
    }
}

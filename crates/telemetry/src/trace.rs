//! Request-scoped trace contexts and time-boxed span capture.
//!
//! A [`TraceCtx`] is a process-unique request identity: a splitmix64-mixed
//! id (echoed to clients as the `X-Gmreg-Trace` response header) plus the
//! span id of the request's root span, handed across threads through the
//! existing [`crate::adopt_parent`] flow-link machinery. It is `Copy` and
//! allocation-free, so carrying one through a queue costs two `u64`s.
//!
//! Span *capture* is the switch that keeps default-on tracing off the hot
//! path: per-stage latencies are always recorded as plain timestamps and
//! histograms, but full [`crate::SpanEvent`]s for every request are only
//! materialized while a capture window ([`capture_for_secs`]) is open —
//! `GET /debug/trace?secs=N` opens one, sleeps, and converts the captured
//! window through [`crate::chrome`]. While a window is open the global
//! span cap is raised by [`CAPTURE_EXTRA_SPAN_CAP`] so a loaded server
//! does not silently truncate the window it was asked to record.

use std::sync::atomic::{AtomicU64, Ordering};

/// Extra span events admitted into the global registry while a capture
/// window is open (on top of [`crate::global_span_cap`]). At ~10 spans per
/// request this covers several seconds of multi-thousand-rps load.
pub const CAPTURE_EXTRA_SPAN_CAP: usize = 256 * 1024;

/// A request-scoped trace identity, created once per request (or per
/// training round) and carried by value through every stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Process-unique trace id; 0 means "no trace".
    pub id: u64,
    /// Span id of the trace's root span (0 when capture is off — stage
    /// histograms still record, but no span events materialize).
    pub parent: u64,
}

/// splitmix64 finalizer: bijective on `u64`, so distinct counter values
/// can never collide into the same trace id.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// The absent trace (id 0). Stage recording still works; header
    /// echoing and span parenting are skipped.
    pub const NONE: TraceCtx = TraceCtx { id: 0, parent: 0 };

    /// Mints a fresh process-unique trace id. The id is the splitmix64
    /// image of a monotonically increasing counter: unique (splitmix64 is
    /// a bijection), well-mixed (usable as a lock-stripe key), and free of
    /// any wall-clock or RNG dependency.
    pub fn next() -> TraceCtx {
        let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        TraceCtx {
            id: splitmix64(n).max(1),
            parent: 0,
        }
    }

    /// Whether this context carries a real trace id.
    pub fn is_some(&self) -> bool {
        self.id != 0
    }

    /// The id as 16 lowercase hex digits, written into a fixed buffer —
    /// the allocation-free form the response-header writer needs.
    pub fn id_hex(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        const DIGITS: &[u8; 16] = b"0123456789abcdef";
        for (i, b) in out.iter_mut().enumerate() {
            *b = DIGITS[((self.id >> (60 - 4 * i)) & 0xf) as usize];
        }
        out
    }
}

/// Nanoseconds since the process telemetry epoch — the clock span events
/// are stamped with, exposed so stage timestamps recorded outside spans
/// (the serve hot path) line up with captured spans.
pub fn now_ns() -> u64 {
    crate::epoch_elapsed_ns()
}

static CAPTURE_UNTIL_NS: AtomicU64 = AtomicU64::new(0);

/// Opens a capture window `secs` seconds long (plus a short grace so
/// in-flight requests at the boundary still materialize), returning the
/// window's start in epoch nanoseconds. Windows do not stack; the latest
/// call wins.
pub fn capture_for_secs(secs: u64) -> u64 {
    let start = now_ns();
    let until = start
        .saturating_add(secs.saturating_mul(1_000_000_000))
        .saturating_add(500_000_000);
    CAPTURE_UNTIL_NS.store(until, Ordering::Relaxed);
    start
}

/// Closes any open capture window.
pub fn capture_end() {
    CAPTURE_UNTIL_NS.store(0, Ordering::Relaxed);
}

/// Whether a capture window is currently open. One relaxed atomic load —
/// cheap enough for the per-request hot path.
pub fn capture_active() -> bool {
    let until = CAPTURE_UNTIL_NS.load(Ordering::Relaxed);
    until != 0 && now_ns() < until
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let t = TraceCtx::next();
            assert!(t.is_some());
            assert!(seen.insert(t.id), "duplicate trace id {}", t.id);
        }
    }

    #[test]
    fn trace_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| (0..2_000).map(|_| TraceCtx::next().id).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate trace id {id}");
            }
        }
        assert_eq!(seen.len(), 16_000);
    }

    #[test]
    fn hex_rendering_matches_format() {
        let t = TraceCtx {
            id: 0x0123_4567_89ab_cdef,
            parent: 0,
        };
        assert_eq!(&t.id_hex(), b"0123456789abcdef");
        let t2 = TraceCtx::next();
        let hex = t2.id_hex();
        assert_eq!(
            std::str::from_utf8(&hex).unwrap(),
            format!("{:016x}", t2.id)
        );
    }

    #[test]
    fn capture_window_opens_and_closes() {
        capture_end();
        assert!(!capture_active());
        let start = capture_for_secs(5);
        assert!(capture_active());
        assert!(start <= now_ns());
        capture_end();
        assert!(!capture_active());
    }

    #[test]
    fn none_context_is_inactive() {
        assert!(!TraceCtx::NONE.is_some());
        assert_eq!(&TraceCtx::NONE.id_hex(), b"0000000000000000");
    }
}

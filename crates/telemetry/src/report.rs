//! Snapshot types and emitters: the immutable [`Report`] produced by
//! [`crate::snapshot`], with a hand-rolled JSON serializer (the crate is
//! zero-dependency) and a human-readable renderer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{bucket_upper_edge, Hist};

/// One completed span occurrence, ordered by `(thread, seq)` in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (the histogram it was recorded under).
    pub name: &'static str,
    /// Process-unique id of the recording thread, in creation order.
    pub thread: u32,
    /// Per-thread monotonically increasing sequence number.
    pub seq: u64,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A non-empty histogram bucket: `count` observations with value ≤ `le`
/// (and greater than the previous bucket's edge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive upper edge of the bucket.
    pub le: f64,
    /// Observations that fell into this bucket.
    pub count: u64,
}

/// Exact summary of one histogram: totals plus the occupied buckets of the
/// fixed power-of-two layout.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Occupied buckets, ascending by edge; empty buckets are elided.
    pub buckets: Vec<Bucket>,
}

impl HistogramSummary {
    /// Arithmetic mean of the observations; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

pub(crate) fn summarize(h: &Hist) -> HistogramSummary {
    HistogramSummary {
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
        buckets: h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Bucket {
                le: bucket_upper_edge(i),
                count: c,
            })
            .collect(),
    }
}

/// A merged, deterministic view of everything recorded so far. Metric maps
/// are sorted by name; spans by `(thread, seq)`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Counter totals across all flushed threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (last flushed write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries (spans record into histograms named after them).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Individual span events, `(thread, seq)`-ordered.
    pub spans: Vec<SpanEvent>,
    /// Span events lost to ring-buffer overwrite or the global cap.
    pub dropped_spans: u64,
}

impl Report {
    /// Counter value, 0 when never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` when never recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, `None` when never recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// `counter(num) / counter(den)`, `None` when the denominator is 0.
    /// This is what the lazy-update overhead checks consume:
    /// `ratio("gm.e_step.runs", "gm.e_step.decisions")`.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.counter(den);
        if d == 0 {
            None
        } else {
            Some(self.counter(num) as f64 / d as f64)
        }
    }

    /// Serializes the full report as a JSON object with keys `counters`,
    /// `gauges`, `histograms`, `spans` and `dropped_spans`. Non-finite
    /// numbers become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), v);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), json_num(*v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_str(k),
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max)
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"count\": {}}}",
                    json_num(b.le),
                    b.count
                );
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"thread\": {}, \"seq\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
                json_str(s.name),
                s.thread,
                s.seq,
                s.start_ns,
                s.dur_ns
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "],\n  \"dropped_spans\": {}\n}}\n", self.dropped_spans);
        out
    }

    /// Renders an aligned plain-text summary for terminal consumption.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(8);
        out.push_str("counters\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        out.push_str("gauges\n");
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        out.push_str("histograms\n");
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {k:<width$}  n={} mean={:.3} min={:.3} max={:.3}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
        let _ = writeln!(
            out,
            "spans: {} recorded, {} dropped",
            self.spans.len(),
            self.dropped_spans
        );
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values are not representable and become `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

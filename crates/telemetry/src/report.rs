//! Snapshot types and emitters: the immutable [`Report`] produced by
//! [`crate::snapshot`], with a hand-rolled JSON serializer (the crate is
//! zero-dependency) and a human-readable renderer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::window::WindowStats;
use crate::{bucket_upper_edge, Hist};

/// One typed span attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (epoch, iteration, K, chunk index, ...).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (loss, rate, drift, ...).
    F64(f64),
    /// Static string (decision kind, guard trip label, ...).
    Str(&'static str),
    /// Boolean (Im/Ig decision outcome, ...).
    Bool(bool),
}

impl AttrValue {
    /// The value rendered as a JSON literal (strings quoted and escaped,
    /// non-finite floats become `null`).
    pub fn to_json(self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) => json_num(v),
            AttrValue::Str(s) => json_str(s),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

/// One completed span occurrence, ordered by `(thread, seq)` in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (the histogram it was recorded under).
    pub name: &'static str,
    /// Process-unique span id: `(thread << 32) | per-thread counter`.
    /// Never 0 for a recorded event.
    pub id: u64,
    /// Id of the innermost span open when this one was created; 0 for a
    /// root span. Cross-thread parents come from
    /// [`crate::adopt_parent`] (pool fork → worker links).
    pub parent: u64,
    /// Process-unique id of the recording thread, in creation order.
    pub thread: u32,
    /// Per-thread monotonically increasing sequence number.
    pub seq: u64,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Typed `key=value` attributes, at most [`crate::MAX_SPAN_ATTRS`].
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanEvent {
    /// The attribute recorded under `key`, if any.
    pub fn attr(&self, key: &str) -> Option<AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Serializes this event as one JSONL object (the journal line format).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"name\": {}, \"id\": {}, \"parent\": {}, \"thread\": {}, \"seq\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"attrs\": {{",
            json_str(self.name),
            self.id,
            self.parent,
            self.thread,
            self.seq,
            self.start_ns,
            self.dur_ns
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(k), v.to_json());
        }
        out.push_str("}}");
        out
    }
}

/// A non-empty histogram bucket: `count` observations with value ≤ `le`
/// (and greater than the previous bucket's edge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive upper edge of the bucket.
    pub le: f64,
    /// Observations that fell into this bucket.
    pub count: u64,
}

/// Exact summary of one histogram: totals plus the occupied buckets of the
/// fixed power-of-two layout.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Occupied buckets, ascending by edge; empty buckets are elided.
    pub buckets: Vec<Bucket>,
}

impl HistogramSummary {
    /// Arithmetic mean of the observations; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Estimated quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the power-of-two bucket containing the target rank and clamped to
    /// the exact `[min, max]` range. `NaN` when the histogram is empty.
    ///
    /// The pow2 layout bounds the relative error of the estimate at 2×
    /// (one octave); the exact min/max clamp removes it entirely at the
    /// tails.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for b in &self.buckets {
            let next = cum + b.count;
            if (next as f64) >= target {
                // The bucket spans one octave: lower edge is half the
                // upper edge, except the underflow bucket which starts
                // at 0.
                let lower = if b.le <= crate::bucket_upper_edge(0) {
                    0.0
                } else {
                    b.le / 2.0
                };
                let frac = (target - cum as f64) / b.count as f64;
                let est = lower + frac * (b.le - lower);
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Estimated median; see [`HistogramSummary::quantile`].
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile; see [`HistogramSummary::quantile`].
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile; see [`HistogramSummary::quantile`].
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

pub(crate) fn summarize(h: &Hist) -> HistogramSummary {
    HistogramSummary {
        count: h.count,
        sum: h.sum,
        min: h.min,
        max: h.max,
        buckets: h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Bucket {
                le: bucket_upper_edge(i),
                count: c,
            })
            .collect(),
    }
}

/// A merged, deterministic view of everything recorded so far. Metric maps
/// are sorted by name; spans by `(thread, seq)`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Counter totals across all flushed threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (last flushed write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries (spans record into histograms named after them).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Rolling 10 s / 60 s window views (rates for counters, rates plus
    /// percentiles for histograms); see [`crate::window`].
    pub windows: BTreeMap<String, WindowStats>,
    /// Individual span events, `(thread, seq)`-ordered.
    pub spans: Vec<SpanEvent>,
    /// Span events lost to ring-buffer overwrite or the global cap.
    pub dropped_spans: u64,
}

impl Report {
    /// Counter value, 0 when never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` when never recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, `None` when never recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Rolling-window view of a metric, `None` when never recorded since
    /// the process started (windows outlive their data aging out — an
    /// idle metric reports zero rates, not absence).
    pub fn window(&self, name: &str) -> Option<&WindowStats> {
        self.windows.get(name)
    }

    /// `counter(num) / counter(den)`, `None` when the denominator is 0.
    /// This is what the lazy-update overhead checks consume:
    /// `ratio("gm.e_step.runs", "gm.e_step.decisions")`.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.counter(den);
        if d == 0 {
            None
        } else {
            Some(self.counter(num) as f64 / d as f64)
        }
    }

    /// Serializes the full report as a JSON object with keys `counters`,
    /// `gauges`, `histograms`, `windows`, `spans` and `dropped_spans`.
    /// Non-finite numbers become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), v);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), json_num(*v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_str(k),
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.p50()),
                json_num(h.p95()),
                json_num(h.p99())
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"count\": {}}}",
                    json_num(b.le),
                    b.count
                );
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"windows\": {");
        for (i, (k, w)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let q = |h: &Option<HistogramSummary>, f: fn(&HistogramSummary) -> f64| {
                h.as_ref()
                    .map_or_else(|| "null".to_string(), |h| json_num(f(h)))
            };
            let _ = write!(
                out,
                "\n    {}: {{\"count_10s\": {}, \"count_60s\": {}, \"rate_10s\": {}, \"rate_60s\": {}, \
                 \"p50_10s\": {}, \"p95_10s\": {}, \"p99_10s\": {}, \
                 \"p50_60s\": {}, \"p95_60s\": {}, \"p99_60s\": {}}}",
                json_str(k),
                w.count_10s,
                w.count_60s,
                json_num(w.rate_10s),
                json_num(w.rate_60s),
                q(&w.hist_10s, HistogramSummary::p50),
                q(&w.hist_10s, HistogramSummary::p95),
                q(&w.hist_10s, HistogramSummary::p99),
                q(&w.hist_60s, HistogramSummary::p50),
                q(&w.hist_60s, HistogramSummary::p95),
                q(&w.hist_60s, HistogramSummary::p99),
            );
        }
        if !self.windows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", s.to_jsonl());
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "],\n  \"dropped_spans\": {}\n}}\n", self.dropped_spans);
        out
    }

    /// Renders an aligned plain-text summary for terminal consumption.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        if self.dropped_spans > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} span events dropped (per-thread ring or global cap); \
                 raise GMREG_SPAN_CAP or stream to a JSONL journal (--trace-out)",
                self.dropped_spans
            );
        }
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(8);
        out.push_str("counters\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        out.push_str("gauges\n");
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        out.push_str("histograms\n");
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {k:<width$}  n={} mean={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                h.count,
                h.mean(),
                h.min,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
        let _ = writeln!(
            out,
            "spans: {} recorded, {} dropped",
            self.spans.len(),
            self.dropped_spans
        );
        out
    }
}

/// JSON string literal with the mandatory escapes.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values are not representable and become `null`.
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

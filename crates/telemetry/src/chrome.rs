//! Chrome/Perfetto `trace_event` JSON converter.
//!
//! Turns recorded span events into the [Trace Event Format] consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: each span becomes a
//! complete (`"ph": "X"`) event on its recording thread's track, with the
//! span id, parent id, and typed attributes carried in `args`. Parent
//! links that cross threads — a `gmreg-parallel` worker adopted under a
//! fork span — additionally emit a flow-event pair (`"ph": "s"` at the
//! parent, `"ph": "f"` at the child) so the viewer draws an arrow from
//! fork to worker.
//!
//! Timestamps and durations are converted from nanoseconds (as recorded)
//! to the format's microseconds; sub-microsecond spans keep fractional
//! precision.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::report::json_str;
use crate::{Report, SpanEvent};

/// An owned, renderer-agnostic span record: what [`chrome_trace`] needs,
/// decoupled from the in-process [`SpanEvent`] so external JSONL readers
/// (e.g. the `trace2chrome` binary) can rebuild events from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (becomes the slice label).
    pub name: String,
    /// Span id (unique per process run; 0 is reserved for "no span").
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Recording thread (becomes the `tid` track).
    pub thread: u32,
    /// Start offset from the process telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Attributes as (key, pre-rendered JSON value) pairs.
    pub args: Vec<(String, String)>,
}

impl From<&SpanEvent> for TraceEvent {
    fn from(ev: &SpanEvent) -> Self {
        TraceEvent {
            name: ev.name.to_string(),
            id: ev.id,
            parent: ev.parent,
            thread: ev.thread,
            start_ns: ev.start_ns,
            dur_ns: ev.dur_ns,
            args: ev
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        }
    }
}

fn micros(ns: u64) -> String {
    // Keep integer math exact; only emit a fractional part when needed.
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        whole.to_string()
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn push_args(out: &mut String, ev: &TraceEvent) {
    out.push_str(&format!(
        "\"args\": {{\"span_id\": {}, \"parent_id\": {}",
        ev.id, ev.parent
    ));
    for (k, v) in &ev.args {
        out.push_str(", ");
        out.push_str(&json_str(k));
        out.push_str(": ");
        out.push_str(v);
    }
    out.push('}');
}

/// Renders events as a Chrome `trace_event` JSON document.
///
/// Events may be in any order; cross-thread parent links are detected by
/// joining child `parent` ids against all event ids.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    use std::collections::HashMap;
    // id -> thread, for cross-thread link detection. Span ids are unique
    // per run (thread id in the high bits, per-thread counter low).
    let threads: HashMap<u64, u32> = events.iter().map(|e| (e.id, e.thread)).collect();

    let mut lines: Vec<String> = Vec::with_capacity(events.len());
    for ev in events {
        let mut line = format!(
            "{{\"name\": {}, \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, ",
            json_str(&ev.name),
            ev.thread,
            micros(ev.start_ns),
            micros(ev.dur_ns.max(1)),
        );
        push_args(&mut line, ev);
        line.push('}');
        lines.push(line);

        // Flow arrow for a parent on another thread (fork -> worker).
        if ev.parent != 0 {
            if let Some(&pt) = threads.get(&ev.parent) {
                if pt != ev.thread {
                    lines.push(format!(
                        "{{\"name\": \"fork\", \"ph\": \"s\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"id\": {}, \"cat\": \"flow\"}}",
                        pt,
                        micros(ev.start_ns),
                        ev.parent,
                    ));
                    lines.push(format!(
                        "{{\"name\": \"fork\", \"ph\": \"f\", \"bp\": \"e\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"id\": {}, \"cat\": \"flow\"}}",
                        ev.thread,
                        micros(ev.start_ns),
                        ev.parent,
                    ));
                }
            }
        }
    }

    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"source\": ");
    out.push_str(&json_str("gmreg-telemetry"));
    out.push_str(", \"time_unit_note\": ");
    out.push_str(&json_str(
        "ts/dur are microseconds since the telemetry epoch",
    ));
    out.push_str("}}\n");
    out
}

impl Report {
    /// Converts this report's recorded spans to Chrome `trace_event`
    /// JSON. For long runs prefer streaming spans to a JSONL journal
    /// ([`crate::journal::install`]) and converting that instead — the
    /// in-memory report is truncated at [`crate::global_span_cap`].
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<TraceEvent> = self.spans.iter().map(TraceEvent::from).collect();
        chrome_trace(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, id: u64, parent: u64, thread: u32, start_ns: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            id,
            parent,
            thread,
            start_ns,
            dur_ns: 1_500,
            args: vec![("epoch".to_string(), "2".to_string())],
        }
    }

    #[test]
    fn complete_events_have_x_phase_and_micro_ts() {
        let out = chrome_trace(&[ev("em.sweep", 1, 0, 0, 2_000)]);
        assert!(out.contains("\"ph\": \"X\""));
        assert!(out.contains("\"ts\": 2"));
        assert!(out.contains("\"dur\": 1.500"));
        assert!(out.contains("\"span_id\": 1"));
        assert!(out.contains("\"parent_id\": 0"));
        assert!(out.contains("\"epoch\": 2"));
        assert!(out.contains("\"displayTimeUnit\": \"ms\""));
    }

    #[test]
    fn cross_thread_parent_emits_flow_pair() {
        let fork = ev("pool.fork.ns", (1u64 << 32) | 1, 0, 1, 0);
        let worker = ev("pool.worker.ns", (2u64 << 32) | 1, fork.id, 2, 100);
        let out = chrome_trace(&[fork.clone(), worker]);
        assert!(out.contains("\"ph\": \"s\""));
        assert!(out.contains("\"ph\": \"f\""));
        assert!(out.contains(&format!("\"id\": {}", fork.id)));
    }

    #[test]
    fn same_thread_parent_has_no_flow_events() {
        let a = ev("outer", 1, 0, 3, 0);
        let b = ev("inner", 2, 1, 3, 10);
        let out = chrome_trace(&[a, b]);
        assert!(!out.contains("\"ph\": \"s\""));
        assert!(!out.contains("\"ph\": \"f\""));
    }

    #[test]
    fn zero_duration_clamps_to_one_micro_tick() {
        let mut e = ev("tiny", 7, 0, 0, 0);
        e.dur_ns = 0;
        let out = chrome_trace(&[e]);
        assert!(out.contains("\"dur\": 0.001"));
    }
}

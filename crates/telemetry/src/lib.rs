//! # gmreg-telemetry
//!
//! Zero-dependency metrics and tracing for the gmreg workspace: counters,
//! gauges, histograms with a fixed logarithmic bucket layout, and monotonic
//! span timers.
//!
//! ## Design
//!
//! The hot path never takes a lock. Every thread records into its own
//! [`thread_local!`] sink — plain maps and a fixed-capacity ring buffer of
//! span events — so recording costs one TLS access plus a hash insert.
//! Sinks drain into the process-wide registry in exactly two situations:
//!
//! 1. the owning thread exits (the TLS destructor flushes — this is what
//!    makes short-lived `gmreg-parallel` scope workers observable), or
//! 2. the thread calls [`flush`] / [`snapshot`] explicitly.
//!
//! Draining is **deterministic**: metrics are merged name-sorted
//! (counters add, histograms add bucket-wise, gauges last-flush-wins) and
//! span events are ordered by `(thread id, per-thread sequence number)`,
//! so the same sequence of recordings always produces the same report
//! layout regardless of interleaving.
//!
//! [`snapshot`] folds the calling thread's sink plus everything already
//! flushed into a [`Report`], which renders itself as JSON
//! ([`Report::to_json`]) or an aligned human-readable table
//! ([`Report::render`]).
//!
//! ## Overhead budget
//!
//! A counter bump is a TLS lookup and a `u64` add (single-digit
//! nanoseconds); a span is two `Instant::now()` calls plus a histogram
//! insert. Consumers compile the whole crate out behind their `telemetry`
//! feature, so the `--no-default-features` build pays nothing at all.
//! Recording can also be suppressed at runtime with [`set_enabled`] to
//! measure the instrumentation's own cost.
//!
//! ```
//! gmreg_telemetry::reset();
//! gmreg_telemetry::counter_add("demo.calls", 2);
//! {
//!     let _t = gmreg_telemetry::span("demo.work.ns");
//! }
//! let report = gmreg_telemetry::snapshot();
//! assert_eq!(report.counter("demo.calls"), 2);
//! assert_eq!(report.histogram("demo.work.ns").unwrap().count, 1);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod journal;
mod report;
pub mod trace;
pub mod window;

pub use report::{AttrValue, Bucket, HistogramSummary, Report, SpanEvent};
pub use trace::TraceCtx;
pub use window::{WindowStats, WINDOWS_SECS, WINDOW_SLOTS};

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: one underflow bucket plus one bucket per
/// power-of-two in `2^-30 ..= 2^40`. The layout is fixed so histograms from
/// different threads (and different runs) merge bucket-for-bucket.
pub const HIST_BUCKETS: usize = 72;

/// Smallest bucketed exponent: values below `2^-30` (and non-positive
/// values) land in the underflow bucket 0.
const HIST_MIN_EXP: i32 = -30;
/// Largest bucketed exponent: values at or above `2^40` land in the last
/// bucket.
const HIST_MAX_EXP: i32 = 40;

/// Per-thread span ring capacity; the oldest events are overwritten and
/// counted in [`Report::dropped_spans`].
pub const SPAN_RING_CAP: usize = 1024;

/// Default upper bound on span events retained in the global registry when
/// `GMREG_SPAN_CAP` is unset; see [`global_span_cap`].
pub const DEFAULT_GLOBAL_SPAN_CAP: usize = 16 * SPAN_RING_CAP;

/// Maximum typed attributes one span retains; further attributes are
/// silently dropped (the cap keeps a span's memory footprint bounded).
pub const MAX_SPAN_ATTRS: usize = 8;

/// Upper bound on span events retained in the global registry, resolved
/// once per process from the `GMREG_SPAN_CAP` environment variable
/// (positive integer) and defaulting to [`DEFAULT_GLOBAL_SPAN_CAP`].
///
/// Memory cost: each retained event is ~100 bytes plus ~32 bytes per
/// attribute, so the default 16384-event cap holds a few MB at worst and
/// `GMREG_SPAN_CAP=1000000` budgets on the order of 150 MB. Long training
/// runs that want a complete in-memory timeline raise the cap; runs that
/// stream to a JSONL journal ([`journal::install`]) do not need to — the
/// journal sees every drained event regardless of this cap.
pub fn global_span_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| span_cap_from(std::env::var("GMREG_SPAN_CAP").ok().as_deref()))
}

/// Parses a `GMREG_SPAN_CAP` value; invalid or absent values fall back to
/// [`DEFAULT_GLOBAL_SPAN_CAP`]. Split out of [`global_span_cap`] so the
/// parse is unit-testable without mutating process environment.
pub fn span_cap_from(val: Option<&str>) -> usize {
    val.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_GLOBAL_SPAN_CAP)
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// Globally enables or disables recording. Disabled recording is a single
/// relaxed atomic load; spans become empty guards. Used by overhead-budget
/// measurements; defaults to enabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic epoch shared by every span so event timestamps are mutually
/// comparable within a process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the telemetry epoch (the span timestamp clock).
pub(crate) fn epoch_elapsed_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One histogram: exact count/sum/min/max plus the fixed bucket layout.
#[derive(Debug, Clone)]
pub(crate) struct Hist {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: Box<[u64; HIST_BUCKETS]>,
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; HIST_BUCKETS]),
        }
    }

    fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buckets[bucket_index(v)] += 1;
    }

    fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Bucket index for a value under the fixed layout: bucket 0 holds
/// everything below `2^-30` (including zero and negatives); bucket `i`
/// (1 ≤ i < [`HIST_BUCKETS`]) holds `2^(i-31) ≤ v < 2^(i-30)`, with the
/// last bucket absorbing the overflow.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 2f64.powi(HIST_MIN_EXP) {
        return 0;
    }
    let e = (v.log2().floor() as i32).clamp(HIST_MIN_EXP, HIST_MAX_EXP);
    (e - HIST_MIN_EXP) as usize + 1
}

/// Inclusive upper edge of bucket `i` (the `le` field of the emitted
/// layout). Bucket 0's edge is `2^-30`; the last bucket's edge is
/// `+inf`-like and reported as `2^41`.
pub fn bucket_upper_edge(i: usize) -> f64 {
    2f64.powi(HIST_MIN_EXP + i as i32)
}

/// The per-thread sink: aggregated metrics plus the span event ring.
struct Sink {
    thread: u32,
    seq: u64,
    /// Per-thread span-id counter; ids are `(thread << 32) | next_span`.
    next_span: u64,
    /// Ids of the spans currently open on this thread, outermost first.
    open: Vec<u64>,
    /// Parent adopted from another thread ([`adopt_parent`]); used when the
    /// open stack is empty, which is how pool workers link their root span
    /// to the fork span on the spawning thread.
    adopted: u64,
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, f64>,
    hists: HashMap<&'static str, Hist>,
    ring: Vec<SpanEvent>,
    ring_head: usize,
    dropped: u64,
}

impl Sink {
    fn new() -> Self {
        Sink {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            seq: 0,
            next_span: 0,
            open: Vec::new(),
            adopted: 0,
            counters: HashMap::new(),
            gauges: HashMap::new(),
            hists: HashMap::new(),
            ring: Vec::new(),
            ring_head: 0,
            dropped: 0,
        }
    }

    fn push_event(&mut self, ev: SpanEvent) {
        if self.ring.len() < SPAN_RING_CAP {
            self.ring.push(ev);
        } else {
            self.ring[self.ring_head] = ev;
            self.ring_head = (self.ring_head + 1) % SPAN_RING_CAP;
            self.dropped += 1;
        }
    }

    /// Moves everything recorded so far into the global registry, leaving
    /// the sink empty (thread id and sequence counter persist).
    fn drain_into(&mut self, reg: &mut Registry) {
        // The deltas drained here double as this flush's contribution to
        // the current second's windowed-aggregation slot.
        let now_sec = epoch().elapsed().as_secs();
        for (name, v) in self.counters.drain() {
            *reg.counters.entry(name).or_insert(0) += v;
            reg.win_counters
                .entry(name)
                .or_insert_with(window::CounterRing::new)
                .add(now_sec, v);
        }
        reg.flush_seq += 1;
        let fs = reg.flush_seq;
        for (name, v) in self.gauges.drain() {
            reg.gauges.insert(name, (fs, v));
        }
        for (name, h) in self.hists.drain() {
            reg.hists.entry(name).or_insert_with(Hist::new).merge(&h);
            reg.win_hists
                .entry(name)
                .or_insert_with(window::HistRing::new)
                .add(now_sec, &h);
        }
        reg.dropped_spans += self.dropped;
        self.dropped = 0;
        // Chronological per-thread order: oldest ring entry first. Every
        // drained event reaches the JSONL journal (when one is installed)
        // even if the in-memory registry cap drops it. An open capture
        // window ([`trace::capture_for_secs`]) raises the cap so the
        // window it was asked to record is not silently truncated.
        let mut cap = global_span_cap();
        if trace::capture_active() {
            cap += trace::CAPTURE_EXTRA_SPAN_CAP;
        }
        let head = self.ring_head;
        let n = self.ring.len();
        for i in 0..n {
            let ev = &self.ring[(head + i) % n];
            journal::record(ev);
            if reg.spans.len() < cap {
                reg.spans.push(ev.clone());
            } else {
                reg.dropped_spans += 1;
            }
        }
        self.ring.clear();
        self.ring_head = 0;
    }
}

/// Wrapper whose TLS destructor flushes the sink when the thread exits —
/// scoped pool workers die right after their fork-join, and this is what
/// carries their measurements back.
struct SinkHolder(Sink);

impl Drop for SinkHolder {
    fn drop(&mut self) {
        if let Ok(mut reg) = registry().lock() {
            self.0.drain_into(&mut reg);
        }
    }
}

thread_local! {
    static SINK: RefCell<SinkHolder> = RefCell::new(SinkHolder(Sink::new()));
}

/// Runs `f` against this thread's sink; a no-op if recording is disabled
/// or the TLS slot is already being destroyed.
fn with_sink(f: impl FnOnce(&mut Sink)) {
    if !is_enabled() {
        return;
    }
    let _ = SINK.try_with(|s| {
        if let Ok(mut holder) = s.try_borrow_mut() {
            f(&mut holder.0);
        }
    });
}

/// The process-wide merged state. Only touched on flush and drain, never
/// on the recording path.
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, (u64, f64)>,
    hists: BTreeMap<&'static str, Hist>,
    /// Per-second counter deltas backing the rolling-window rates.
    win_counters: BTreeMap<&'static str, window::CounterRing>,
    /// Per-second histogram deltas backing the rolling-window percentiles.
    win_hists: BTreeMap<&'static str, window::HistRing>,
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
    flush_seq: u64,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            win_counters: BTreeMap::new(),
            win_hists: BTreeMap::new(),
            spans: Vec::new(),
            dropped_spans: 0,
            flush_seq: 0,
        }
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::new()))
}

/// Adds `delta` to the named counter.
pub fn counter_add(name: &'static str, delta: u64) {
    with_sink(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Adds 1 to the named counter.
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Sets the named gauge to `value` (last write wins; gauges are intended
/// for single-writer use such as "current thread count").
pub fn gauge_set(name: &'static str, value: f64) {
    with_sink(|s| {
        s.gauges.insert(name, value);
    });
}

/// Records one observation into the named histogram. Non-finite values are
/// dropped.
pub fn histogram_record(name: &'static str, value: f64) {
    with_sink(|s| s.hists.entry(name).or_insert_with(Hist::new).record(value));
}

/// A monotonic span timer. Records its elapsed nanoseconds into the
/// histogram it was opened under when dropped, and appends a [`SpanEvent`]
/// — carrying a process-unique id, the id of the innermost span open when
/// it was created (its *parent*), and any typed attributes attached via
/// the `with_*` builders — to the thread's ring buffer.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    id: u64,
    parent: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Elapsed nanoseconds so far (0 when recording is disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0)
    }

    /// This span's process-unique id (0 when recording is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn push_attr(&mut self, key: &'static str, v: AttrValue) {
        if self.start.is_some() && self.attrs.len() < MAX_SPAN_ATTRS {
            self.attrs.push((key, v));
        }
    }

    /// Attaches an unsigned-integer attribute (builder style).
    pub fn with_u64(mut self, key: &'static str, v: u64) -> Span {
        self.push_attr(key, AttrValue::U64(v));
        self
    }

    /// Attaches a signed-integer attribute (builder style).
    pub fn with_i64(mut self, key: &'static str, v: i64) -> Span {
        self.push_attr(key, AttrValue::I64(v));
        self
    }

    /// Attaches a float attribute (builder style).
    pub fn with_f64(mut self, key: &'static str, v: f64) -> Span {
        self.push_attr(key, AttrValue::F64(v));
        self
    }

    /// Attaches a string attribute (builder style).
    pub fn with_str(mut self, key: &'static str, v: &'static str) -> Span {
        self.push_attr(key, AttrValue::Str(v));
        self
    }

    /// Attaches a boolean attribute (builder style).
    pub fn with_bool(mut self, key: &'static str, v: bool) -> Span {
        self.push_attr(key, AttrValue::Bool(v));
        self
    }

    /// Attaches an attribute to an already-bound span.
    pub fn set_u64(&mut self, key: &'static str, v: u64) {
        self.push_attr(key, AttrValue::U64(v));
    }

    /// Attaches a float attribute to an already-bound span.
    pub fn set_f64(&mut self, key: &'static str, v: f64) {
        self.push_attr(key, AttrValue::F64(v));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id != 0 {
            // Always unwind the open-span stack, even if recording was
            // disabled after this span opened — a leaked entry would
            // mis-parent every later span on the thread.
            let id = self.id;
            let _ = SINK.try_with(|s| {
                if let Ok(mut holder) = s.try_borrow_mut() {
                    let open = &mut holder.0.open;
                    if open.last() == Some(&id) {
                        open.pop();
                    } else if let Some(pos) = open.iter().rposition(|&x| x == id) {
                        open.remove(pos);
                    }
                }
            });
        }
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let start_ns = start
            .duration_since(epoch())
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let name = self.name;
        let (id, parent) = (self.id, self.parent);
        let attrs = std::mem::take(&mut self.attrs);
        with_sink(|s| {
            s.hists
                .entry(name)
                .or_insert_with(Hist::new)
                .record(dur_ns as f64);
            let seq = s.seq;
            s.seq += 1;
            s.push_event(SpanEvent {
                name,
                id,
                parent,
                thread: s.thread,
                seq,
                start_ns,
                dur_ns,
                attrs,
            });
        });
    }
}

/// Opens a span timer; by convention the name ends in `.ns` since the
/// recorded histogram holds nanoseconds. The new span's parent is the
/// innermost span currently open on this thread (or the id adopted via
/// [`adopt_parent`] when none is open); attach typed attributes with the
/// `with_*` builders.
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span {
            name,
            start: None,
            id: 0,
            parent: 0,
            attrs: Vec::new(),
        };
    }
    epoch(); // pin the epoch before the span's own start
    let mut id = 0u64;
    let mut parent = 0u64;
    with_sink(|s| {
        s.next_span += 1;
        id = (u64::from(s.thread) << 32) | s.next_span;
        parent = s.open.last().copied().unwrap_or(s.adopted);
        s.open.push(id);
    });
    Span {
        name,
        start: Some(Instant::now()),
        id,
        parent,
        attrs: Vec::new(),
    }
}

/// Allocates a process-unique span id on this thread without opening a
/// span or touching the open-span stack. Pair with [`record_span_with_id`]
/// when a span's id must exist *before* its timing is known — e.g. a
/// request root allocated at arrival so queued stages can parent into it,
/// recorded only once the response is written. Returns 0 when recording is
/// disabled.
pub fn alloc_span_id() -> u64 {
    if !is_enabled() {
        return 0;
    }
    let mut id = 0u64;
    with_sink(|s| {
        s.next_span += 1;
        id = (u64::from(s.thread) << 32) | s.next_span;
    });
    id
}

/// Records a span event with explicit timing under a pre-allocated id
/// (see [`alloc_span_id`]). Unlike a [`span`] guard this records **no
/// histogram** and never touches the open-span stack: it is the
/// materialization path for stages measured as raw timestamps on a hot
/// path (the serving request pipeline) and emitted only while a capture
/// window is open. `start_ns` is nanoseconds since the telemetry epoch
/// ([`trace::now_ns`]); at most [`MAX_SPAN_ATTRS`] attributes are kept.
/// A zero `id` is ignored.
pub fn record_span_with_id(
    id: u64,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    parent: u64,
    attrs: &[(&'static str, AttrValue)],
) {
    if id == 0 {
        return;
    }
    with_sink(|s| {
        let seq = s.seq;
        s.seq += 1;
        s.push_event(SpanEvent {
            name,
            id,
            parent,
            thread: s.thread,
            seq,
            start_ns,
            dur_ns,
            attrs: attrs.iter().take(MAX_SPAN_ATTRS).copied().collect(),
        });
    });
}

/// [`record_span_with_id`] with a freshly allocated id; returns that id so
/// later events can parent into it.
pub fn record_span_at(
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    parent: u64,
    attrs: &[(&'static str, AttrValue)],
) -> u64 {
    let id = alloc_span_id();
    record_span_with_id(id, name, start_ns, dur_ns, parent, attrs);
    id
}

/// Whole seconds since the process telemetry epoch (pinned at the first
/// telemetry call, i.e. effectively process start for instrumented
/// binaries). Surfaced as `uptime_secs` in the `/status` build section.
pub fn uptime_secs() -> u64 {
    epoch().elapsed().as_secs()
}

/// The id of the innermost span currently open on this thread (falling
/// back to the adopted parent, then 0). Capture this before forking work
/// to another thread and hand it to [`adopt_parent`] there, so the
/// worker's spans parent into the caller's timeline.
pub fn current_span_id() -> u64 {
    let mut id = 0;
    with_sink(|s| id = s.open.last().copied().unwrap_or(s.adopted));
    id
}

/// Declares `parent` the default parent for spans opened on this thread
/// while no local span is open. Used by `gmreg-parallel` workers to link
/// their root spans to the fork span on the spawning thread.
pub fn adopt_parent(parent: u64) {
    with_sink(|s| s.adopted = parent);
}

/// Flushes the calling thread's sink into the global registry. Other live
/// threads flush when they exit or call this themselves.
pub fn flush() {
    let _ = SINK.try_with(|s| {
        if let Ok(mut holder) = s.try_borrow_mut() {
            if let Ok(mut reg) = registry().lock() {
                holder.0.drain_into(&mut reg);
            }
        }
    });
}

/// Flushes the calling thread and returns the merged state as a
/// [`Report`], in deterministic drain order: metrics sorted by name, span
/// events by `(thread, sequence)`.
pub fn snapshot() -> Report {
    flush();
    let now_sec = epoch().elapsed().as_secs();
    let reg = registry().lock().expect("telemetry registry poisoned");
    let mut spans = reg.spans.clone();
    spans.sort_by_key(|e| (e.thread, e.seq));
    // Counter windows first, histogram windows second: a name recorded as
    // both (unusual) reports its richer histogram view.
    let mut windows: BTreeMap<String, WindowStats> = reg
        .win_counters
        .iter()
        .map(|(k, r)| (k.to_string(), WindowStats::from_counter(r, now_sec)))
        .collect();
    for (k, r) in &reg.win_hists {
        windows.insert(k.to_string(), WindowStats::from_hist(r, now_sec));
    }
    Report {
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, (_, v))| (k.to_string(), *v))
            .collect(),
        histograms: reg
            .hists
            .iter()
            .map(|(k, h)| (k.to_string(), report::summarize(h)))
            .collect(),
        windows,
        spans,
        dropped_spans: reg.dropped_spans,
    }
}

/// Drops every span event retained in the global registry, leaving
/// counters, gauges, histograms, and windows untouched. `/debug/trace`
/// clears retained spans before opening a capture window so the converted
/// document holds exactly that window.
pub fn clear_spans() {
    if let Ok(mut reg) = registry().lock() {
        reg.spans.clear();
    }
}

/// Clears the global registry and the calling thread's sink. Intended for
/// tests and for benchmarks that emit one report per run.
pub fn reset() {
    let _ = SINK.try_with(|s| {
        if let Ok(mut holder) = s.try_borrow_mut() {
            let sink = &mut holder.0;
            sink.counters.clear();
            sink.gauges.clear();
            sink.hists.clear();
            sink.ring.clear();
            sink.ring_head = 0;
            sink.dropped = 0;
            sink.open.clear();
            sink.adopted = 0;
        }
    });
    if let Ok(mut reg) = registry().lock() {
        *reg = Registry::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is process-wide; tests serialize on this lock
    /// and reset() around their bodies.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        g
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let _g = locked();
        counter_add("t.a", 3);
        counter_inc("t.a");
        counter_inc("t.b");
        let r = snapshot();
        assert_eq!(r.counter("t.a"), 4);
        assert_eq!(r.counter("t.b"), 1);
        assert_eq!(r.counter("t.missing"), 0);
    }

    #[test]
    fn gauges_take_last_value() {
        let _g = locked();
        gauge_set("t.g", 1.5);
        gauge_set("t.g", 2.5);
        let r = snapshot();
        assert_eq!(r.gauge("t.g"), Some(2.5));
        assert_eq!(r.gauge("t.other"), None);
    }

    #[test]
    fn histogram_summary_is_exact() {
        let _g = locked();
        for v in [1.0, 2.0, 3.0, 10.0] {
            histogram_record("t.h", v);
        }
        histogram_record("t.h", f64::NAN); // dropped
        let r = snapshot();
        let h = r.histogram("t.h").expect("recorded");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 16.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.mean(), 4.0);
        let total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn bucket_layout_is_fixed_and_total() {
        // Underflow, a mid-range value, and the overflow clamp.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        // 1.5 lies in [2^0, 2^1): bucket 31 with HIST_MIN_EXP = -30.
        assert_eq!(bucket_index(1.5), 31);
        assert!(bucket_upper_edge(31) >= 1.5);
        // Every finite positive value maps into range.
        for e in -40..50 {
            let v = 2f64.powi(e) * 1.01;
            assert!(bucket_index(v) < HIST_BUCKETS, "exp {e}");
        }
    }

    #[test]
    fn span_records_duration_and_event() {
        let _g = locked();
        {
            let t = span("t.span.ns");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(t.elapsed_ns() > 0);
        }
        let r = snapshot();
        let h = r.histogram("t.span.ns").expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.min >= 1_000_000.0, "slept 2ms, measured {} ns", h.min);
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].name, "t.span.ns");
        assert_eq!(r.spans[0].dur_ns as f64, h.sum);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _g = locked();
        std::thread::scope(|s| {
            // Join each handle explicitly: the sink flush runs in the TLS
            // destructor during thread teardown, and the scope's implicit
            // wait only covers the closure, not teardown. join() blocks
            // until the thread is gone — this is what the pool does too.
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        counter_inc("t.worker.calls");
                        let _t = span("t.worker.ns");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        });
        let r = snapshot();
        assert_eq!(r.counter("t.worker.calls"), 4);
        assert_eq!(r.histogram("t.worker.ns").expect("flushed").count, 4);
        assert_eq!(r.spans.len(), 4);
    }

    #[test]
    fn drain_order_is_deterministic() {
        let _g = locked();
        counter_inc("t.z");
        counter_inc("t.a");
        counter_inc("t.m");
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, ["t.a", "t.m", "t.z"], "sorted by name");
        // spans come back in (thread, seq) order
        {
            let _a = span("t.s1.ns");
        }
        {
            let _b = span("t.s2.ns");
        }
        let r = snapshot();
        let pairs: Vec<(u32, u64)> = r.spans.iter().map(|e| (e.thread, e.seq)).collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = locked();
        for _ in 0..(SPAN_RING_CAP + 10) {
            let _t = span("t.ring.ns");
        }
        let r = snapshot();
        assert_eq!(r.spans.len(), SPAN_RING_CAP);
        assert_eq!(r.dropped_spans, 10);
        // histogram still saw every one
        assert_eq!(
            r.histogram("t.ring.ns").expect("hist").count,
            (SPAN_RING_CAP + 10) as u64
        );
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = locked();
        set_enabled(false);
        counter_inc("t.off");
        gauge_set("t.off.g", 1.0);
        histogram_record("t.off.h", 1.0);
        {
            let t = span("t.off.ns");
            assert_eq!(t.elapsed_ns(), 0);
        }
        set_enabled(true);
        let r = snapshot();
        assert_eq!(r.counter("t.off"), 0);
        assert_eq!(r.gauge("t.off.g"), None);
        assert!(r.histogram("t.off.h").is_none());
        assert!(r.spans.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let _g = locked();
        counter_inc("t.r");
        let _ = snapshot();
        reset();
        let r = snapshot();
        assert_eq!(r.counter("t.r"), 0);
        assert!(r.counters.is_empty());
        assert!(r.spans.is_empty());
    }

    #[test]
    fn json_report_is_well_formed() {
        let _g = locked();
        counter_add("t.json.calls", 7);
        gauge_set("t.json.threads", 4.0);
        histogram_record("t.json.h", 0.5);
        let json = snapshot().to_json();
        for needle in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"spans\"",
            "\"t.json.calls\": 7",
            "\"t.json.threads\": 4",
            "\"count\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets (a cheap structural check without a
        // JSON parser in a zero-dep crate).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn human_render_lists_all_sections() {
        let _g = locked();
        counter_inc("t.render.c");
        gauge_set("t.render.g", 1.25);
        histogram_record("t.render.h", 2.0);
        let text = snapshot().render();
        assert!(text.contains("counters"));
        assert!(text.contains("t.render.c"));
        assert!(text.contains("gauges"));
        assert!(text.contains("histograms"));
        assert!(text.contains("t.render.h"));
    }

    #[test]
    fn spans_nest_into_parent_child_links() {
        let _g = locked();
        let (outer_id, inner_parent, sibling_parent);
        {
            let outer = span("t.outer.ns").with_u64("epoch", 3);
            outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span("t.inner.ns");
                inner_parent = inner.parent;
            }
            {
                let sib = span("t.sibling.ns");
                sibling_parent = sib.parent;
            }
        }
        assert_eq!(inner_parent, outer_id);
        assert_eq!(sibling_parent, outer_id);
        let r = snapshot();
        let outer_ev = r.spans.iter().find(|e| e.name == "t.outer.ns").unwrap();
        let inner_ev = r.spans.iter().find(|e| e.name == "t.inner.ns").unwrap();
        assert_eq!(outer_ev.parent, 0, "outer is a root span");
        assert_eq!(inner_ev.parent, outer_ev.id);
        assert_eq!(outer_ev.attr("epoch"), Some(AttrValue::U64(3)));
    }

    #[test]
    fn adopted_parent_links_cross_thread_spans() {
        let _g = locked();
        let fork = span("t.fork.ns");
        let fork_id = fork.id();
        std::thread::scope(|s| {
            s.spawn(move || {
                adopt_parent(fork_id);
                let w = span("t.worker.root.ns");
                assert_eq!(w.parent, fork_id);
            });
        });
        drop(fork);
        let r = snapshot();
        let w = r
            .spans
            .iter()
            .find(|e| e.name == "t.worker.root.ns")
            .unwrap();
        let f = r.spans.iter().find(|e| e.name == "t.fork.ns").unwrap();
        assert_eq!(w.parent, f.id);
        assert_ne!(w.thread, f.thread);
    }

    #[test]
    fn attr_cap_and_builder_types() {
        let _g = locked();
        {
            let mut sp = span("t.attrs.ns")
                .with_i64("i", -2)
                .with_f64("f", 2.5)
                .with_str("s", "x")
                .with_bool("b", true);
            for _ in 0..(MAX_SPAN_ATTRS * 2) {
                sp.set_u64("overflow", 1);
            }
        }
        let r = snapshot();
        let ev = &r.spans[0];
        assert_eq!(ev.attr("i"), Some(AttrValue::I64(-2)));
        assert_eq!(ev.attr("f"), Some(AttrValue::F64(2.5)));
        assert_eq!(ev.attr("s"), Some(AttrValue::Str("x")));
        assert_eq!(ev.attr("b"), Some(AttrValue::Bool(true)));
        assert!(ev.attrs.len() <= MAX_SPAN_ATTRS, "attr cap enforced");
    }

    #[test]
    fn explicit_timing_spans_record_events_without_histograms() {
        let _g = locked();
        let root = alloc_span_id();
        assert_ne!(root, 0);
        record_span_with_id(root, "t.explicit.root.ns", 100, 50, 0, &[]);
        let child = record_span_at(
            "t.explicit.child.ns",
            110,
            20,
            root,
            &[("k", AttrValue::U64(7))],
        );
        assert_ne!(child, 0);
        assert_ne!(child, root);
        record_span_with_id(0, "t.explicit.ignored.ns", 0, 1, 0, &[]);
        let r = snapshot();
        assert!(
            r.histogram("t.explicit.root.ns").is_none(),
            "explicit spans must not feed histograms"
        );
        let root_ev = r
            .spans
            .iter()
            .find(|e| e.name == "t.explicit.root.ns")
            .unwrap();
        assert_eq!(
            (root_ev.id, root_ev.start_ns, root_ev.dur_ns),
            (root, 100, 50)
        );
        let child_ev = r
            .spans
            .iter()
            .find(|e| e.name == "t.explicit.child.ns")
            .unwrap();
        assert_eq!(child_ev.parent, root);
        assert_eq!(child_ev.attr("k"), Some(AttrValue::U64(7)));
        assert!(
            !r.spans.iter().any(|e| e.name == "t.explicit.ignored.ns"),
            "zero id is ignored"
        );
    }

    #[test]
    fn span_cap_parse_rules() {
        assert_eq!(span_cap_from(None), DEFAULT_GLOBAL_SPAN_CAP);
        assert_eq!(span_cap_from(Some("")), DEFAULT_GLOBAL_SPAN_CAP);
        assert_eq!(span_cap_from(Some("garbage")), DEFAULT_GLOBAL_SPAN_CAP);
        assert_eq!(span_cap_from(Some("0")), DEFAULT_GLOBAL_SPAN_CAP);
        assert_eq!(span_cap_from(Some("500000")), 500_000);
        assert_eq!(span_cap_from(Some(" 64 ")), 64);
    }

    #[test]
    fn ratio_helper() {
        let _g = locked();
        counter_add("t.ratio.num", 2);
        counter_add("t.ratio.den", 100);
        let r = snapshot();
        assert_eq!(r.ratio("t.ratio.num", "t.ratio.den"), Some(0.02));
        assert_eq!(r.ratio("t.ratio.num", "t.ratio.zero"), None);
    }
}

//! Bounded JSONL span journal.
//!
//! When a journal is installed ([`install`]), every span event drained out
//! of a per-thread ring — by an explicit [`crate::flush`], a
//! [`crate::snapshot`], or a thread exiting — is appended to the journal
//! file as one JSON object per line, in drain order. The journal sees
//! events even after the in-memory registry hits its
//! [`crate::global_span_cap`], which is what makes multi-hour runs
//! traceable end to end: memory stays bounded while the timeline streams
//! to disk.
//!
//! The journal itself is bounded too (`max_events`); once the cap is
//! reached further events are counted in [`JournalStats::dropped`] rather
//! than written, so a runaway loop cannot fill the disk.
//!
//! The line format is [`crate::SpanEvent::to_jsonl`]:
//!
//! ```json
//! {"name": "gm.e_step.ns", "id": 4294967297, "parent": 0, "thread": 1,
//!  "seq": 0, "start_ns": 120, "dur_ns": 450, "attrs": {"epoch": 2}}
//! ```
//!
//! Convert a journal to Chrome/Perfetto `trace_event` JSON with
//! [`crate::chrome`] (or the `trace2chrome` binary in `gmreg-bench`) and
//! open it in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::SpanEvent;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default event cap for an installed journal (~150 MB of JSONL at ~150
/// bytes per line).
pub const DEFAULT_JOURNAL_CAP: u64 = 1_000_000;

/// What an uninstalled journal did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalStats {
    /// Path the journal was written to.
    pub path: PathBuf,
    /// Events written.
    pub written: u64,
    /// Events dropped after the cap was reached.
    pub dropped: u64,
}

struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
    max_events: u64,
    written: u64,
    dropped: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Journal>> {
    static SLOT: std::sync::OnceLock<Mutex<Option<Journal>>> = std::sync::OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs a process-wide JSONL journal writing to `path` (truncated if
/// it exists), retaining at most `max_events` events. Replaces any
/// previously installed journal (which is flushed and closed).
pub fn install(path: impl AsRef<Path>, max_events: u64) -> io::Result<()> {
    let path = path.as_ref().to_path_buf();
    let file = File::create(&path)?;
    let journal = Journal {
        path,
        writer: BufWriter::new(file),
        max_events: max_events.max(1),
        written: 0,
        dropped: 0,
    };
    let mut guard = slot().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(mut old) = guard.take() {
        let _ = old.writer.flush();
    }
    *guard = Some(journal);
    ACTIVE.store(true, Ordering::Release);
    Ok(())
}

/// Whether a journal is currently installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Appends one drained event; called from the registry drain path. A
/// no-op without an installed journal (one relaxed atomic load).
pub(crate) fn record(ev: &SpanEvent) {
    if !is_active() {
        return;
    }
    let mut guard = slot().lock().unwrap_or_else(|p| p.into_inner());
    let Some(j) = guard.as_mut() else { return };
    if j.written >= j.max_events {
        j.dropped += 1;
        return;
    }
    let mut line = ev.to_jsonl();
    line.push('\n');
    if j.writer.write_all(line.as_bytes()).is_ok() {
        j.written += 1;
    } else {
        j.dropped += 1;
    }
}

/// Flushes the installed journal's buffered lines to disk (if any).
pub fn sync() {
    let mut guard = slot().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(j) = guard.as_mut() {
        let _ = j.writer.flush();
    }
}

/// Removes the installed journal, flushing it, and reports what it wrote.
/// Returns `None` when no journal was installed. Note this does **not**
/// flush per-thread telemetry sinks — call [`crate::flush`] first so the
/// calling thread's tail of events reaches the journal.
pub fn uninstall() -> Option<JournalStats> {
    let mut guard = slot().lock().unwrap_or_else(|p| p.into_inner());
    let mut j = guard.take()?;
    ACTIVE.store(false, Ordering::Release);
    let _ = j.writer.flush();
    Some(JournalStats {
        path: j.path,
        written: j.written,
        dropped: j.dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrValue;

    fn ev(id: u64, parent: u64) -> SpanEvent {
        SpanEvent {
            name: "j.test.ns",
            id,
            parent,
            thread: 0,
            seq: id,
            start_ns: 10 * id,
            dur_ns: 5,
            attrs: vec![("epoch", AttrValue::U64(3)), ("kind", AttrValue::Str("e"))],
        }
    }

    #[test]
    fn journal_writes_lines_and_enforces_cap() {
        let path = std::env::temp_dir().join(format!(
            "gmreg-journal-test-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        install(&path, 3).unwrap();
        assert!(is_active());
        for i in 1..=5 {
            record(&ev(i, i.saturating_sub(1)));
        }
        let stats = uninstall().expect("journal was installed");
        assert!(!is_active());
        assert_eq!(stats.written, 3);
        assert_eq!(stats.dropped, 2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.contains("\"name\": \"j.test.ns\""));
        assert!(body.contains("\"attrs\": {\"epoch\": 3, \"kind\": \"e\"}"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uninstall_without_install_is_none() {
        // Runs in the same process as the cap test; only assert the
        // no-journal fast path doesn't panic.
        if !is_active() {
            assert!(uninstall().is_none());
            record(&ev(9, 0)); // must be a cheap no-op
        }
    }
}

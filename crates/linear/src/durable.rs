//! Durable, fault-tolerant fitting for [`LogisticRegression`]: epoch
//! checkpoints in the CRC-protected container of [`gmreg_core::durable`],
//! rollback-and-retry when an epoch produces non-finite numbers, and
//! graceful degradation of a guarded GM regularizer to fixed L2 once the
//! retry budget is spent. The linear-model counterpart of the network
//! runtime in `gmreg-nn`.
//!
//! Unlike [`LogisticRegression::fit`], whose shuffling RNG threads through
//! all epochs, the durable fit keys each epoch's shuffle by
//! `seed + 1 + epoch` — the property that makes a resumed run replay the
//! exact batch sequence of an uninterrupted one.

use crate::error::{LinearError, Result};
use crate::logistic::{check_binary, FitStats, LogisticRegression};
use crate::tele;
use gmreg_core::durable::CheckpointManager;
use gmreg_core::gm::{GmSnapshot, GuardConfig, GuardedGmRegularizer};
use gmreg_data::Batcher;
use gmreg_data::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Tuning knobs for [`LogisticRegression::fit_durable`].
#[derive(Debug, Clone, PartialEq)]
pub struct DurableFitConfig {
    /// Write a checkpoint every this many completed epochs (minimum 1).
    pub checkpoint_every: usize,
    /// Checkpoint generations retained (minimum 1).
    pub keep: usize,
    /// Epoch retries allowed before the guarded regularizer (if any) is
    /// forced down to fixed L2.
    pub max_retries: u32,
    /// Guard configuration used when rebuilding the regularizer from a
    /// checkpoint.
    pub guard: GuardConfig,
}

impl Default for DurableFitConfig {
    fn default() -> Self {
        DurableFitConfig {
            checkpoint_every: 1,
            keep: 3,
            max_retries: 3,
            guard: GuardConfig::default(),
        }
    }
}

/// Serializable state of an in-progress durable fit: model, momentum,
/// learning-rate schedule position, counters, and the guarded GM
/// regularizer's mixture (plus its degraded-L2 strength when applicable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearFitState {
    /// The next epoch to run (completed epochs are `0..next_epoch`).
    pub next_epoch: u64,
    /// SGD iterations completed.
    pub iterations: u64,
    /// Learning rate after the completed epochs' decay.
    pub current_lr: f64,
    /// Weight vector.
    pub w: Vec<f32>,
    /// Bias term.
    pub bias: f64,
    /// Weight momentum buffer.
    pub velocity: Vec<f32>,
    /// Bias momentum.
    pub bias_velocity: f64,
    /// Guarded GM mixture state, if the model carries a guarded GM
    /// regularizer.
    pub gm: Option<GmSnapshot>,
    /// Degraded-L2 strength, if the guard had already degraded.
    pub degraded_beta: Option<f64>,
}

impl LogisticRegression {
    fn capture_fit_state(&self, next_epoch: u64, iterations: u64) -> LinearFitState {
        let guard = self.regularizer.as_deref().and_then(|r| r.as_guard());
        LinearFitState {
            next_epoch,
            iterations,
            current_lr: self.current_lr as f64,
            w: self.w.clone(),
            bias: self.bias as f64,
            velocity: self.velocity.clone(),
            bias_velocity: self.bias_velocity as f64,
            gm: guard.map(|g| g.snapshot()),
            degraded_beta: guard.and_then(|g| g.degraded_beta()),
        }
    }

    fn restore_fit_state(&mut self, state: &LinearFitState, guard: &GuardConfig) -> Result<()> {
        if state.w.len() != self.w.len() || state.velocity.len() != self.velocity.len() {
            return Err(LinearError::DimensionMismatch {
                expected: self.w.len(),
                actual: state.w.len(),
            });
        }
        self.w.copy_from_slice(&state.w);
        self.velocity.copy_from_slice(&state.velocity);
        self.bias = state.bias as f32;
        self.bias_velocity = state.bias_velocity as f32;
        self.current_lr = state.current_lr as f32;
        if let Some(snap) = &state.gm {
            let rebuilt = match state.degraded_beta {
                Some(beta) => GuardedGmRegularizer::degraded_from(snap, beta, guard.clone())?,
                None => GuardedGmRegularizer::from_snapshot(snap, guard.clone())?,
            };
            self.regularizer = Some(Box::new(rebuilt));
        }
        Ok(())
    }

    /// [`LogisticRegression::fit`] with durable checkpoints and recovery.
    ///
    /// Checkpoints are written to `dir` (created if missing) after every
    /// [`DurableFitConfig::checkpoint_every`] epochs; if `dir` already
    /// holds a valid generation, fitting *resumes* from it — weights,
    /// momentum, learning-rate position and regularizer state are all
    /// restored, so an interrupted fit completes with the same result as
    /// an uninterrupted one (up to the documented JSON float round-trip
    /// tolerance). An epoch that yields a non-finite loss or non-finite
    /// weights is rolled back and retried; after
    /// [`DurableFitConfig::max_retries`] failures a guarded GM regularizer
    /// is degraded to fixed L2, and if epochs *still* fail the fit returns
    /// an error value — it never aborts the process.
    pub fn fit_durable(
        &mut self,
        ds: &Dataset,
        dir: impl AsRef<Path>,
        cfg: &DurableFitConfig,
    ) -> Result<FitStats> {
        tele::counter_inc("linear.logistic.fit_durable.calls");
        check_binary(ds)?;
        if ds.n_features() != self.w.len() {
            return Err(LinearError::DimensionMismatch {
                expected: self.w.len(),
                actual: ds.n_features(),
            });
        }
        if cfg.checkpoint_every == 0 {
            return Err(LinearError::InvalidConfig {
                field: "checkpoint_every",
                reason: "must be at least 1".into(),
            });
        }
        let ckpt = CheckpointManager::new(dir.as_ref(), "linfit", cfg.keep.max(1))?;

        let mut epoch: u64 = 0;
        let mut it: u64 = 0;
        self.current_lr = self.config().lr;
        match ckpt.load_latest::<LinearFitState>()? {
            Some((_, state)) => {
                self.restore_fit_state(&state, &cfg.guard)?;
                epoch = state.next_epoch;
                it = state.iterations;
                tele::counter_inc("linear.logistic.fit_durable.resumes");
            }
            None => {
                ckpt.save(&self.capture_fit_state(0, 0))?;
            }
        }

        let epochs = self.config().epochs as u64;
        let eff_scale = if self.config().scale_reg_by_n {
            self.config().reg_scale / ds.len() as f32
        } else {
            self.config().reg_scale
        };
        let base_seed = self.config().seed.wrapping_add(1);
        let lr_decay = self.config().lr_decay;
        let batch_size = self.config().batch_size;

        let mut final_loss = f64::INFINITY;
        let mut final_acc = 0.0;
        let mut retries = 0u32;
        let mut exhausted = false;
        while epoch < epochs {
            let mut _epoch_span =
                tele::span("linear.fit_durable.epoch.ns").with_u64("epoch", epoch);
            let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(epoch));
            let batcher = Batcher::new(ds, batch_size, &mut rng)?;
            let mut epoch_loss = 0.0;
            let mut epoch_hits = 0usize;
            let mut epoch_it = it;
            let mut poisoned = false;
            for b in batcher.iter(ds) {
                let batch = b?;
                let (loss, hits) = self.step(&batch.x, &batch.y, epoch_it, epoch, eff_scale)?;
                epoch_it += 1;
                if !loss.is_finite() {
                    poisoned = true;
                    break;
                }
                epoch_loss += loss;
                epoch_hits += hits;
            }
            let healthy = !poisoned && self.w.iter().all(|v| v.is_finite());
            if healthy {
                if let Some(r) = self.regularizer.as_mut() {
                    r.end_epoch();
                }
                self.current_lr *= lr_decay;
                final_loss = epoch_loss / batcher.n_batches() as f64;
                final_acc = epoch_hits as f64 / ds.len() as f64;
                it = epoch_it;
                epoch += 1;
                tele::gauge_set("runtime.epoch", epoch as f64);
                tele::gauge_set("runtime.loss", final_loss);
                if epoch % cfg.checkpoint_every as u64 == 0 || epoch == epochs {
                    ckpt.save(&self.capture_fit_state(epoch, it))?;
                }
                drop(_epoch_span);
                // Per-epoch drain keeps a live /metrics scrape and the trace
                // journal current while the fit is still running.
                tele::flush();
                continue;
            }

            _epoch_span.set_u64("failed", 1);
            tele::counter_inc("linear.logistic.fit_durable.rollbacks");
            if exhausted {
                return Err(LinearError::InvalidConfig {
                    field: "fit_durable",
                    reason: format!(
                        "epoch {epoch} still produces non-finite numbers after L2 degradation"
                    ),
                });
            }
            let Some((_, state)) = ckpt.load_latest::<LinearFitState>()? else {
                return Err(LinearError::InvalidConfig {
                    field: "fit_durable",
                    reason: "no checkpoint to roll back to".into(),
                });
            };
            self.restore_fit_state(&state, &cfg.guard)?;
            epoch = state.next_epoch;
            it = state.iterations;
            retries += 1;
            if retries > cfg.max_retries {
                if let Some(g) = self.regularizer.as_mut().and_then(|r| r.as_guard_mut()) {
                    g.force_degrade("durable fit retry budget exhausted");
                }
                exhausted = true;
            }
        }
        Ok(FitStats {
            final_loss,
            final_accuracy: final_acc,
            iterations: it,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::{blobs, LrConfig};
    use gmreg_core::gm::{GmConfig, GmRegularizer};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gmreg-linfit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn guarded_model(m: usize, epochs: usize) -> LogisticRegression {
        let cfg = LrConfig {
            epochs,
            batch_size: 16,
            ..LrConfig::default()
        };
        let mut lr = LogisticRegression::new(m, cfg).unwrap();
        let inner = GmRegularizer::new(
            m,
            0.1,
            GmConfig {
                min_precision: Some(10.0),
                ..GmConfig::default()
            },
        )
        .unwrap();
        lr.set_regularizer(Some(Box::new(GuardedGmRegularizer::new(
            inner,
            GuardConfig::default(),
        ))));
        lr
    }

    #[test]
    fn durable_fit_trains_and_checkpoints() {
        let dir = temp_dir("train");
        let ds = blobs(120, 6, 1.5, 3).unwrap();
        let mut lr = guarded_model(6, 6);
        let stats = lr
            .fit_durable(&ds, &dir, &DurableFitConfig::default())
            .unwrap();
        assert!(stats.final_accuracy > 0.85, "{stats:?}");
        assert!(stats.final_loss.is_finite());
        // Retention keeps the newest three generations only.
        let n = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(n, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_fit_matches_uninterrupted_fit() {
        let ds = blobs(120, 6, 1.5, 3).unwrap();
        let cfg = DurableFitConfig::default();

        let dir_a = temp_dir("ref");
        let mut full = guarded_model(6, 6);
        let stats_a = full.fit_durable(&ds, &dir_a, &cfg).unwrap();

        // Run 4 epochs, then a fresh model resumes the directory for the
        // remaining 2.
        let dir_b = temp_dir("resume");
        let mut part = guarded_model(6, 4);
        part.fit_durable(&ds, &dir_b, &cfg).unwrap();
        let mut rest = guarded_model(6, 6);
        let stats_b = rest.fit_durable(&ds, &dir_b, &cfg).unwrap();

        assert_eq!(stats_a.iterations, stats_b.iterations);
        // Documented resume tolerance: checkpoint floats travel through
        // JSON, which may round by 1 ULP per value.
        for (i, (a, b)) in full.weights().iter().zip(rest.weights()).enumerate() {
            assert!((a - b).abs() < 1e-5, "weight {i}: {a} vs {b}");
        }
        assert!((full.bias() - rest.bias()).abs() < 1e-5);
        assert!((stats_a.final_loss - stats_b.final_loss).abs() < 1e-6);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn dimension_mismatch_and_bad_config_are_errors() {
        let dir = temp_dir("bad");
        let ds = blobs(32, 4, 1.0, 5).unwrap();
        let mut lr = guarded_model(6, 2);
        assert!(lr
            .fit_durable(&ds, &dir, &DurableFitConfig::default())
            .is_err());
        let bad = DurableFitConfig {
            checkpoint_every: 0,
            ..DurableFitConfig::default()
        };
        let ds6 = blobs(32, 6, 1.0, 5).unwrap();
        assert!(lr.fit_durable(&ds6, &dir, &bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

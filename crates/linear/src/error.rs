//! Error type for the linear-model crate.

use std::fmt;

/// Errors raised while configuring or training linear models.
#[derive(Debug, Clone, PartialEq)]
pub enum LinearError {
    /// A configuration value is invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
    /// Feature dimensionality mismatch between model and data.
    DimensionMismatch {
        /// Features the model was built for.
        expected: usize,
        /// Features supplied.
        actual: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(gmreg_tensor::TensorError),
    /// A regularizer error bubbled up from `gmreg-core`.
    Core(gmreg_core::CoreError),
    /// A dataset error bubbled up from `gmreg-data`.
    Data(gmreg_data::DataError),
}

impl fmt::Display for LinearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            LinearError::DimensionMismatch { expected, actual } => {
                write!(f, "model expects {expected} features, got {actual}")
            }
            LinearError::Tensor(e) => write!(f, "tensor error: {e}"),
            LinearError::Core(e) => write!(f, "regularizer error: {e}"),
            LinearError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for LinearError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LinearError::Tensor(e) => Some(e),
            LinearError::Core(e) => Some(e),
            LinearError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gmreg_tensor::TensorError> for LinearError {
    fn from(e: gmreg_tensor::TensorError) -> Self {
        LinearError::Tensor(e)
    }
}

impl From<gmreg_core::CoreError> for LinearError {
    fn from(e: gmreg_core::CoreError) -> Self {
        LinearError::Core(e)
    }
}

impl From<gmreg_data::DataError> for LinearError {
    fn from(e: gmreg_data::DataError) -> Self {
        LinearError::Data(e)
    }
}

/// Convenience alias used across the linear crate.
pub type Result<T> = std::result::Result<T, LinearError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LinearError::InvalidConfig {
            field: "lr",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("lr"));
        let e = LinearError::DimensionMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains('4'));
        let e: LinearError = gmreg_data::DataError::NotEnoughSamples {
            needed: 1,
            available: 0,
        }
        .into();
        use std::error::Error as _;
        assert!(e.source().is_some());
        let e: LinearError = gmreg_tensor::TensorError::Empty { op: "x" }.into();
        assert!(e.to_string().contains("tensor"));
        let e: LinearError = gmreg_core::CoreError::DimensionMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("regularizer"));
    }
}

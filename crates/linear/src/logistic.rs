//! Binary logistic regression trained by mini-batch SGD — the model behind
//! the paper's small-dataset comparison (Table VII).

use crate::error::{LinearError, Result};
use crate::tele;
use gmreg_core::{Regularizer, StepCtx};
use gmreg_data::{Batcher, Dataset};
use gmreg_tensor::{SampleExt, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Training configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative per-epoch learning-rate decay (1.0 = constant).
    pub lr_decay: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Standard deviation of the zero-mean Gaussian weight initialization.
    /// The paper initializes with precision 100, i.e. std 0.1.
    pub init_std: f64,
    /// RNG seed for initialization and batch shuffling.
    pub seed: u64,
    /// Factor applied to the regularization gradient before it joins the
    /// data gradient (Eq. 10 defines `g_ll` as a sum over the training set
    /// while this trainer steps on mean batch losses; `1.0` applies the
    /// penalty at full strength, `1/N` restores the MAP proportion).
    pub reg_scale: f32,
    /// When true, the effective regularization scale becomes
    /// `reg_scale / n_train` at fit time — the MAP convention under a
    /// mean data loss. The hyper-parameter grids in `gridsearch` assume
    /// this convention.
    pub scale_reg_by_n: bool,
}

impl Default for LrConfig {
    fn default() -> Self {
        LrConfig {
            epochs: 60,
            batch_size: 32,
            lr: 0.1,
            lr_decay: 0.92,
            momentum: 0.9,
            init_std: 0.1,
            seed: 17,
            reg_scale: 1.0,
            scale_reg_by_n: true,
        }
    }
}

impl LrConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(LinearError::InvalidConfig {
                field: "epochs/batch_size",
                reason: "must be positive".into(),
            });
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(LinearError::InvalidConfig {
                field: "lr",
                reason: format!("must be positive and finite, got {}", self.lr),
            });
        }
        if !(self.lr_decay.is_finite() && self.lr_decay > 0.0 && self.lr_decay <= 1.0) {
            return Err(LinearError::InvalidConfig {
                field: "lr_decay",
                reason: format!("must lie in (0, 1], got {}", self.lr_decay),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(LinearError::InvalidConfig {
                field: "momentum",
                reason: format!("must lie in [0, 1), got {}", self.momentum),
            });
        }
        if !(self.reg_scale.is_finite() && self.reg_scale >= 0.0) {
            return Err(LinearError::InvalidConfig {
                field: "reg_scale",
                reason: format!("must be non-negative and finite, got {}", self.reg_scale),
            });
        }
        if !(self.init_std.is_finite() && self.init_std > 0.0) {
            return Err(LinearError::InvalidConfig {
                field: "init_std",
                reason: format!("must be positive and finite, got {}", self.init_std),
            });
        }
        Ok(())
    }
}

/// A binary logistic-regression classifier with an optional regularizer on
/// its weight vector (the bias is never regularized).
pub struct LogisticRegression {
    pub(crate) w: Vec<f32>,
    pub(crate) bias: f32,
    pub(crate) velocity: Vec<f32>,
    pub(crate) bias_velocity: f32,
    pub(crate) grad: Vec<f32>,
    reg_scratch: Vec<f32>,
    pub(crate) current_lr: f32,
    config: LrConfig,
    pub(crate) regularizer: Option<Box<dyn Regularizer>>,
}

/// Summary of a completed fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitStats {
    /// Mean data-misfit loss of the final epoch.
    pub final_loss: f64,
    /// Training accuracy of the final epoch.
    pub final_accuracy: f64,
    /// Total SGD iterations performed.
    pub iterations: u64,
}

impl LogisticRegression {
    /// Creates an untrained model for `m` features.
    pub fn new(m: usize, config: LrConfig) -> Result<Self> {
        config.validate()?;
        if m == 0 {
            return Err(LinearError::InvalidConfig {
                field: "m",
                reason: "need at least one feature".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let w = (0..m)
            .map(|_| rng.normal(0.0, config.init_std) as f32)
            .collect();
        Ok(LogisticRegression {
            velocity: vec![0.0; m],
            bias_velocity: 0.0,
            grad: vec![0.0; m],
            reg_scratch: vec![0.0; m],
            current_lr: config.lr,
            w,
            bias: 0.0,
            config,
            regularizer: None,
        })
    }

    /// Attaches (or clears) the weight regularizer.
    pub fn set_regularizer(&mut self, reg: Option<Box<dyn Regularizer>>) {
        self.regularizer = reg;
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    /// The bias term.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// The attached regularizer, if any.
    pub fn regularizer(&self) -> Option<&dyn Regularizer> {
        self.regularizer.as_deref()
    }

    /// The training configuration.
    pub fn config(&self) -> &LrConfig {
        &self.config
    }

    /// `P(y = 1 | x)` for one sample.
    pub fn predict_proba(&self, x: &[f32]) -> Result<f64> {
        if x.len() != self.w.len() {
            return Err(LinearError::DimensionMismatch {
                expected: self.w.len(),
                actual: x.len(),
            });
        }
        let z: f64 = self
            .w
            .iter()
            .zip(x)
            .map(|(&w, &xv)| (w * xv) as f64)
            .sum::<f64>()
            + self.bias as f64;
        Ok(sigmoid(z))
    }

    /// Hard prediction for one sample.
    pub fn predict(&self, x: &[f32]) -> Result<usize> {
        Ok(usize::from(self.predict_proba(x)? > 0.5))
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, ds: &Dataset) -> Result<f64> {
        check_binary(ds)?;
        let mut hits = 0usize;
        for i in 0..ds.len() {
            if self.predict(ds.sample(i)?)? == ds.y()[i] {
                hits += 1;
            }
        }
        Ok(hits as f64 / ds.len().max(1) as f64)
    }

    /// Trains with mini-batch SGD + momentum, driving the attached
    /// regularizer once per step with the iteration/epoch counters that
    /// feed the GM lazy schedule.
    pub fn fit(&mut self, ds: &Dataset) -> Result<FitStats> {
        tele::counter_inc("linear.logistic.fit.calls");
        let _t = tele::span("linear.logistic.fit.ns");
        check_binary(ds)?;
        if ds.n_features() != self.w.len() {
            return Err(LinearError::DimensionMismatch {
                expected: self.w.len(),
                actual: ds.n_features(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let eff_scale = if self.config.scale_reg_by_n {
            self.config.reg_scale / ds.len() as f32
        } else {
            self.config.reg_scale
        };
        let mut it: u64 = 0;
        let mut final_loss = f64::INFINITY;
        let mut final_acc = 0.0;
        self.current_lr = self.config.lr;
        for epoch in 0..self.config.epochs {
            let batcher = Batcher::new(ds, self.config.batch_size, &mut rng)?;
            let mut epoch_loss = 0.0;
            let mut epoch_hits = 0usize;
            for b in batcher.iter(ds) {
                let batch = b?;
                let (loss, hits) = self.step(&batch.x, &batch.y, it, epoch as u64, eff_scale)?;
                epoch_loss += loss;
                epoch_hits += hits;
                it += 1;
                tele::counter_inc("linear.logistic.iterations");
            }
            if let Some(r) = self.regularizer.as_mut() {
                r.end_epoch();
            }
            self.current_lr *= self.config.lr_decay;
            final_loss = epoch_loss / batcher.n_batches() as f64;
            final_acc = epoch_hits as f64 / ds.len() as f64;
            // Publish per-epoch progress so a live /metrics or /status
            // scrape sees the current epoch, not the last finished fit.
            tele::gauge_set("runtime.epoch", (epoch + 1) as f64);
            tele::gauge_set("runtime.loss", final_loss);
            tele::flush();
        }
        Ok(FitStats {
            final_loss,
            final_accuracy: final_acc,
            iterations: it,
        })
    }

    /// One SGD step on a batch. Returns (mean loss, correct predictions).
    pub(crate) fn step(
        &mut self,
        x: &Tensor,
        y: &[usize],
        it: u64,
        epoch: u64,
        eff_scale: f32,
    ) -> Result<(f64, usize)> {
        let n = y.len();
        let m = self.w.len();
        let xs = x.as_slice();
        self.grad.fill(0.0);
        let mut bias_grad = 0.0f32;
        let mut loss = 0.0f64;
        let mut hits = 0usize;
        for (i, &label) in y.iter().enumerate() {
            let row = &xs[i * m..(i + 1) * m];
            let z: f64 = self
                .w
                .iter()
                .zip(row)
                .map(|(&w, &xv)| (w * xv) as f64)
                .sum::<f64>()
                + self.bias as f64;
            let p = sigmoid(z);
            let t = label as f64;
            loss -= (if label == 1 { p } else { 1.0 - p }).max(1e-15).ln();
            hits += usize::from((p > 0.5) == (label == 1));
            let err = ((p - t) / n as f64) as f32;
            for (g, &xv) in self.grad.iter_mut().zip(row) {
                *g += err * xv;
            }
            bias_grad += err;
        }

        if let Some(reg) = self.regularizer.as_mut() {
            let scale = eff_scale;
            if scale == 1.0 {
                reg.accumulate_grad(&self.w, &mut self.grad, StepCtx::new(it, epoch));
            } else {
                self.reg_scratch.fill(0.0);
                reg.accumulate_grad(&self.w, &mut self.reg_scratch, StepCtx::new(it, epoch));
                for (g, &r) in self.grad.iter_mut().zip(&self.reg_scratch) {
                    *g += scale * r;
                }
            }
        }

        let (lr, mu) = (self.current_lr, self.config.momentum);
        for i in 0..m {
            self.velocity[i] = mu * self.velocity[i] - lr * self.grad[i];
            self.w[i] += self.velocity[i];
        }
        self.bias_velocity = mu * self.bias_velocity - lr * bias_grad;
        self.bias += self.bias_velocity;
        Ok((loss / n as f64, hits))
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

pub(crate) fn check_binary(ds: &Dataset) -> Result<()> {
    if ds.n_classes() != 2 {
        return Err(LinearError::InvalidConfig {
            field: "dataset",
            reason: format!(
                "logistic regression is binary; dataset has {} classes",
                ds.n_classes()
            ),
        });
    }
    if ds.is_empty() {
        return Err(LinearError::InvalidConfig {
            field: "dataset",
            reason: "dataset is empty".into(),
        });
    }
    Ok(())
}

/// Deterministic helper: builds a separable two-Gaussian dataset for tests
/// and examples.
pub fn blobs(n: usize, m: usize, sep: f64, seed: u64) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * m);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let c = if label == 0 { -sep } else { sep };
        for j in 0..m {
            // only the first half of the features carry signal
            let mean = if j < m.div_ceil(2) { c } else { 0.0 };
            data.push(rng.normal(mean, 1.0) as f32);
        }
        y.push(label);
    }
    Ok(Dataset::new(Tensor::from_vec(data, [n, m])?, y, 2)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmreg_core::gm::{GmConfig, GmRegularizer};
    use gmreg_core::{L2Reg, NoReg};

    #[test]
    fn learns_separable_blobs() {
        let ds = blobs(400, 6, 1.5, 3).unwrap();
        let mut lr = LogisticRegression::new(6, LrConfig::default()).unwrap();
        let stats = lr.fit(&ds).unwrap();
        assert!(stats.final_accuracy > 0.9, "{stats:?}");
        assert!(stats.final_loss < 0.3, "{stats:?}");
        let test = blobs(200, 6, 1.5, 99).unwrap();
        assert!(lr.accuracy(&test).unwrap() > 0.9);
        assert_eq!(stats.iterations, 60 * 400usize.div_ceil(32) as u64);
    }

    #[test]
    fn sigmoid_is_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Single step with lr so small the params barely move; compare the
        // analytic gradient against numeric differentiation of the loss.
        let ds = blobs(16, 4, 1.0, 5).unwrap();
        let cfg = LrConfig {
            epochs: 1,
            batch_size: 16,
            lr: 1e-6,
            momentum: 0.0,
            ..LrConfig::default()
        };
        let mut lr = LogisticRegression::new(4, cfg).unwrap();
        let w0 = lr.w.clone();
        let loss_at = |w: &[f32], b: f32| -> f64 {
            let mut acc = 0.0;
            for i in 0..ds.len() {
                let row = ds.sample(i).unwrap();
                let z: f64 = w
                    .iter()
                    .zip(row)
                    .map(|(&wv, &xv)| (wv * xv) as f64)
                    .sum::<f64>()
                    + b as f64;
                let p = sigmoid(z);
                acc -= (if ds.y()[i] == 1 { p } else { 1.0 - p }).max(1e-15).ln();
            }
            acc / ds.len() as f64
        };
        lr.fit(&ds).unwrap();
        // grad buffer now holds the last computed gradient
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut wp = w0.clone();
            wp[i] += eps;
            let mut wm = w0.clone();
            wm[i] -= eps;
            let num = (loss_at(&wp, 0.0) - loss_at(&wm, 0.0)) / (2.0 * eps as f64);
            let got = lr.grad[i] as f64;
            assert!((num - got).abs() < 1e-3, "dim {i}: {num} vs {got}");
        }
    }

    #[test]
    fn regularizer_hooks_run() {
        let ds = blobs(64, 8, 1.0, 7).unwrap();
        let cfg = LrConfig {
            epochs: 3,
            ..LrConfig::default()
        };
        let mut lr = LogisticRegression::new(8, cfg).unwrap();
        let gm = GmRegularizer::new(
            8,
            0.1,
            GmConfig {
                min_precision: Some(10.0),
                ..GmConfig::default()
            },
        )
        .unwrap();
        lr.set_regularizer(Some(Box::new(gm)));
        lr.fit(&ds).unwrap();
        let reg = lr.regularizer().unwrap();
        let gm = reg.as_gm().unwrap();
        assert_eq!(gm.grad_call_count(), 3 * 2);
        assert!(gm.e_step_count() > 0);
        assert!(gm.m_step_count() > 0);
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = blobs(200, 10, 1.0, 11).unwrap();
        let run = |reg: Option<Box<dyn Regularizer>>| -> f32 {
            let mut lr = LogisticRegression::new(10, LrConfig::default()).unwrap();
            lr.set_regularizer(reg);
            lr.fit(&ds).unwrap();
            lr.weights().iter().map(|w| w * w).sum()
        };
        let plain = run(Some(Box::new(NoReg)));
        // the default config scales the penalty by 1/N, so use a strength
        // that is meaningful after that scaling
        let l2 = run(Some(Box::new(L2Reg::new(100.0).unwrap())));
        assert!(l2 < 0.5 * plain, "{l2} vs {plain}");
    }

    #[test]
    fn validation() {
        assert!(LogisticRegression::new(0, LrConfig::default()).is_err());
        let bad = LrConfig {
            epochs: 0,
            ..LrConfig::default()
        };
        assert!(LogisticRegression::new(3, bad).is_err());
        let bad = LrConfig {
            lr: 0.0,
            ..LrConfig::default()
        };
        assert!(LogisticRegression::new(3, bad).is_err());
        let bad = LrConfig {
            momentum: 1.0,
            ..LrConfig::default()
        };
        assert!(LogisticRegression::new(3, bad).is_err());
        let bad = LrConfig {
            init_std: 0.0,
            ..LrConfig::default()
        };
        assert!(LogisticRegression::new(3, bad).is_err());

        let lr = LogisticRegression::new(3, LrConfig::default()).unwrap();
        assert!(lr.predict_proba(&[1.0, 2.0]).is_err());
        let ds3 = Dataset::new(Tensor::zeros([2, 3]), vec![0, 2], 3).unwrap();
        assert!(lr.accuracy(&ds3).is_err());
        let mut lr = LogisticRegression::new(4, LrConfig::default()).unwrap();
        let ds = blobs(8, 3, 1.0, 0).unwrap();
        assert!(lr.fit(&ds).is_err(), "feature mismatch");
    }

    #[test]
    fn predictions_are_consistent_with_probabilities() {
        let ds = blobs(100, 4, 2.0, 13).unwrap();
        let mut lr = LogisticRegression::new(4, LrConfig::default()).unwrap();
        lr.fit(&ds).unwrap();
        for i in 0..10 {
            let x = ds.sample(i).unwrap();
            let p = lr.predict_proba(x).unwrap();
            assert_eq!(lr.predict(x).unwrap(), usize::from(p > 0.5));
            assert!((0.0..=1.0).contains(&p));
        }
    }
}

//! # gmreg-linear
//!
//! Binary logistic regression with pluggable regularizers and the paper's
//! small-dataset evaluation protocol (Section V-C / Table VII):
//!
//! * [`LogisticRegression`] — mini-batch SGD + momentum, driving any
//!   [`gmreg_core::Regularizer`] (including the adaptive GM) once per step;
//! * [`default_grid`] / [`grid_search_cv`] — per-method hyper-parameter
//!   grids and stratified k-fold cross-validation;
//! * [`evaluate_method`] — the full protocol: 5 stratified 80/20
//!   subsamples, CV-tuned hyper-parameters, mean ± standard error;
//! * [`SoftmaxRegression`] — the multiclass extension with the same
//!   pluggable-regularizer design;
//! * [`LogisticRegression::fit_durable`] — fitting with durable
//!   checkpoints, rollback-and-retry recovery and graceful L2 degradation.

#![warn(missing_docs)]

mod durable;
mod error;
mod gridsearch;
mod logistic;
mod softmax;
mod tele;

pub use durable::{DurableFitConfig, LinearFitState};
pub use error::{LinearError, Result};
pub use gridsearch::{
    default_grid, evaluate_method, grid_search_cv, Method, MethodResult, RegChoice, BETA_GRID,
};
pub use logistic::{blobs, FitStats, LogisticRegression, LrConfig};
pub use softmax::SoftmaxRegression;

//! Regularizer hyper-parameter grids and the paper's cross-validated
//! evaluation protocol (Section V-C): per subsample, pick each method's
//! best setting by k-fold CV on the training side, retrain, and report
//! test accuracy mean ± standard error over subsamples.

use crate::error::{LinearError, Result};
use crate::logistic::{LogisticRegression, LrConfig};
use gmreg_core::gm::GmConfig;
use gmreg_core::{ElasticNetReg, HuberReg, L1Reg, L2Reg, Regularizer};
use gmreg_data::{stratified_kfold, stratified_split, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The regularization methods compared in Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// No penalty.
    None,
    /// L1-norm (lasso).
    L1,
    /// L2-norm (ridge / weight decay).
    L2,
    /// Elastic-net.
    ElasticNet,
    /// Huber-norm.
    Huber,
    /// The paper's adaptive GM regularization.
    Gm,
}

impl Method {
    /// The five compared methods, in Table VII column order.
    pub const TABLE_VII: [Method; 5] = [
        Method::L1,
        Method::L2,
        Method::ElasticNet,
        Method::Huber,
        Method::Gm,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::None => "none",
            Method::L1 => "L1 Reg",
            Method::L2 => "L2 Reg",
            Method::ElasticNet => "Elastic-net Reg",
            Method::Huber => "Huber Reg",
            Method::Gm => "GM Reg",
        }
    }
}

/// One concrete regularizer setting inside a method's grid.
#[derive(Debug, Clone, PartialEq)]
pub enum RegChoice {
    /// No penalty.
    None,
    /// L1 with strength β.
    L1 {
        /// Strength β.
        beta: f64,
    },
    /// L2 with strength β.
    L2 {
        /// Strength β.
        beta: f64,
    },
    /// Elastic-net with strength β and mixing ratio ρ.
    ElasticNet {
        /// Strength β.
        beta: f64,
        /// L1 proportion ρ.
        l1_ratio: f64,
    },
    /// Huber with strength β and threshold μ.
    Huber {
        /// Strength β.
        beta: f64,
        /// L2→L1 threshold μ.
        mu: f64,
    },
    /// GM regularization with a full [`GmConfig`].
    Gm {
        /// The GM hyper-parameters.
        config: GmConfig,
    },
}

impl RegChoice {
    /// Builds the regularizer for a weight vector of `m` dimensions whose
    /// initialization standard deviation is `init_std`.
    pub fn build(&self, m: usize, init_std: f64) -> Result<Option<Box<dyn Regularizer>>> {
        Ok(match self {
            RegChoice::None => None,
            RegChoice::L1 { beta } => Some(Box::new(L1Reg::new(*beta)?)),
            RegChoice::L2 { beta } => Some(Box::new(L2Reg::new(*beta)?)),
            RegChoice::ElasticNet { beta, l1_ratio } => {
                Some(Box::new(ElasticNetReg::new(*beta, *l1_ratio)?))
            }
            RegChoice::Huber { beta, mu } => Some(Box::new(HuberReg::new(*beta, *mu)?)),
            RegChoice::Gm { config } => Some(Box::new(gmreg_core::gm::GmRegularizer::new(
                m,
                init_std,
                config.clone(),
            )?)),
        })
    }

    /// Which method this choice belongs to.
    pub fn method(&self) -> Method {
        match self {
            RegChoice::None => Method::None,
            RegChoice::L1 { .. } => Method::L1,
            RegChoice::L2 { .. } => Method::L2,
            RegChoice::ElasticNet { .. } => Method::ElasticNet,
            RegChoice::Huber { .. } => Method::Huber,
            RegChoice::Gm { .. } => Method::Gm,
        }
    }
}

/// Strength grid shared by the norm-based baselines. The values are in
/// MAP units (the penalty is scaled by `1/N` at fit time, see
/// [`LrConfig::scale_reg_by_n`]): an effective per-step weight decay of
/// roughly `β/N`.
pub const BETA_GRID: [f64; 6] = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

/// The default hyper-parameter grid for each method.
///
/// The GM grid follows the paper's recipe: γ over (a subset of) the
/// published γ grid, `a = 1 + 10⁻²·b`, `α = M^0.5`, K = 4, linear init —
/// the dataset-independent "easy setting" of Section V-B1.
pub fn default_grid(method: Method) -> Vec<RegChoice> {
    match method {
        Method::None => vec![RegChoice::None],
        Method::L1 => BETA_GRID
            .iter()
            .map(|&beta| RegChoice::L1 { beta })
            .collect(),
        Method::L2 => BETA_GRID
            .iter()
            .map(|&beta| RegChoice::L2 { beta })
            .collect(),
        Method::ElasticNet => {
            let mut out = Vec::new();
            for &beta in &BETA_GRID {
                for &l1_ratio in &[0.15, 0.5, 0.85] {
                    out.push(RegChoice::ElasticNet { beta, l1_ratio });
                }
            }
            out
        }
        Method::Huber => {
            let mut out = Vec::new();
            for &beta in &BETA_GRID {
                for &mu in &[0.01, 0.1, 1.0] {
                    out.push(RegChoice::Huber { beta, mu });
                }
            }
            out
        }
        Method::Gm => {
            // The paper's gamma grid targets DL-scale M (tens of thousands
            // of weights); small tabular M needs the cap lambda_max ~ 1/(2*gamma)
            // to reach lower values, so the grid extends one decade up.
            let mut gammas = gmreg_core::gm::GAMMA_GRID.to_vec();
            gammas.extend([0.1, 0.2]);
            gammas
                .into_iter()
                .map(|gamma| RegChoice::Gm {
                    config: GmConfig {
                        gamma,
                        ..GmConfig::default()
                    },
                })
                .collect()
        }
    }
}

/// Trains one model with the given choice and returns its accuracy on
/// `test`.
fn fit_and_score(
    train: &Dataset,
    test: &Dataset,
    choice: &RegChoice,
    cfg: LrConfig,
) -> Result<f64> {
    let m = train.n_features();
    let mut lr = LogisticRegression::new(m, cfg)?;
    lr.set_regularizer(choice.build(m, cfg.init_std)?);
    lr.fit(train)?;
    lr.accuracy(test)
}

/// Picks the best choice from `grid` by `folds`-fold cross-validation on
/// `train`. Returns `(best index, best mean CV accuracy)`.
pub fn grid_search_cv(
    train: &Dataset,
    grid: &[RegChoice],
    folds: usize,
    cfg: LrConfig,
    seed: u64,
) -> Result<(usize, f64)> {
    if grid.is_empty() {
        return Err(LinearError::InvalidConfig {
            field: "grid",
            reason: "empty hyper-parameter grid".into(),
        });
    }
    if grid.len() == 1 {
        return Ok((0, f64::NAN)); // nothing to tune
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = stratified_kfold(train, folds, &mut rng)?;
    let mut best = (0usize, f64::NEG_INFINITY);
    for (gi, choice) in grid.iter().enumerate() {
        let mut acc = 0.0;
        for s in &splits {
            acc += fit_and_score(&s.train, &s.test, choice, cfg)?;
        }
        acc /= splits.len() as f64;
        if acc > best.1 {
            best = (gi, acc);
        }
    }
    Ok(best)
}

/// One method's Table VII cell: mean accuracy and standard error over the
/// subsamples, plus the per-subsample accuracies.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Which method.
    pub method: Method,
    /// Mean test accuracy over subsamples.
    pub mean: f64,
    /// Standard error (sample std of the subsample accuracies).
    pub stderr: f64,
    /// Per-subsample test accuracies.
    pub per_subsample: Vec<f64>,
}

/// Runs the paper's full small-dataset protocol for one method:
/// `n_subsamples` stratified 80/20 splits; on each, tune by `folds`-fold CV
/// on the training side, retrain on the full training side, score on test.
pub fn evaluate_method(
    ds: &Dataset,
    method: Method,
    n_subsamples: usize,
    folds: usize,
    cfg: LrConfig,
    seed: u64,
) -> Result<MethodResult> {
    let grid = default_grid(method);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accs = Vec::with_capacity(n_subsamples);
    for s in 0..n_subsamples {
        let split = stratified_split(ds, 0.2, &mut rng)?;
        let (best, _) = grid_search_cv(&split.train, &grid, folds, cfg, seed + s as u64)?;
        accs.push(fit_and_score(&split.train, &split.test, &grid[best], cfg)?);
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>()
        / (accs.len() as f64 - 1.0).max(1.0);
    Ok(MethodResult {
        method,
        mean,
        stderr: var.sqrt(),
        per_subsample: accs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::blobs;

    fn fast_cfg() -> LrConfig {
        LrConfig {
            epochs: 15,
            batch_size: 32,
            ..LrConfig::default()
        }
    }

    #[test]
    fn grids_have_expected_shapes() {
        assert_eq!(default_grid(Method::None).len(), 1);
        assert_eq!(default_grid(Method::L1).len(), 6);
        assert_eq!(default_grid(Method::L2).len(), 6);
        assert_eq!(default_grid(Method::ElasticNet).len(), 18);
        assert_eq!(default_grid(Method::Huber).len(), 18);
        assert_eq!(default_grid(Method::Gm).len(), 10);
        for m in Method::TABLE_VII {
            for c in default_grid(m) {
                assert_eq!(c.method(), m);
                assert!(c.build(10, 0.1).is_ok());
            }
        }
        assert!(RegChoice::None.build(10, 0.1).unwrap().is_none());
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::Gm.name(), "GM Reg");
        assert_eq!(Method::L1.name(), "L1 Reg");
        assert_eq!(Method::None.name(), "none");
        assert_eq!(Method::TABLE_VII.len(), 5);
    }

    #[test]
    fn grid_search_picks_a_valid_index() {
        let ds = blobs(120, 6, 1.0, 2).unwrap();
        let grid = default_grid(Method::L2);
        let (best, acc) = grid_search_cv(&ds, &grid, 3, fast_cfg(), 5).unwrap();
        assert!(best < grid.len());
        assert!(acc > 0.5, "CV accuracy {acc}");
    }

    #[test]
    fn single_entry_grid_skips_cv() {
        let ds = blobs(40, 4, 1.0, 2).unwrap();
        let grid = default_grid(Method::None);
        let (best, acc) = grid_search_cv(&ds, &grid, 3, fast_cfg(), 5).unwrap();
        assert_eq!(best, 0);
        assert!(acc.is_nan());
        assert!(grid_search_cv(&ds, &[], 3, fast_cfg(), 5).is_err());
    }

    #[test]
    fn evaluate_method_produces_sane_statistics() {
        let ds = blobs(150, 8, 1.2, 3).unwrap();
        let res = evaluate_method(&ds, Method::L2, 3, 3, fast_cfg(), 7).unwrap();
        assert_eq!(res.per_subsample.len(), 3);
        assert!(res.mean > 0.7, "{res:?}");
        assert!(res.stderr >= 0.0 && res.stderr < 0.3);
        assert_eq!(res.method, Method::L2);
    }
}

//! Multinomial (softmax) regression — the multiclass generalization of the
//! binary logistic model, with the same pluggable-regularizer design so
//! GM regularization extends beyond binary tasks.

use crate::error::{LinearError, Result};
use crate::logistic::LrConfig;
use crate::tele;
use gmreg_core::{Regularizer, StepCtx};
use gmreg_data::{Batcher, Dataset};
use gmreg_tensor::SampleExt;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A `C`-class linear softmax classifier with an optional regularizer over
/// the full `[M × C]` weight matrix (biases unregularized).
pub struct SoftmaxRegression {
    /// Row-major `[m, c]` weight matrix.
    w: Vec<f32>,
    bias: Vec<f32>,
    velocity: Vec<f32>,
    bias_velocity: Vec<f32>,
    grad: Vec<f32>,
    reg_scratch: Vec<f32>,
    current_lr: f32,
    m: usize,
    c: usize,
    config: LrConfig,
    regularizer: Option<Box<dyn Regularizer>>,
}

impl SoftmaxRegression {
    /// Creates an untrained model for `m` features and `c` classes.
    pub fn new(m: usize, c: usize, config: LrConfig) -> Result<Self> {
        config.validate()?;
        if m == 0 || c < 2 {
            return Err(LinearError::InvalidConfig {
                field: "m/c",
                reason: "need at least one feature and two classes".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let w = (0..m * c)
            .map(|_| rng.normal(0.0, config.init_std) as f32)
            .collect();
        Ok(SoftmaxRegression {
            velocity: vec![0.0; m * c],
            bias_velocity: vec![0.0; c],
            grad: vec![0.0; m * c],
            reg_scratch: vec![0.0; m * c],
            current_lr: config.lr,
            w,
            bias: vec![0.0; c],
            m,
            c,
            config,
            regularizer: None,
        })
    }

    /// Attaches (or clears) the weight regularizer. Its dimensionality must
    /// match `m × c`.
    pub fn set_regularizer(&mut self, reg: Option<Box<dyn Regularizer>>) {
        self.regularizer = reg;
    }

    /// The flattened `[m × c]` weight matrix.
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    /// The attached regularizer, if any.
    pub fn regularizer(&self) -> Option<&dyn Regularizer> {
        self.regularizer.as_deref()
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, x: &[f32]) -> Result<Vec<f64>> {
        if x.len() != self.m {
            return Err(LinearError::DimensionMismatch {
                expected: self.m,
                actual: x.len(),
            });
        }
        let mut logits = vec![0.0f64; self.c];
        for (j, &xv) in x.iter().enumerate() {
            let row = &self.w[j * self.c..(j + 1) * self.c];
            for (l, &wv) in logits.iter_mut().zip(row) {
                *l += (wv * xv) as f64;
            }
        }
        for (l, &b) in logits.iter_mut().zip(&self.bias) {
            *l += b as f64;
        }
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        for l in logits.iter_mut() {
            *l = (*l - max).exp();
            z += *l;
        }
        for l in logits.iter_mut() {
            *l /= z;
        }
        Ok(logits)
    }

    /// Hard prediction for one sample.
    pub fn predict(&self, x: &[f32]) -> Result<usize> {
        let p = self.predict_proba(x)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, ds: &Dataset) -> Result<f64> {
        let mut hits = 0usize;
        for i in 0..ds.len() {
            if self.predict(ds.sample(i)?)? == ds.y()[i] {
                hits += 1;
            }
        }
        Ok(hits as f64 / ds.len().max(1) as f64)
    }

    /// Trains with mini-batch SGD + momentum.
    pub fn fit(&mut self, ds: &Dataset) -> Result<f64> {
        tele::counter_inc("linear.softmax.fit.calls");
        let _t = tele::span("linear.softmax.fit.ns");
        if ds.n_classes() != self.c {
            return Err(LinearError::InvalidConfig {
                field: "dataset",
                reason: format!("model has {} classes, dataset {}", self.c, ds.n_classes()),
            });
        }
        if ds.n_features() != self.m {
            return Err(LinearError::DimensionMismatch {
                expected: self.m,
                actual: ds.n_features(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let eff_scale = if self.config.scale_reg_by_n {
            self.config.reg_scale / ds.len() as f32
        } else {
            self.config.reg_scale
        };
        self.current_lr = self.config.lr;
        let mut it = 0u64;
        let mut final_loss = f64::INFINITY;
        for epoch in 0..self.config.epochs {
            let batcher = Batcher::new(ds, self.config.batch_size, &mut rng)?;
            let mut epoch_loss = 0.0;
            for b in batcher.iter(ds) {
                let batch = b?;
                epoch_loss += self.step(batch.x.as_slice(), &batch.y, it, epoch as u64, eff_scale);
                it += 1;
                tele::counter_inc("linear.softmax.iterations");
            }
            if let Some(r) = self.regularizer.as_mut() {
                r.end_epoch();
            }
            self.current_lr *= self.config.lr_decay;
            final_loss = epoch_loss / batcher.n_batches() as f64;
        }
        Ok(final_loss)
    }

    fn step(&mut self, xs: &[f32], y: &[usize], it: u64, epoch: u64, eff_scale: f32) -> f64 {
        let n = y.len();
        let (m, c) = (self.m, self.c);
        self.grad.fill(0.0);
        let mut bias_grad = vec![0.0f32; c];
        let mut loss = 0.0f64;
        let mut probs = vec![0.0f64; c];
        for (i, &label) in y.iter().enumerate() {
            let row = &xs[i * m..(i + 1) * m];
            // logits
            probs.iter_mut().for_each(|p| *p = 0.0);
            for (j, &xv) in row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let wrow = &self.w[j * c..(j + 1) * c];
                for (p, &wv) in probs.iter_mut().zip(wrow) {
                    *p += (wv * xv) as f64;
                }
            }
            for (p, &b) in probs.iter_mut().zip(&self.bias) {
                *p += b as f64;
            }
            let max = probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for p in probs.iter_mut() {
                *p = (*p - max).exp();
                z += *p;
            }
            for p in probs.iter_mut() {
                *p /= z;
            }
            loss -= probs[label].max(1e-15).ln();
            // gradient: (p - onehot)/n outer x
            for k in 0..c {
                let err = ((probs[k] - f64::from(k == label)) / n as f64) as f32;
                if err == 0.0 {
                    continue;
                }
                bias_grad[k] += err;
                for (j, &xv) in row.iter().enumerate() {
                    self.grad[j * c + k] += err * xv;
                }
            }
        }
        if let Some(reg) = self.regularizer.as_mut() {
            if eff_scale == 1.0 {
                reg.accumulate_grad(&self.w, &mut self.grad, StepCtx::new(it, epoch));
            } else {
                self.reg_scratch.fill(0.0);
                reg.accumulate_grad(&self.w, &mut self.reg_scratch, StepCtx::new(it, epoch));
                for (g, &r) in self.grad.iter_mut().zip(&self.reg_scratch) {
                    *g += eff_scale * r;
                }
            }
        }
        let (lr, mu) = (self.current_lr, self.config.momentum);
        for i in 0..m * c {
            self.velocity[i] = mu * self.velocity[i] - lr * self.grad[i];
            self.w[i] += self.velocity[i];
        }
        for ((bv, b), &bg) in self
            .bias_velocity
            .iter_mut()
            .zip(self.bias.iter_mut())
            .zip(&bias_grad)
        {
            *bv = mu * *bv - lr * bg;
            *b += *bv;
        }
        loss / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmreg_core::gm::{GmConfig, GmRegularizer};
    use gmreg_tensor::Tensor;

    /// A 3-class linearly separable dataset.
    fn three_blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(-2.0, 0.0), (2.0, 0.0), (0.0, 2.5)];
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 3;
            let (cx, cy) = centers[label];
            data.push((cx + rng.normal(0.0, 0.5)) as f32);
            data.push((cy + rng.normal(0.0, 0.5)) as f32);
            y.push(label);
        }
        Dataset::new(Tensor::from_vec(data, [n, 2]).expect("tensor"), y, 3).expect("dataset")
    }

    fn cfg() -> LrConfig {
        LrConfig {
            epochs: 40,
            ..LrConfig::default()
        }
    }

    #[test]
    fn learns_three_classes() {
        let ds = three_blobs(300, 5);
        let mut model = SoftmaxRegression::new(2, 3, cfg()).expect("config");
        let loss = model.fit(&ds).expect("training");
        assert!(loss < 0.3, "final loss {loss}");
        assert!(model.accuracy(&ds).expect("eval") > 0.95);
        let test = three_blobs(150, 77);
        assert!(model.accuracy(&test).expect("eval") > 0.95);
    }

    #[test]
    fn probabilities_are_a_simplex() {
        let ds = three_blobs(60, 2);
        let mut model = SoftmaxRegression::new(2, 3, cfg()).expect("config");
        model.fit(&ds).expect("training");
        for i in 0..10 {
            let p = model
                .predict_proba(ds.sample(i).expect("row"))
                .expect("proba");
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
            let pred = model.predict(ds.sample(i).expect("row")).expect("pred");
            let argmax = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(k, _)| k)
                .expect("non-empty");
            assert_eq!(pred, argmax);
        }
    }

    #[test]
    fn gm_regularizer_spans_the_weight_matrix() {
        let ds = three_blobs(120, 3);
        let mut model = SoftmaxRegression::new(2, 3, cfg()).expect("config");
        model.set_regularizer(Some(Box::new(
            GmRegularizer::new(2 * 3, 0.1, GmConfig::default()).expect("valid"),
        )));
        model.fit(&ds).expect("training");
        assert!(model.accuracy(&ds).expect("eval") > 0.9);
        let gm = model
            .regularizer()
            .and_then(|r| r.as_gm())
            .expect("attached");
        assert!(gm.e_step_count() > 0);
    }

    #[test]
    fn validation() {
        assert!(SoftmaxRegression::new(0, 3, cfg()).is_err());
        assert!(SoftmaxRegression::new(2, 1, cfg()).is_err());
        let model = SoftmaxRegression::new(2, 3, cfg()).expect("config");
        assert!(model.predict_proba(&[1.0]).is_err());
        let ds2 = three_blobs(9, 1);
        let mut wrong_c = SoftmaxRegression::new(2, 4, cfg()).expect("config");
        assert!(wrong_c.fit(&ds2).is_err());
        let mut wrong_m = SoftmaxRegression::new(5, 3, cfg()).expect("config");
        assert!(wrong_m.fit(&ds2).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let ds = three_blobs(12, 9);
        let fd_cfg = LrConfig {
            epochs: 1,
            batch_size: 12,
            lr: 1e-7,
            lr_decay: 1.0,
            momentum: 0.0,
            ..LrConfig::default()
        };
        let mut model = SoftmaxRegression::new(2, 3, fd_cfg).expect("config");
        let w0 = model.w.clone();
        let loss_at = |w: &[f32]| -> f64 {
            let mut probe = SoftmaxRegression::new(2, 3, fd_cfg).expect("config");
            probe.w.copy_from_slice(w);
            let mut acc = 0.0;
            for i in 0..ds.len() {
                let p = probe
                    .predict_proba(ds.sample(i).expect("row"))
                    .expect("proba");
                acc -= p[ds.y()[i]].max(1e-15).ln();
            }
            acc / ds.len() as f64
        };
        model.fit(&ds).expect("training");
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut wp = w0.clone();
            wp[i] += eps;
            let mut wm = w0.clone();
            wm[i] -= eps;
            let num = (loss_at(&wp) - loss_at(&wm)) / (2.0 * eps as f64);
            let got = model.grad[i] as f64;
            assert!((num - got).abs() < 1e-3, "dim {i}: {num} vs {got}");
        }
    }
}

//! Live observability for long-running gmreg training: renderers that turn a
//! telemetry [`Report`](gmreg_telemetry::Report) into Prometheus text
//! exposition ([`prometheus_text`]) and a compact `/status` JSON document
//! ([`status_json`]), plus — behind the `serve` feature — a zero-dependency
//! blocking HTTP server ([`ObsServer`]) that snapshots the telemetry
//! registry on every request.
//!
//! The crate sits strictly *beside* the training path: nothing here is
//! called from a kernel or an optimizer step. A binary opts in with
//! `--serve <addr>` (see `gmreg-bench`'s `ObsOut`), the server thread wakes
//! every ~25 ms to poll its listener, and each scrape pays one registry
//! snapshot — the hot loops never block on a socket.
//!
//! ## Endpoints
//!
//! * `GET /metrics` — Prometheus text format v0.0.4. Counters and gauges
//!   map 1:1; pow2 telemetry histograms become cumulative `_bucket{le=...}`
//!   series with exact `_sum`/`_count`.
//! * `GET /status` — one JSON object summarizing training progress: current
//!   epoch and loss, π/λ ranges of the GM mixture, guard-rail counters, the
//!   newest durable checkpoint generation, rolling 10 s / 60 s request-rate
//!   and latency windows, and build provenance.
//! * `GET /debug/requests`, `GET /debug/trace?secs=N` (`debug` feature) —
//!   the worst-N slow-request ring and a timed Chrome `trace_event`
//!   capture; see the `debug` module.

mod prom;
mod status;

pub use prom::{prometheus_text, prometheus_text_into};
pub use status::{status_json, status_json_into};

#[cfg(feature = "serve")]
mod server;

#[cfg(feature = "serve")]
pub use server::{query_param, HttpRequest, HttpResponse, ObsServer, Router, StageNs};

#[cfg(feature = "debug")]
mod debug;

//! The `/status` JSON document: a fixed-shape summary of training progress
//! assembled from well-known telemetry metric names.

use gmreg_telemetry::{Report, WindowStats};

fn json_num(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        // JSON has no Inf/NaN literals; null keeps the document parseable.
        out.push_str("null");
    }
}

fn field_u64(out: &mut String, key: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "\"{key}\": {value}");
}

fn field_f64(out: &mut String, key: &str, value: Option<f64>) {
    use std::fmt::Write as _;
    let _ = write!(out, "\"{key}\": ");
    match value {
        Some(v) => json_num(v, out),
        None => out.push_str("null"),
    }
}

/// The crate features this build compiled in, as a comma-joined list. A
/// compile-time fact rendered at runtime — `cfg!` cannot build a `const`
/// string without a proc macro.
fn build_features() -> &'static str {
    match (cfg!(feature = "serve"), cfg!(feature = "debug")) {
        (_, true) => "serve,debug",
        (true, false) => "serve",
        (false, false) => "",
    }
}

/// Renders a rolling-window percentile (`hist_10s`/`hist_60s` member) in
/// milliseconds, `null` when the window holds no observations.
fn window_pctl(
    out: &mut String,
    key: &str,
    w: Option<&WindowStats>,
    pick: fn(&WindowStats) -> Option<f64>,
) {
    field_f64(out, key, w.and_then(pick).map(|ns| ns / 1e6));
}

/// Renders `report` as the `/status` JSON object.
///
/// The document has a fixed shape; metrics a run never recorded appear as
/// `null` (gauges) or `0` (counters):
///
/// ```json
/// {
///   "epoch": 12, "loss": 0.31,
///   "gm": {"pi_min": ..., "pi_max": ..., "lambda_min": ..., "lambda_max": ...},
///   "guard": {"trips": 0, "rollbacks": 0, "degraded": 0},
///   "checkpoint": {"generation": 3, "saves": 3},
///   "pool": {"width": 7, "jobs": 120, "tasks": 960, "steals": 41,
///            "worker_panics": 0, "workers_replaced": 0},
///   "serve": {"generation": 3, "requests": 1200, "batches": 310,
///             "reloads": 1, "fallbacks": 0, "rejected": 0,
///             "batch_failures": 0, "deadline_expired": 0,
///             "connections": 2},
///   "window": {"requests_rate_10s": 2650.0, "requests_rate_60s": 2512.4,
///              "latency_ms": {"p50_10s": ..., "p95_10s": ..., "p99_10s": ...,
///                             "p50_60s": ..., "p95_60s": ..., "p99_60s": ...}},
///   "shard": {"workers": 4, "restarts": 0, "reassignments": 0,
///             "heartbeat_misses": 0, "replays": 0},
///   "telemetry": {"spans": 140, "dropped_spans": 0},
///   "build": {"version": "0.1.0", "git": "f7413d4", "features": "serve,debug",
///             "uptime_secs": 86}
/// }
/// ```
///
/// The `window` section is the rolling live view (see
/// [`gmreg_telemetry::window`]): request rates over the last 10 s / 60 s
/// and in-window latency percentiles in milliseconds, all `null` until the
/// serving path records traffic. Unlike the cumulative `serve` counters it
/// answers "what is the server doing *now*".
///
/// The `build` section is compile-time provenance: crate version,
/// `git describe` of the built tree (`"unknown"` outside a checkout),
/// compiled-in features, and seconds since the process telemetry epoch.
///
/// The `serve` section mirrors the `gmreg-serve` daemon's counters; for a
/// training-only run it is all zeros with a `null` generation.
///
/// The `shard` section mirrors the elastic sharded runtime: the
/// `shard.workers` gauge (live worker count) plus its recovery counters
/// (`shard.restarts`, `shard.reassignments`, `shard.heartbeat.misses`,
/// `shard.replays`). `workers: null` means no sharded fit ever ran.
///
/// The `pool` section mirrors the persistent work-stealing pool's
/// counters (`pool.jobs`/`pool.tasks`/`pool.steals`) and `pool.width`
/// gauge, so a live scrape shows whether parallelism is actually engaged:
/// `width: null` with `jobs: 0` means every kernel stayed serial.
///
/// `epoch` counts *completed* epochs (the `runtime.epoch` gauge both the NN
/// and linear durable runtimes publish once per epoch); it is `null` until
/// the first epoch finishes.
pub fn status_json(report: &Report) -> String {
    let mut out = String::with_capacity(512);
    status_json_into(report, &mut out);
    out
}

/// [`status_json`] rendered onto a caller-owned buffer — the serving hot
/// path reuses one buffer per connection instead of allocating a fresh
/// `String` per request.
pub fn status_json_into(report: &Report, out: &mut String) {
    let gauge = |name: &str| report.gauges.get(name).copied();
    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);

    out.push('{');
    field_f64(out, "epoch", gauge("runtime.epoch"));
    out.push_str(", ");
    field_f64(out, "loss", gauge("runtime.loss"));
    out.push_str(", \"gm\": {");
    field_f64(out, "pi_min", gauge("gm.pi.min"));
    out.push_str(", ");
    field_f64(out, "pi_max", gauge("gm.pi.max"));
    out.push_str(", ");
    field_f64(out, "lambda_min", gauge("gm.lambda.min"));
    out.push_str(", ");
    field_f64(out, "lambda_max", gauge("gm.lambda.max"));
    out.push_str(", ");
    field_u64(out, "e_steps", counter("gm.e_step.runs"));
    out.push_str(", ");
    field_u64(out, "e_step_skips", counter("gm.e_step.skips"));
    out.push_str(", ");
    field_u64(out, "m_steps", counter("gm.m_step.runs"));
    out.push_str("}, \"guard\": {");
    field_u64(out, "trips", counter("guard.trips"));
    out.push_str(", ");
    field_u64(out, "rollbacks", counter("guard.rollbacks"));
    out.push_str(", ");
    field_u64(out, "degraded", counter("guard.degraded"));
    out.push_str("}, \"checkpoint\": {");
    field_f64(out, "generation", gauge("ckpt.generation"));
    out.push_str(", ");
    field_u64(out, "saves", counter("ckpt.saves"));
    out.push_str("}, \"pool\": {");
    field_f64(out, "width", gauge("pool.width"));
    out.push_str(", ");
    field_u64(out, "jobs", counter("pool.jobs"));
    out.push_str(", ");
    field_u64(out, "tasks", counter("pool.tasks"));
    out.push_str(", ");
    field_u64(out, "steals", counter("pool.steals"));
    out.push_str(", ");
    field_u64(out, "worker_panics", counter("pool.worker.panics"));
    out.push_str(", ");
    field_u64(out, "workers_replaced", counter("pool.workers.replaced"));
    out.push_str("}, \"serve\": {");
    field_f64(out, "generation", gauge("serve.generation"));
    out.push_str(", ");
    field_u64(out, "requests", counter("serve.requests"));
    out.push_str(", ");
    field_u64(out, "batches", counter("serve.batches"));
    out.push_str(", ");
    field_u64(out, "reloads", counter("serve.reloads"));
    out.push_str(", ");
    field_u64(out, "fallbacks", counter("serve.fallbacks"));
    out.push_str(", ");
    field_u64(out, "rejected", counter("serve.rejected"));
    out.push_str(", ");
    field_u64(out, "batch_failures", counter("serve.batch.failures"));
    out.push_str(", ");
    field_u64(out, "deadline_expired", counter("serve.deadline_expired"));
    out.push_str(", ");
    field_f64(out, "connections", gauge("serve.connections"));
    out.push_str("}, \"window\": {");
    let req_w = report.window("serve.requests");
    field_f64(out, "requests_rate_10s", req_w.map(|w| w.rate_10s));
    out.push_str(", ");
    field_f64(out, "requests_rate_60s", req_w.map(|w| w.rate_60s));
    out.push_str(", \"latency_ms\": {");
    let lat = report.window("serve.request.ns");
    window_pctl(out, "p50_10s", lat, |w| {
        w.hist_10s.as_ref().map(|h| h.p50())
    });
    out.push_str(", ");
    window_pctl(out, "p95_10s", lat, |w| {
        w.hist_10s.as_ref().map(|h| h.p95())
    });
    out.push_str(", ");
    window_pctl(out, "p99_10s", lat, |w| {
        w.hist_10s.as_ref().map(|h| h.p99())
    });
    out.push_str(", ");
    window_pctl(out, "p50_60s", lat, |w| {
        w.hist_60s.as_ref().map(|h| h.p50())
    });
    out.push_str(", ");
    window_pctl(out, "p95_60s", lat, |w| {
        w.hist_60s.as_ref().map(|h| h.p95())
    });
    out.push_str(", ");
    window_pctl(out, "p99_60s", lat, |w| {
        w.hist_60s.as_ref().map(|h| h.p99())
    });
    out.push_str("}}, \"shard\": {");
    field_f64(out, "workers", gauge("shard.workers"));
    out.push_str(", ");
    field_u64(out, "restarts", counter("shard.restarts"));
    out.push_str(", ");
    field_u64(out, "reassignments", counter("shard.reassignments"));
    out.push_str(", ");
    field_u64(out, "heartbeat_misses", counter("shard.heartbeat.misses"));
    out.push_str(", ");
    field_u64(out, "replays", counter("shard.replays"));
    out.push_str("}, \"telemetry\": {");
    field_u64(out, "spans", report.spans.len() as u64);
    out.push_str(", ");
    field_u64(out, "dropped_spans", report.dropped_spans);
    out.push_str("}, \"build\": {");
    {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "\"version\": \"{}\", \"git\": \"{}\", \"features\": \"{}\", ",
            env!("CARGO_PKG_VERSION"),
            env!("GMREG_GIT_DESCRIBE"),
            build_features()
        );
    }
    field_u64(out, "uptime_secs", gmreg_telemetry::uptime_secs());
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::test_lock as locked;

    #[test]
    fn empty_report_yields_nulls_and_zeros() {
        let s = status_json(&Report::default());
        assert!(s.contains("\"epoch\": null"));
        assert!(s.contains("\"loss\": null"));
        assert!(s.contains("\"trips\": 0"));
        assert!(s.contains("\"generation\": null"));
        // A run that never forked shows an idle pool, not a missing one.
        assert!(s.contains("\"pool\": {\"width\": null, \"jobs\": 0"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn pool_metrics_flow_through() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::gauge_set("pool.width", 7.0);
        gmreg_telemetry::counter_add("pool.jobs", 12);
        gmreg_telemetry::counter_add("pool.tasks", 96);
        gmreg_telemetry::counter_add("pool.steals", 5);
        gmreg_telemetry::counter_inc("pool.workers.replaced");
        let s = status_json(&gmreg_telemetry::snapshot());
        assert!(s.contains("\"width\": 7.0"), "{s}");
        assert!(s.contains("\"jobs\": 12"), "{s}");
        assert!(s.contains("\"tasks\": 96"), "{s}");
        assert!(s.contains("\"steals\": 5"), "{s}");
        assert!(s.contains("\"workers_replaced\": 1"), "{s}");
        gmreg_telemetry::reset();
    }

    #[test]
    fn live_metrics_flow_through() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::gauge_set("runtime.epoch", 4.0);
        gmreg_telemetry::gauge_set("runtime.loss", 0.625);
        gmreg_telemetry::gauge_set("gm.lambda.max", 40.0);
        gmreg_telemetry::counter_add("guard.trips", 2);
        gmreg_telemetry::counter_inc("ckpt.saves");
        let s = status_json(&gmreg_telemetry::snapshot());
        assert!(s.contains("\"epoch\": 4.0"), "{s}");
        assert!(s.contains("\"loss\": 0.625"), "{s}");
        assert!(s.contains("\"lambda_max\": 40.0"), "{s}");
        assert!(s.contains("\"trips\": 2"), "{s}");
        assert!(s.contains("\"saves\": 1"), "{s}");
        gmreg_telemetry::reset();
    }

    #[test]
    fn serve_metrics_flow_through() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::gauge_set("serve.generation", 3.0);
        gmreg_telemetry::counter_add("serve.requests", 1200);
        gmreg_telemetry::counter_add("serve.batches", 310);
        gmreg_telemetry::counter_inc("serve.reloads");
        gmreg_telemetry::counter_inc("serve.fallbacks");
        gmreg_telemetry::gauge_set("serve.connections", 2.0);
        let s = status_json(&gmreg_telemetry::snapshot());
        assert!(
            s.contains("\"serve\": {\"generation\": 3.0, \"requests\": 1200"),
            "{s}"
        );
        assert!(s.contains("\"batches\": 310"), "{s}");
        assert!(s.contains("\"reloads\": 1"), "{s}");
        assert!(s.contains("\"fallbacks\": 1"), "{s}");
        assert!(s.contains("\"connections\": 2.0"), "{s}");
        gmreg_telemetry::reset();
    }

    #[test]
    fn shard_metrics_flow_through() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::gauge_set("shard.workers", 3.0);
        gmreg_telemetry::counter_add("shard.restarts", 2);
        gmreg_telemetry::counter_inc("shard.reassignments");
        gmreg_telemetry::counter_add("shard.heartbeat.misses", 5);
        gmreg_telemetry::counter_add("shard.replays", 4);
        gmreg_telemetry::counter_inc("serve.deadline_expired");
        let s = status_json(&gmreg_telemetry::snapshot());
        assert!(
            s.contains("\"shard\": {\"workers\": 3.0, \"restarts\": 2"),
            "{s}"
        );
        assert!(s.contains("\"reassignments\": 1"), "{s}");
        assert!(s.contains("\"heartbeat_misses\": 5"), "{s}");
        assert!(s.contains("\"replays\": 4"), "{s}");
        assert!(s.contains("\"deadline_expired\": 1"), "{s}");
        gmreg_telemetry::reset();
    }

    #[test]
    fn window_section_is_null_until_traffic_flows() {
        let _g = locked();
        gmreg_telemetry::reset();
        let s = status_json(&gmreg_telemetry::snapshot());
        assert!(
            s.contains("\"window\": {\"requests_rate_10s\": null, \"requests_rate_60s\": null"),
            "{s}"
        );
        assert!(s.contains("\"latency_ms\": {\"p50_10s\": null"), "{s}");

        gmreg_telemetry::counter_add("serve.requests", 30);
        for _ in 0..10 {
            gmreg_telemetry::histogram_record("serve.request.ns", 2_000_000.0);
        }
        gmreg_telemetry::flush();
        let s = status_json(&gmreg_telemetry::snapshot());
        // 30 requests landed in the current second: 3/s over 10 s.
        assert!(s.contains("\"requests_rate_10s\": 3.0"), "{s}");
        assert!(s.contains("\"requests_rate_60s\": 0.5"), "{s}");
        // 2 ms observations: every in-window percentile is near 2 ms and
        // definitely not null.
        assert!(!s.contains("\"p99_10s\": null"), "{s}");
        assert!(!s.contains("\"p50_60s\": null"), "{s}");
        gmreg_telemetry::reset();
    }

    #[test]
    fn build_section_reports_provenance() {
        let s = status_json(&Report::default());
        let version = format!("\"version\": \"{}\"", env!("CARGO_PKG_VERSION"));
        assert!(s.contains(&version), "{s}");
        assert!(s.contains("\"git\": \""), "{s}");
        assert!(
            !s.contains("\"git\": \"\""),
            "git describe must not be empty"
        );
        assert!(s.contains("\"features\": \""), "{s}");
        assert!(s.contains("\"uptime_secs\": "), "{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count(), "{s}");
    }

    #[test]
    fn non_finite_gauges_render_as_null() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::gauge_set("runtime.loss", f64::NAN);
        let s = status_json(&gmreg_telemetry::snapshot());
        assert!(s.contains("\"loss\": null"), "{s}");
        gmreg_telemetry::reset();
    }
}

//! Prometheus text exposition (format v0.0.4) over a telemetry report.

use gmreg_telemetry::Report;

/// Prefix applied to every exported metric family.
const PREFIX: &str = "gmreg_";

/// Maps a telemetry metric name (dotted, e.g. `gm.e_step.runs`) onto a
/// Prometheus-legal name: every character outside `[a-zA-Z0-9_:]` becomes
/// `_`, and the `gmreg_` prefix is prepended.
pub(crate) fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a float the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// spellings included) onto `out`.
fn num(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Sanitized metric-name cache: exposition reuses the same metric names
/// scrape after scrape, so sanitize each once instead of per render.
fn cached_name(name: &str, out: &mut String) {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static CACHE: Mutex<Option<HashMap<String, String>>> = Mutex::new(None);
    let mut cache = CACHE.lock().unwrap_or_else(|p| p.into_inner());
    let cache = cache.get_or_insert_with(HashMap::new);
    if let Some(m) = cache.get(name) {
        out.push_str(m);
        return;
    }
    let m = metric_name(name);
    out.push_str(&m);
    cache.insert(name.to_string(), m);
}

/// Renders `report` as Prometheus text exposition.
///
/// * counters → `counter` families;
/// * gauges → `gauge` families;
/// * pow2 histograms → `histogram` families with **cumulative**
///   `_bucket{le="..."}` series, a closing `le="+Inf"` bucket, and exact
///   `_sum` / `_count` samples;
/// * rolling windows → `gmreg_<name>_window_rate_{10s,60s}` gauges (plus
///   `_window_p99_{10s,60s}` for histograms), emitted only for metrics
///   active in the last 60 s;
/// * `dropped_spans` → the `gmreg_telemetry_dropped_spans` counter, so a
///   scraper can alert on trace loss.
///
/// Families are emitted in sorted-name order (the report's maps are
/// `BTreeMap`s), so the output is deterministic for a given report.
pub fn prometheus_text(report: &Report) -> String {
    let mut out = String::new();
    prometheus_text_into(report, &mut out);
    out
}

/// [`prometheus_text`] rendered onto a caller-owned buffer — the serving
/// hot path reuses one buffer per connection instead of allocating a fresh
/// `String` per scrape.
pub fn prometheus_text_into(report: &Report, out: &mut String) {
    use std::fmt::Write as _;

    for (name, &value) in &report.counters {
        out.push_str("# TYPE ");
        cached_name(name, out);
        out.push_str(" counter\n");
        cached_name(name, out);
        let _ = writeln!(out, " {value}");
    }

    for (name, &value) in &report.gauges {
        out.push_str("# TYPE ");
        cached_name(name, out);
        out.push_str(" gauge\n");
        cached_name(name, out);
        out.push(' ');
        num(value, out);
        out.push('\n');
    }

    for (name, hist) in &report.histograms {
        out.push_str("# TYPE ");
        cached_name(name, out);
        out.push_str(" histogram\n");
        let mut cumulative = 0u64;
        for b in &hist.buckets {
            cumulative += b.count;
            cached_name(name, out);
            out.push_str("_bucket{le=\"");
            num(b.le, out);
            let _ = writeln!(out, "\"}} {cumulative}");
        }
        cached_name(name, out);
        let _ = writeln!(out, "_bucket{{le=\"+Inf\"}} {}", hist.count);
        cached_name(name, out);
        out.push_str("_sum ");
        num(hist.sum, out);
        out.push('\n');
        cached_name(name, out);
        let _ = writeln!(out, "_count {}", hist.count);
    }

    // Rolling-window views export as gauges (a rate over a sliding window
    // can fall, so `counter` would be a lie). Only metrics with activity in
    // the last 60 s are exported — idle windows would otherwise emit four
    // zero series per metric name forever.
    for (name, w) in &report.windows {
        if w.count_60s == 0 {
            continue;
        }
        for (suffix, value) in [
            ("_window_rate_10s", w.rate_10s),
            ("_window_rate_60s", w.rate_60s),
        ] {
            out.push_str("# TYPE ");
            cached_name(name, out);
            out.push_str(suffix);
            out.push_str(" gauge\n");
            cached_name(name, out);
            out.push_str(suffix);
            out.push(' ');
            num(value, out);
            out.push('\n');
        }
        for (suffix, hist) in [
            ("_window_p99_10s", &w.hist_10s),
            ("_window_p99_60s", &w.hist_60s),
        ] {
            let Some(h) = hist else { continue };
            out.push_str("# TYPE ");
            cached_name(name, out);
            out.push_str(suffix);
            out.push_str(" gauge\n");
            cached_name(name, out);
            out.push_str(suffix);
            out.push(' ');
            num(h.p99(), out);
            out.push('\n');
        }
    }

    out.push_str("# TYPE ");
    cached_name("telemetry.dropped_spans", out);
    out.push_str(" counter\n");
    cached_name("telemetry.dropped_spans", out);
    let _ = writeln!(out, " {}", report.dropped_spans);
}

/// The telemetry registry is process-global; unit tests that reset and
/// repopulate it serialize on this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::test_lock as locked;
    use super::*;

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("gm.e_step.runs"), "gmreg_gm_e_step_runs");
        assert_eq!(metric_name("pool.fork.ns"), "gmreg_pool_fork_ns");
        assert_eq!(metric_name("a-b c:d"), "gmreg_a_b_c:d");
    }

    #[test]
    fn buckets_are_cumulative_and_closed_with_inf() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::histogram_record("t.h", 1.5);
        gmreg_telemetry::histogram_record("t.h", 3.0);
        gmreg_telemetry::histogram_record("t.h", 1000.0);
        let text = prometheus_text(&gmreg_telemetry::snapshot());
        assert!(text.contains("# TYPE gmreg_t_h histogram\n"));
        assert!(text.contains("gmreg_t_h_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("gmreg_t_h_count 3\n"));
        assert!(text.contains("gmreg_t_h_sum 1004.5\n"));
        // Cumulative counts never decrease across the family's buckets.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("gmreg_t_h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
        gmreg_telemetry::reset();
    }

    #[test]
    fn active_windows_export_as_gauges_and_idle_ones_do_not() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::counter_add("t.req", 20);
        gmreg_telemetry::histogram_record("t.lat.ns", 5_000_000.0);
        let text = prometheus_text(&gmreg_telemetry::snapshot());
        assert!(
            text.contains(
                "# TYPE gmreg_t_req_window_rate_10s gauge\ngmreg_t_req_window_rate_10s 2\n"
            ),
            "{text}"
        );
        assert!(text.contains("gmreg_t_lat_ns_window_p99_10s "), "{text}");
        // Counters have no in-window percentiles.
        assert!(!text.contains("gmreg_t_req_window_p99_10s"), "{text}");
        gmreg_telemetry::reset();
        // After a reset nothing is active: no window series at all.
        let text = prometheus_text(&gmreg_telemetry::snapshot());
        assert!(!text.contains("_window_"), "{text}");
    }

    #[test]
    fn counters_and_gauges_render_with_types() {
        let _g = locked();
        gmreg_telemetry::reset();
        gmreg_telemetry::counter_add("t.c", 7);
        gmreg_telemetry::gauge_set("t.g", 2.5);
        let text = prometheus_text(&gmreg_telemetry::snapshot());
        assert!(text.contains("# TYPE gmreg_t_c counter\ngmreg_t_c 7\n"));
        assert!(text.contains("# TYPE gmreg_t_g gauge\ngmreg_t_g 2.5\n"));
        assert!(text.contains("gmreg_telemetry_dropped_spans 0\n"));
        gmreg_telemetry::reset();
    }
}

//! Debug introspection endpoints: the slow-request ring behind
//! `GET /debug/requests` and the timed span capture behind
//! `GET /debug/trace?secs=N`. Compiled only with the `debug` feature so
//! deployments can run the serving surface with this one absent.
//!
//! ## Slow-request ring
//!
//! A fixed-memory, lock-striped record of the worst-latency completed
//! requests. Each completed traced request is offered to the stripe its
//! trace id hashes to ([`STRIPES`] stripes × [`PER_STRIPE`] slots, all
//! `Copy` — no allocation on insert); a full stripe evicts its current
//! minimum *strictly* by total latency, so a stripe always holds the top
//! [`PER_STRIPE`] requests it ever saw. Any request among the global
//! worst-[`PER_STRIPE`] is by construction among its own stripe's worst,
//! so the merged view returned by `/debug/requests` — all stripes, sorted
//! by total latency descending — always contains the true global
//! worst-[`PER_STRIPE`] and usually much more.
//!
//! ## Timed capture
//!
//! `/debug/trace?secs=N` clears retained span events, opens a capture
//! window ([`gmreg_telemetry::trace::capture_for_secs`]), sleeps the
//! window out (plus one flush cadence so connection workers drain their
//! sinks), and converts the captured spans to a Chrome `trace_event`
//! document via [`gmreg_telemetry::chrome`]. The handler blocks its
//! connection worker for the duration — it is a debugging tool, not a
//! scrape target. Concurrent captures race benignly: the latest window
//! wins.

use crate::server::{HttpRequest, HttpResponse, StageNs, STAGE_HISTS, STAGE_LABELS};
use gmreg_telemetry::trace::{capture_end, capture_for_secs, now_ns};
use gmreg_telemetry::TraceCtx;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Lock stripes in the slow-request ring (power of two; trace ids are
/// splitmix64-mixed, so the low bits stripe uniformly).
pub(crate) const STRIPES: usize = 4;

/// Worst-request slots per stripe.
pub(crate) const PER_STRIPE: usize = 8;

/// Longest capture window `/debug/trace` accepts, seconds.
const MAX_CAPTURE_SECS: u64 = 30;

/// One completed request in the slow ring. `Copy`, so inserts move a flat
/// ~100 bytes under the stripe lock and never allocate.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SlowEntry {
    pub trace_id: u64,
    pub total_ns: u64,
    /// Completion time, telemetry-epoch nanoseconds.
    pub end_ns: u64,
    pub stages: StageNs,
}

#[derive(Debug)]
struct Stripe {
    entries: [SlowEntry; PER_STRIPE],
    len: usize,
}

/// The lock-striped worst-N ring; see the module docs for the eviction
/// guarantee.
pub(crate) struct SlowRing {
    stripes: [Mutex<Stripe>; STRIPES],
}

impl SlowRing {
    pub(crate) fn new() -> SlowRing {
        SlowRing {
            stripes: std::array::from_fn(|_| {
                Mutex::new(Stripe {
                    entries: [SlowEntry::default(); PER_STRIPE],
                    len: 0,
                })
            }),
        }
    }

    /// Offers one completed request. A full stripe replaces its current
    /// minimum only when the newcomer's total latency is strictly larger,
    /// so stripe contents are exactly the stripe's worst [`PER_STRIPE`]
    /// requests regardless of insertion order or interleaving.
    pub(crate) fn record(&self, entry: SlowEntry) {
        let stripe = &self.stripes[(entry.trace_id as usize) & (STRIPES - 1)];
        let mut s = stripe.lock().unwrap_or_else(|e| e.into_inner());
        if s.len < PER_STRIPE {
            let at = s.len;
            s.entries[at] = entry;
            s.len += 1;
            return;
        }
        let (min_idx, min_total) = s
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.total_ns))
            .min_by_key(|&(_, t)| t)
            .expect("stripe is non-empty");
        if entry.total_ns > min_total {
            s.entries[min_idx] = entry;
        }
    }

    /// All retained entries, worst first.
    pub(crate) fn worst(&self) -> Vec<SlowEntry> {
        let mut out = Vec::with_capacity(STRIPES * PER_STRIPE);
        for stripe in &self.stripes {
            let s = stripe.lock().unwrap_or_else(|e| e.into_inner());
            out.extend_from_slice(&s.entries[..s.len]);
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        out
    }

    #[cfg(test)]
    fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).len = 0;
        }
    }
}

fn ring() -> &'static SlowRing {
    static RING: OnceLock<SlowRing> = OnceLock::new();
    RING.get_or_init(SlowRing::new)
}

/// Hook called by the server once a traced request's response is on the
/// wire.
pub(crate) fn record_completed(trace: TraceCtx, stages: &StageNs) {
    ring().record(SlowEntry {
        trace_id: trace.id,
        total_ns: stages.total(),
        end_ns: now_ns(),
        stages: *stages,
    });
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push_str("null");
    }
}

/// `GET /debug/requests`: the worst-latency completed request traces plus
/// cross-request stage tail percentiles, as fixed-shape JSON:
///
/// ```json
/// {"worst": [{"trace": "16 hex", "total_ms": 1.2, "batch_mates": 3,
///             "generation": 1, "age_s": 4.0,
///             "stage_ms": {"parse": ..., "queue": ..., "assemble": ...,
///                          "compute": ..., "render": ..., "write": ...}}],
///  "stage_p99_ms": {"parse": ..., ..., "write": ...},
///  "stage_coverage": 1.0}
/// ```
///
/// `stage_coverage` is the fraction of the six stage histograms that have
/// recorded at least one observation — 1.0 on a server that has served
/// traced traffic, the bench gate for "the decomposition is actually on".
pub(crate) fn requests_json(resp: &mut HttpResponse) {
    let report = gmreg_telemetry::snapshot();
    let now = now_ns();
    let body = resp.start_json();
    body.push_str("{\"worst\": [");
    for (i, e) in ring().worst().iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let hex = TraceCtx {
            id: e.trace_id,
            parent: 0,
        }
        .id_hex();
        body.push_str("{\"trace\": \"");
        body.push_str(std::str::from_utf8(&hex).expect("hex digits are ascii"));
        body.push_str("\", \"total_ms\": ");
        push_f64(body, ms(e.total_ns));
        let _ = write!(
            body,
            ", \"batch_mates\": {}, \"generation\": {}, \"age_s\": ",
            e.stages.batch_mates, e.stages.generation
        );
        push_f64(body, now.saturating_sub(e.end_ns) as f64 / 1e9);
        body.push_str(", \"stage_ms\": {");
        for (j, (label, v)) in STAGE_LABELS.iter().zip(e.stages.stage_values()).enumerate() {
            if j > 0 {
                body.push_str(", ");
            }
            let _ = write!(body, "\"{label}\": ");
            push_f64(body, ms(v));
        }
        body.push_str("}}");
    }
    body.push_str("], \"stage_p99_ms\": {");
    let mut present = 0usize;
    for (j, (label, hist)) in STAGE_LABELS.iter().zip(STAGE_HISTS).enumerate() {
        if j > 0 {
            body.push_str(", ");
        }
        let _ = write!(body, "\"{label}\": ");
        match report.histogram(hist) {
            Some(h) if h.count > 0 => {
                present += 1;
                push_f64(body, h.p99() / 1e6);
            }
            _ => body.push_str("null"),
        }
    }
    body.push_str("}, \"stage_coverage\": ");
    push_f64(body, present as f64 / STAGE_HISTS.len() as f64);
    body.push('}');
    body.push('\n');
}

/// `GET /debug/trace?secs=N` (default 2, clamped to 1..=30): records every
/// span for N seconds and returns the window as a Chrome `trace_event`
/// JSON document loadable in `chrome://tracing` / Perfetto.
pub(crate) fn trace_capture(req: &HttpRequest, resp: &mut HttpResponse) {
    let secs = crate::server::query_param(&req.query, "secs")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2)
        .clamp(1, MAX_CAPTURE_SECS);
    gmreg_telemetry::clear_spans();
    capture_for_secs(secs);
    std::thread::sleep(std::time::Duration::from_secs(secs));
    // One extra flush cadence: connection workers drain their sinks every
    // ~1 s, and the window's own 500 ms grace lets requests in flight at
    // the boundary finish materializing first.
    std::thread::sleep(std::time::Duration::from_millis(1_200));
    capture_end();
    let report = gmreg_telemetry::snapshot();
    let body = resp.start_json();
    body.push_str(&report.to_chrome_trace());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Entries all land in one stripe when their ids share low bits; the
    /// stripe must end up holding exactly the top [`PER_STRIPE`] totals no
    /// matter how many threads race their inserts.
    #[test]
    fn slow_ring_keeps_strict_worst_under_concurrent_insertion() {
        let ring = SlowRing::new();
        let per_thread = 64u64;
        let threads = 8u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let total = t * per_thread + i + 1;
                        ring.record(SlowEntry {
                            // Same stripe for every entry: id multiple of 4.
                            trace_id: total * 4,
                            total_ns: total * 1_000,
                            end_ns: 0,
                            stages: StageNs::default(),
                        });
                    }
                });
            }
        });
        let worst = ring.worst();
        assert_eq!(worst.len(), PER_STRIPE, "one stripe, full");
        let expect_max = threads * per_thread * 1_000;
        for (i, e) in worst.iter().enumerate() {
            assert_eq!(
                e.total_ns,
                expect_max - (i as u64) * 1_000,
                "strict eviction keeps exactly the top {PER_STRIPE} totals, sorted"
            );
        }
    }

    #[test]
    fn slow_ring_stripes_by_trace_id_and_merges_sorted() {
        let ring = SlowRing::new();
        for id in 1..=100u64 {
            ring.record(SlowEntry {
                trace_id: id,
                total_ns: id,
                end_ns: 0,
                stages: StageNs::default(),
            });
        }
        let worst = ring.worst();
        assert_eq!(worst.len(), STRIPES * PER_STRIPE);
        assert!(worst.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
        // The global worst-PER_STRIPE is guaranteed present.
        for want in (100 - PER_STRIPE as u64 + 1)..=100 {
            assert!(
                worst.iter().any(|e| e.total_ns == want),
                "global top entry {want} must survive striped eviction"
            );
        }
    }

    #[test]
    fn equal_latency_does_not_evict() {
        let ring = SlowRing::new();
        for i in 0..(PER_STRIPE as u64) {
            ring.record(SlowEntry {
                trace_id: i * 4 + 4,
                total_ns: 500,
                end_ns: 0,
                stages: StageNs::default(),
            });
        }
        // Same total as the stripe minimum: strictly-greater is required.
        ring.record(SlowEntry {
            trace_id: 123_456 * 4,
            total_ns: 500,
            end_ns: 7,
            stages: StageNs::default(),
        });
        assert!(
            ring.worst().iter().all(|e| e.end_ns == 0),
            "an equal-latency newcomer must not replace a resident"
        );
        ring.clear();
        assert!(ring.worst().is_empty());
    }

    #[test]
    fn requests_json_has_fixed_shape_when_empty() {
        let mut resp = HttpResponse::default();
        requests_json(&mut resp);
        let body = &resp.body;
        assert!(body.starts_with("{\"worst\": ["), "{body}");
        assert!(body.contains("\"stage_p99_ms\": {\"parse\": "), "{body}");
        assert!(body.contains("\"stage_coverage\": "), "{body}");
        assert_eq!(body.matches('{').count(), body.matches('}').count());
    }
}

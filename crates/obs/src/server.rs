//! Minimal blocking HTTP/1.1 server (std::net only) for `/metrics` and
//! `/status`, plus a [`Router`] so other crates (e.g. `gmreg-serve`) can
//! register additional routes — `/predict`, `/healthz`, `/reload` — next to
//! the built-in ones. Compiled only with the `serve` feature.
//!
//! ## Connection model
//!
//! Two modes, chosen per [`Router`]:
//!
//! * **Inline** (default): each accepted connection is served one request on
//!   the accept thread and closed (`Connection: close`). Right for
//!   scrape-only traffic — one client every few seconds.
//! * **Pooled** ([`Router::threaded`]): a bounded pool of persistent
//!   connection-worker threads serves each connection with HTTP/1.1
//!   **keep-alive** — the worker loops `read_request` on the same socket
//!   until the client closes, asks to (`Connection: close`, HTTP/1.0
//!   without `keep-alive`), goes idle past [`Router::idle_timeout_ms`], or
//!   hits [`Router::max_requests_per_conn`]. When every worker is busy and
//!   the hand-off queue is full, the accept loop stops accepting — pending
//!   connections wait in the kernel backlog (accept-backpressure, counted
//!   as `serve.conn.backpressure`) instead of spawning unbounded threads.
//!
//! The per-request hot path is allocation-free after warm-up: each worker
//! keeps one reusable read buffer, one [`HttpRequest`] whose `String`/`Vec`
//! fields are cleared and refilled in place, one [`HttpResponse`] whose
//! body is a reused render buffer, and one write buffer the response head
//! and body are serialized into for a single `write_all`.
//!
//! Live pooled connections are published as the `serve.connections` gauge.

use gmreg_telemetry::TraceCtx;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Accept-poll ceiling: how long the loop may sleep between polls once
/// fully idle. Bounds both shutdown latency and idle wakeup cost.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Accept-poll floor, used while traffic is flowing. On keep-alive
/// connections only the *first* request pays an accept poll, but a fresh
/// burst of connections still wants a tight loop.
const POLL_INTERVAL_MIN: Duration = Duration::from_millis(1);

/// Socket read/write timeout granularity. Blocking reads wake at this
/// cadence so per-connection deadlines (idle, slowloris) and the stop flag
/// are checked without busy-waiting.
const IO_STEP: Duration = Duration::from_millis(100);

/// Inline-mode socket timeouts; a stalled scraper cannot wedge the single
/// accept thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Default keep-alive idle timeout: how long a pooled worker waits for the
/// next request on a connection before closing it.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_millis(500);

/// Default whole-request read deadline (slowloris guard): once the first
/// byte of a request has arrived, the rest of the head and body must
/// follow within this long or the connection is closed.
const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(2);

/// Default pooled connection-worker count. Each worker is pinned to one
/// connection (including its keep-alive idle time), so this bounds
/// concurrent in-flight requests — callers whose handlers coalesce work
/// across connections (e.g. `gmreg-serve`'s micro-batcher) should size
/// the pool to their target concurrency via [`Router::workers`].
const DEFAULT_WORKERS: usize = 4;

/// Default cap on requests served over one keep-alive connection.
const DEFAULT_MAX_REQUESTS_PER_CONN: usize = 1000;

/// Largest request body accepted; anything bigger is answered with 413.
const MAX_BODY: usize = 4 << 20;

/// Largest request head accepted before the connection is dropped.
const MAX_HEAD: usize = 64 * 1024;

/// A parsed HTTP request handed to a route handler. In pooled mode the
/// same instance is cleared and refilled for every request on a
/// connection, so the buffers' capacity is reused.
#[derive(Debug, Clone, Default)]
pub struct HttpRequest {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// The raw query string (bytes after `?`, without the `?`), empty when
    /// absent. Parse with [`query_param`].
    pub query: String,
    /// Raw request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
    /// Request-scoped trace context, minted by the server once the request
    /// head has been read; its id is echoed back as the `X-Gmreg-Trace`
    /// response header. `parent` is the pre-allocated root span id while a
    /// capture window is open, 0 otherwise.
    pub trace: TraceCtx,
    /// When this request's processing began (head fully read), nanoseconds
    /// since the telemetry epoch.
    pub start_ns: u64,
    /// Declared `Content-Length` exceeded [`MAX_BODY`]; the body was not
    /// read and the connection must close after the 413.
    too_large: bool,
    /// The request declared `Transfer-Encoding` (e.g. chunked), which this
    /// server does not frame; the body was not read and the connection
    /// must close after the 501 — treating chunk data as the next
    /// pipelined request would serve garbage.
    unsupported_encoding: bool,
    /// The request (version + `Connection` header) asks for the connection
    /// to close after the response.
    wants_close: bool,
}

impl HttpRequest {
    /// Build a request by hand (handler unit tests).
    pub fn new(method: impl Into<String>, path: impl Into<String>, body: Vec<u8>) -> HttpRequest {
        HttpRequest {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            body,
            trace: TraceCtx::NONE,
            start_ns: 0,
            too_large: false,
            unsupported_encoding: false,
            wants_close: false,
        }
    }

    fn clear(&mut self) {
        self.method.clear();
        self.path.clear();
        self.query.clear();
        self.body.clear();
        self.trace = TraceCtx::NONE;
        self.start_ns = 0;
        self.too_large = false;
        self.unsupported_encoding = false;
        self.wants_close = false;
    }
}

/// Value of `key` in a raw query string (`a=1&b=2`); `None` when absent,
/// `Some("")` for a bare flag. No percent-decoding — the debug endpoints
/// only take small integers.
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// Per-stage nanosecond timings for one traced request, filled by the
/// route handler (`parse` through `render`) and the server (`write`), and
/// consumed after the response hits the wire: each stage feeds its
/// `serve.stage.*.ns` histogram, the whole set rides into the slow-request
/// ring, and — while a capture window is open — materializes as span
/// events. The six stages tile the request end to end, so their sum is the
/// request's total latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNs {
    /// Wire parsing: request body → row buffers.
    pub parse: u64,
    /// Queue wait: blocked in the batcher minus the batch's own
    /// assemble/compute time (so the six stages stay additive).
    pub queue: u64,
    /// Batch assembly on the dispatcher: drain, validation, row moves.
    pub assemble: u64,
    /// When assembly began (telemetry-epoch ns), for span reconstruction.
    pub assemble_start: u64,
    /// The batched forward pass.
    pub compute: u64,
    /// Response-body rendering in the handler.
    pub render: u64,
    /// Head serialization + socket write (filled by the server).
    pub write: u64,
    /// Rows sharing the batch that served this request.
    pub batch_mates: u64,
    /// Model generation that served the request.
    pub generation: u64,
    /// Set by handlers that fill the stages; gates all stage recording so
    /// scrape endpoints stay cost-free.
    pub traced: bool,
}

impl StageNs {
    /// Total latency: the six stages summed.
    pub fn total(&self) -> u64 {
        self.parse + self.queue + self.assemble + self.compute + self.render + self.write
    }
}

/// Stage histogram names, in pipeline order; index-aligned with
/// [`StageNs::stage_values`].
pub(crate) const STAGE_HISTS: [&str; 6] = [
    "serve.stage.parse.ns",
    "serve.stage.queue.ns",
    "serve.stage.assemble.ns",
    "serve.stage.compute.ns",
    "serve.stage.render.ns",
    "serve.stage.write.ns",
];

/// Short stage labels, index-aligned with [`STAGE_HISTS`]. Consumed by the
/// `debug`-gated slow-request ring.
#[cfg_attr(not(feature = "debug"), allow(dead_code))]
pub(crate) const STAGE_LABELS: [&str; 6] =
    ["parse", "queue", "assemble", "compute", "render", "write"];

impl StageNs {
    /// The six stage durations, index-aligned with [`STAGE_HISTS`].
    pub(crate) fn stage_values(&self) -> [u64; 6] {
        [
            self.parse,
            self.queue,
            self.assemble,
            self.compute,
            self.render,
            self.write,
        ]
    }
}

/// A route handler's reply: a reusable render target. Handlers receive
/// `&mut HttpResponse` with the previous request's content already
/// cleared, set the status/content-type, and write the body into the
/// reused `body` buffer (via [`HttpResponse::start`] or the `set_*`
/// helpers) instead of allocating a fresh `String` per request.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status line text, e.g. `200 OK`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (reused buffer).
    pub body: String,
    /// `Retry-After` header value in seconds, emitted when set (back-off
    /// hint on 503s from overload shedding and deadline expiry).
    pub retry_after_secs: Option<u64>,
    /// Per-stage latency attribution filled by tracing-aware handlers
    /// (`/predict`); the server completes the `write` stage and records
    /// the set once the response is on the wire.
    pub stages: StageNs,
}

impl Default for HttpResponse {
    fn default() -> Self {
        HttpResponse {
            status: "200 OK",
            content_type: "text/plain; charset=utf-8",
            body: String::new(),
            retry_after_secs: None,
            stages: StageNs::default(),
        }
    }
}

impl HttpResponse {
    /// `200 OK` with a JSON body (allocating convenience constructor).
    pub fn json(body: impl Into<String>) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type: "application/json",
            body: body.into(),
            ..HttpResponse::default()
        }
    }

    /// `200 OK` with a plain-text body (allocating convenience constructor).
    pub fn text(body: impl Into<String>) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            ..HttpResponse::default()
        }
    }

    /// An error response with a JSON body (allocating constructor).
    pub fn error(status: &'static str, detail: &str) -> Self {
        let mut resp = HttpResponse::default();
        resp.set_error(status, detail);
        resp
    }

    /// Attach a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after_secs = Some(secs);
        self
    }

    /// Reset to an empty `200 OK` so the instance can be rendered into.
    pub fn clear(&mut self) {
        self.status = "200 OK";
        self.content_type = "text/plain; charset=utf-8";
        self.body.clear();
        self.retry_after_secs = None;
        self.stages = StageNs::default();
    }

    /// Set the status line and content type, clear the body, and return
    /// the reused body buffer to write into.
    pub fn start(&mut self, status: &'static str, content_type: &'static str) -> &mut String {
        self.status = status;
        self.content_type = content_type;
        self.retry_after_secs = None;
        self.body.clear();
        &mut self.body
    }

    /// [`HttpResponse::start`] for a `200 OK` JSON reply.
    pub fn start_json(&mut self) -> &mut String {
        self.start("200 OK", "application/json")
    }

    /// [`HttpResponse::start`] for a `200 OK` plain-text reply.
    pub fn start_text(&mut self) -> &mut String {
        self.start("200 OK", "text/plain; charset=utf-8")
    }

    /// Render an error (`{"error": "..."}`) into the reused body buffer.
    pub fn set_error(&mut self, status: &'static str, detail: &str) {
        let body = self.start(status, "application/json");
        body.push_str("{\"error\": ");
        json_escape_into(detail, body);
        body.push_str("}\n");
    }

    /// Attach a `Retry-After` header (seconds) in place.
    pub fn set_retry_after(&mut self, secs: u64) {
        self.retry_after_secs = Some(secs);
    }
}

/// Appends `s` as a JSON string literal onto `out` without allocating.
fn json_escape_into(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

type Handler = Box<dyn Fn(&HttpRequest, &mut HttpResponse) + Send + Sync + 'static>;

/// A set of custom routes layered over the built-in `/metrics`, `/status`
/// and `/` endpoints. Custom routes win on an exact `(method, path)` match;
/// unmatched requests fall through to the built-ins and finally to 404.
///
/// `threaded(true)` serves connections on the pooled connection workers
/// with HTTP/1.1 keep-alive — required when handlers block (a `/predict`
/// call waits for its micro-batch, so inline handling would defeat request
/// coalescing entirely). The default inline mode (one request per
/// connection, served on the accept thread) is right for scrape-only
/// traffic.
pub struct Router {
    routes: Vec<(&'static str, String, Handler)>,
    threaded: bool,
    workers: usize,
    max_requests_per_conn: usize,
    idle_timeout: Duration,
    read_deadline: Duration,
}

impl Default for Router {
    fn default() -> Self {
        Router {
            routes: Vec::new(),
            threaded: false,
            workers: DEFAULT_WORKERS,
            max_requests_per_conn: DEFAULT_MAX_REQUESTS_PER_CONN,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            read_deadline: DEFAULT_READ_DEADLINE,
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router")
            .field("routes", &paths)
            .field("threaded", &self.threaded)
            .field("workers", &self.workers)
            .finish()
    }
}

impl Router {
    /// An empty router (built-in routes only).
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers `handler` for exact matches of `method` + `path`.
    pub fn route(
        mut self,
        method: &'static str,
        path: impl Into<String>,
        handler: impl Fn(&HttpRequest, &mut HttpResponse) + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((method, path.into(), Box::new(handler)));
        self
    }

    /// Serve connections on the pooled workers (keep-alive) instead of
    /// inline on the accept thread.
    pub fn threaded(mut self, on: bool) -> Router {
        self.threaded = on;
        self
    }

    /// Size of the connection-worker pool (pooled mode only; min 1).
    ///
    /// Each worker serves one connection at a time — for its whole
    /// keep-alive lifetime, idle gaps included — so `n` is the hard bound
    /// on concurrently-handled requests, and the accept loop stops
    /// accepting beyond `2×n` pending connections. Size this to the
    /// request concurrency the handlers want to see (e.g. the batch
    /// `max_size` a `/predict` micro-batcher coalesces toward), not to
    /// the CPU count: workers spend their time blocked on I/O or batch
    /// replies, not computing.
    pub fn workers(mut self, n: usize) -> Router {
        self.workers = n.max(1);
        self
    }

    /// Cap on requests served over one keep-alive connection before the
    /// server closes it (min 1).
    pub fn max_requests_per_conn(mut self, n: usize) -> Router {
        self.max_requests_per_conn = n.max(1);
        self
    }

    /// How long a pooled worker waits for the next request on an idle
    /// keep-alive connection before closing it.
    pub fn idle_timeout_ms(mut self, ms: u64) -> Router {
        self.idle_timeout = Duration::from_millis(ms.max(1));
        self
    }

    /// Slowloris guard: once the first byte of a request arrives, the full
    /// head and body must follow within this long or the connection is
    /// closed — a half-written request cannot pin a worker.
    pub fn read_deadline_ms(mut self, ms: u64) -> Router {
        self.read_deadline = Duration::from_millis(ms.max(1));
        self
    }

    fn dispatch(&self, req: &HttpRequest, resp: &mut HttpResponse) {
        resp.clear();
        for (method, path, handler) in &self.routes {
            if *method == req.method && *path == req.path {
                handler(req, resp);
                return;
            }
        }
        builtin_route(self, req, resp);
    }
}

/// A background HTTP endpoint over the process-global telemetry registry.
///
/// `bind` spawns one accept thread that polls a non-blocking listener
/// (1–25 ms adaptive cadence) plus, in pooled mode, the connection-worker
/// threads; each scraped request gets a fresh
/// [`snapshot`](gmreg_telemetry::snapshot) of the registry, so scrapes see
/// everything flushed up to that instant and never block a training loop.
/// Dropping the server stops the threads and closes the listener.
///
/// Routes: `/metrics` (Prometheus text), `/status` (JSON), `/` (plain-text
/// index), plus whatever the [`Router`] given to [`ObsServer::bind_with`]
/// registers. Anything else is a 404.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving the built-in routes. The bound address —
    /// with the real port — is available via [`ObsServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<ObsServer> {
        Self::bind_with(addr, Router::new())
    }

    /// [`ObsServer::bind`] with custom routes layered over the built-ins.
    pub fn bind_with(addr: impl ToSocketAddrs, router: Router) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gmreg-obs".to_string())
            .spawn(move || accept_loop(listener, stop_flag, Arc::new(router)))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Hand-off queue between the accept loop and the connection workers.
struct ConnQueue {
    queue: Mutex<std::collections::VecDeque<TcpStream>>,
    wake: Condvar,
    /// Queue bound; the accept loop stops accepting once reached.
    cap: usize,
    /// Connections currently being served by a worker.
    live: AtomicUsize,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(stream);
        self.wake.notify_one();
    }

    fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn pop(&self, stop: &AtomicBool) -> Option<TcpStream> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .wake
                .wait_timeout(queue, IO_STEP)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, router: Arc<Router>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let conns = Arc::new(ConnQueue {
        queue: Mutex::new(std::collections::VecDeque::new()),
        wake: Condvar::new(),
        cap: router.workers * 2,
        live: AtomicUsize::new(0),
    });
    if router.threaded {
        for i in 0..router.workers {
            let router = Arc::clone(&router);
            let conns = Arc::clone(&conns);
            let stop = Arc::clone(&stop);
            let spawned = std::thread::Builder::new()
                .name(format!("gmreg-obs-conn-{i}"))
                .spawn(move || conn_worker(&conns, &router, &stop));
            if let Ok(handle) = spawned {
                workers.push(handle);
            }
        }
    }

    // Adaptive poll: 1 ms while connections are arriving, doubling back
    // off to the 25 ms idle cadence after consecutive empty polls.
    let mut idle_backoff = POLL_INTERVAL_MIN;
    // Inline mode reuses one connection state across connections.
    let mut inline_state = ConnState::new();
    while !stop.load(Ordering::Acquire) {
        if router.threaded && conns.len() >= conns.cap {
            // Every worker is busy and the hand-off queue is full: stop
            // accepting and let connections wait in the kernel backlog.
            gmreg_telemetry::counter_inc("serve.conn.backpressure");
            std::thread::sleep(POLL_INTERVAL_MIN);
            continue;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                idle_backoff = POLL_INTERVAL_MIN;
                let _ = stream.set_nodelay(true);
                if router.threaded {
                    conns.push(stream);
                } else {
                    // Serve one request inline: scrape traffic is one
                    // client every few seconds, not a web workload.
                    let _ = serve_inline(stream, &router, &mut inline_state);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle_backoff);
                idle_backoff = (idle_backoff * 2).min(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    conns.wake.notify_all();
    for handle in workers {
        let _ = handle.join();
    }
}

/// Reusable per-connection buffers: the request, the response render
/// target, the raw read accumulator, and the response write buffer. After
/// the first few requests warm the capacities up, serving a request
/// performs no heap allocation in this layer.
struct ConnState {
    req: HttpRequest,
    resp: HttpResponse,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Last time this worker flushed its telemetry sink; keep-alive
    /// connections can serve thousands of requests without ever exiting
    /// `serve_connection`, so the worker flushes on a ~1 s cadence to feed
    /// the per-second windowed-aggregation rings.
    last_flush: Instant,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            req: HttpRequest::default(),
            resp: HttpResponse::default(),
            read_buf: Vec::with_capacity(4096),
            write_buf: Vec::with_capacity(4096),
            last_flush: Instant::now(),
        }
    }
}

/// Stamps a freshly-read request with its trace identity and start time.
/// While a capture window is open the root span id is allocated up front —
/// stages queued behind the batcher need a parent to link to before the
/// root's own duration is known.
fn begin_request(req: &mut HttpRequest) {
    req.start_ns = gmreg_telemetry::trace::now_ns();
    req.trace = TraceCtx::next();
    if gmreg_telemetry::trace::capture_active() {
        req.trace.parent = gmreg_telemetry::alloc_span_id();
    }
}

/// Post-write bookkeeping for one completed request: always feeds the
/// per-stage histograms and the slow-request ring (traced handlers only —
/// plain timestamp arithmetic, no allocation), and materializes span
/// events only while a capture window is open.
fn finish_request(req: &HttpRequest, resp: &HttpResponse) {
    use gmreg_telemetry::AttrValue;
    let st = &resp.stages;
    if st.traced {
        for (name, v) in STAGE_HISTS.iter().zip(st.stage_values()) {
            gmreg_telemetry::histogram_record(name, v as f64);
        }
        #[cfg(feature = "debug")]
        crate::debug::record_completed(req.trace, st);
    }
    let root = req.trace.parent;
    if root == 0 {
        return;
    }
    // Capture window open: reconstruct the stage timeline as span events.
    // `assemble`/`compute` spans were already emitted on the dispatcher
    // thread (that is what draws the cross-thread flow links); the root
    // plus the conn-thread stages are emitted here.
    let end_ns = gmreg_telemetry::trace::now_ns();
    let total = end_ns.saturating_sub(req.start_ns);
    gmreg_telemetry::record_span_with_id(
        root,
        "serve.request.root.ns",
        req.start_ns,
        total,
        0,
        &[
            ("trace", AttrValue::U64(req.trace.id)),
            ("batch_mates", AttrValue::U64(st.batch_mates)),
            ("generation", AttrValue::U64(st.generation)),
        ],
    );
    if st.traced {
        let attrs: &[(&'static str, AttrValue)] = &[("trace", AttrValue::U64(req.trace.id))];
        gmreg_telemetry::record_span_at(
            "serve.stage.parse.ns",
            req.start_ns,
            st.parse,
            root,
            attrs,
        );
        gmreg_telemetry::record_span_at(
            "serve.stage.queue.ns",
            req.start_ns + st.parse,
            st.queue,
            root,
            attrs,
        );
        let write_start = end_ns.saturating_sub(st.write);
        gmreg_telemetry::record_span_at(
            "serve.stage.render.ns",
            write_start.saturating_sub(st.render),
            st.render,
            root,
            attrs,
        );
        gmreg_telemetry::record_span_at("serve.stage.write.ns", write_start, st.write, root, attrs);
    }
}

fn conn_worker(conns: &ConnQueue, router: &Router, stop: &AtomicBool) {
    let mut state = ConnState::new();
    while let Some(stream) = conns.pop(stop) {
        let live = conns.live.fetch_add(1, Ordering::AcqRel) + 1 + conns.len();
        gmreg_telemetry::gauge_set("serve.connections", live as f64);
        let _ = serve_connection(stream, router, &mut state, stop);
        let live = conns.live.fetch_sub(1, Ordering::AcqRel) - 1 + conns.len();
        gmreg_telemetry::gauge_set("serve.connections", live as f64);
        gmreg_telemetry::counter_inc("serve.conn.served");
        // Long-lived worker: push its per-thread counters into the global
        // registry so live scrapes see connection traffic as it happens.
        gmreg_telemetry::flush();
    }
}

/// Inline mode: one request, `Connection: close`, exactly the pre-pool
/// behavior (bounded by the 500 ms socket timeouts).
fn serve_inline(
    mut stream: TcpStream,
    router: &Router,
    state: &mut ConnState,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    state.read_buf.clear();
    let stop = AtomicBool::new(false);
    let outcome = read_request(
        &mut stream,
        &mut state.read_buf,
        &mut state.req,
        IO_TIMEOUT,
        IO_TIMEOUT,
        &stop,
    );
    if outcome != ReadOutcome::Request {
        return Ok(());
    }
    begin_request(&mut state.req);
    respond(&mut stream, router, state, true)
}

/// Pooled mode: loop requests on one connection with keep-alive.
fn serve_connection(
    mut stream: TcpStream,
    router: &Router,
    state: &mut ConnState,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_STEP))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    state.read_buf.clear();
    let mut served = 0usize;
    loop {
        let outcome = read_request(
            &mut stream,
            &mut state.read_buf,
            &mut state.req,
            router.idle_timeout,
            router.read_deadline,
            stop,
        );
        if outcome != ReadOutcome::Request {
            return Ok(());
        }
        begin_request(&mut state.req);
        served += 1;
        gmreg_telemetry::counter_inc("serve.conn.requests");
        let close = state.req.wants_close
            || state.req.too_large
            || state.req.unsupported_encoding
            || served >= router.max_requests_per_conn
            || stop.load(Ordering::Acquire);
        respond(&mut stream, router, state, close)?;
        if state.last_flush.elapsed() >= Duration::from_secs(1) {
            gmreg_telemetry::flush();
            state.last_flush = Instant::now();
        }
        if close {
            return Ok(());
        }
    }
}

/// Dispatch the parsed request and write the rendered response.
fn respond(
    stream: &mut TcpStream,
    router: &Router,
    state: &mut ConnState,
    close: bool,
) -> std::io::Result<()> {
    if state.req.too_large {
        state
            .resp
            .set_error("413 Payload Too Large", "request body too large");
    } else if state.req.unsupported_encoding {
        state.resp.set_error(
            "501 Not Implemented",
            "Transfer-Encoding is not supported; send a Content-Length body",
        );
    } else {
        router.dispatch(&state.req, &mut state.resp);
    }
    let write_started = Instant::now();
    render_response(&mut state.write_buf, &state.resp, close, state.req.trace);
    stream.write_all(&state.write_buf)?;
    stream.flush()?;
    state.resp.stages.write = write_started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    finish_request(&state.req, &state.resp);
    Ok(())
}

/// Serialize the head + body into the reused write buffer. A non-empty
/// trace id is echoed as the `X-Gmreg-Trace` header so clients can quote
/// the id when reporting a slow request.
fn render_response(out: &mut Vec<u8>, resp: &HttpResponse, close: bool, trace: TraceCtx) {
    use std::io::Write as _;
    out.clear();
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(resp.status.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(resp.content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    let _ = write!(out, "{}", resp.body.len());
    if trace.is_some() {
        out.extend_from_slice(b"\r\nX-Gmreg-Trace: ");
        out.extend_from_slice(&trace.id_hex());
    }
    if let Some(secs) = resp.retry_after_secs {
        out.extend_from_slice(b"\r\nRetry-After: ");
        let _ = write!(out, "{secs}");
    }
    if close {
        out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    } else {
        out.extend_from_slice(b"\r\nConnection: keep-alive\r\n\r\n");
    }
    out.extend_from_slice(resp.body.as_bytes());
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadOutcome {
    /// A complete request was parsed into the given [`HttpRequest`].
    Request,
    /// EOF, timeout, malformed framing, or shutdown: close the connection.
    Closed,
}

/// Reads one request off `stream` into `req`, reusing `buf` as the raw
/// accumulator across requests on the same connection (bytes past this
/// request's body — a pipelined next request — are kept for the next call).
///
/// Two deadlines govern the read: until the first byte of a new request
/// arrives the connection may sit idle for `idle_timeout`; once a request
/// has started (any byte buffered), its head and body must complete within
/// `read_deadline` — the slowloris guard.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    req: &mut HttpRequest,
    idle_timeout: Duration,
    read_deadline: Duration,
    stop: &AtomicBool,
) -> ReadOutcome {
    req.clear();
    let started = Instant::now();
    let mut chunk = [0u8; 4096];

    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return ReadOutcome::Closed; // unreasonable header section
        }
        if stop.load(Ordering::Acquire) {
            return ReadOutcome::Closed;
        }
        let deadline = if buf.is_empty() {
            idle_timeout
        } else {
            read_deadline
        };
        if started.elapsed() >= deadline {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Closed,
        }
    };

    let content_length = parse_head(&buf[..head_end], req);
    if req.too_large || req.unsupported_encoding {
        // The body is never read; the connection closes after the
        // 413/501, so the unread bytes can simply be discarded.
        buf.clear();
        return ReadOutcome::Request;
    }

    // Move the body out of the accumulator; bytes beyond it (a pipelined
    // next request) stay buffered for the next call.
    let body_end = head_end + 4;
    let have = (buf.len() - body_end).min(content_length);
    req.body.extend_from_slice(&buf[body_end..body_end + have]);
    buf.copy_within(body_end + have.., 0);
    buf.truncate(buf.len() - body_end - have);

    while req.body.len() < content_length {
        if stop.load(Ordering::Acquire) || started.elapsed() >= read_deadline {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                let need = content_length - req.body.len();
                let take = n.min(need);
                req.body.extend_from_slice(&chunk[..take]);
                buf.extend_from_slice(&chunk[take..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Request
}

/// Position of the `\r\n\r\n` head terminator, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the request line + headers in place (no allocation beyond the
/// reused `req` buffers). Returns the declared `Content-Length`.
fn parse_head(head: &[u8], req: &mut HttpRequest) -> usize {
    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        let l = if l.last() == Some(&b'\r') {
            &l[..l.len() - 1]
        } else {
            l
        };
        l
    });

    // Request line: METHOD SP PATH SP VERSION.
    let request_line = lines.next().unwrap_or(b"");
    let mut parts = request_line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let method = parts.next().unwrap_or(b"GET");
    for &b in method {
        req.method.push(b.to_ascii_uppercase() as char);
    }
    let target = parts.next().unwrap_or(b"/");
    let mut halves = target.splitn(2, |&b| b == b'?');
    let path = halves.next().unwrap_or(b"/");
    req.path.push_str(&String::from_utf8_lossy(path));
    if let Some(query) = halves.next() {
        req.query.push_str(&String::from_utf8_lossy(query));
    }
    let http10 = parts.next() == Some(b"HTTP/1.0");

    let mut content_length = 0usize;
    let mut connection_close = false;
    let mut connection_keep_alive = false;
    for line in lines {
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        let (key, value) = (&line[..colon], trim_ascii(&line[colon + 1..]));
        if key.eq_ignore_ascii_case(b"content-length") {
            content_length = std::str::from_utf8(value)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
        } else if key.eq_ignore_ascii_case(b"transfer-encoding") {
            // Chunked (or any other) transfer coding is not implemented;
            // without its framing the body bytes would be misread as the
            // next pipelined request, so flag it for a 501 + close.
            req.unsupported_encoding = true;
        } else if key.eq_ignore_ascii_case(b"connection") {
            if value.eq_ignore_ascii_case(b"close") {
                connection_close = true;
            } else if value.eq_ignore_ascii_case(b"keep-alive") {
                connection_keep_alive = true;
            }
        }
    }

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    req.wants_close = connection_close || (http10 && !connection_keep_alive);
    if content_length > MAX_BODY {
        req.too_large = true;
        return 0;
    }
    content_length
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let Some((first, rest)) = b.split_first() {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let Some((last, rest)) = b.split_last() {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

fn builtin_route(router: &Router, req: &HttpRequest, resp: &mut HttpResponse) {
    match req.path.as_str() {
        "/metrics" => {
            let body = resp.start("200 OK", "text/plain; version=0.0.4; charset=utf-8");
            crate::prometheus_text_into(&gmreg_telemetry::snapshot(), body);
        }
        "/status" => {
            let body = resp.start_json();
            crate::status_json_into(&gmreg_telemetry::snapshot(), body);
        }
        #[cfg(feature = "debug")]
        "/debug/requests" => crate::debug::requests_json(resp),
        #[cfg(feature = "debug")]
        "/debug/trace" => crate::debug::trace_capture(req, resp),
        "/" => {
            let body = resp.start_text();
            body.push_str(
                "gmreg-obs\n\n/metrics  Prometheus text exposition\n/status   training status JSON\n",
            );
            #[cfg(feature = "debug")]
            body.push_str(
                "/debug/requests  worst-N slow request traces\n/debug/trace     timed span capture (Chrome trace_event JSON)\n",
            );
            for (method, path, _) in &router.routes {
                body.push_str(method);
                body.push(' ');
                body.push_str(path);
                body.push('\n');
            }
        }
        _ => {
            let body = resp.start("404 Not Found", "text/plain; charset=utf-8");
            body.push_str("not found\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    /// Read exactly one keep-alive response off an open stream by
    /// `Content-Length` framing (the connection stays open after).
    fn read_keepalive_response(stream: &mut TcpStream) -> (String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed before a full head arrived");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .unwrap();
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        (head, String::from_utf8_lossy(&body).into_owned())
    }

    #[test]
    fn serves_metrics_status_index_and_404() {
        let _g = crate::prom::test_lock();
        gmreg_telemetry::reset();
        gmreg_telemetry::counter_add("t.srv", 5);
        gmreg_telemetry::flush();
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("gmreg_t_srv 5\n"), "{body}");

        let (head, body) = get(addr, "/status?verbose=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));

        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        drop(server);
        // The port is released after drop: a new bind to it succeeds.
        assert!(TcpListener::bind(addr).is_ok());
        gmreg_telemetry::reset();
    }

    #[test]
    fn custom_routes_receive_method_and_body() {
        let router = Router::new()
            .route(
                "POST",
                "/echo",
                |req: &HttpRequest, resp: &mut HttpResponse| {
                    resp.start_json()
                        .push_str(&String::from_utf8_lossy(&req.body));
                },
            )
            .route(
                "GET",
                "/pong",
                |_req: &HttpRequest, resp: &mut HttpResponse| {
                    resp.start_text().push_str("pong\n");
                },
            )
            .threaded(true);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let addr = server.local_addr();

        let (head, body) = post(addr, "/echo", "{\"x\": [1, 2]}");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"x\": [1, 2]}");

        let (head, body) = get(addr, "/pong");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "pong\n");

        // A GET to the POST-only route falls through to the built-in 404,
        // and the built-ins still work beside custom routes.
        let (head, _) = get(addr, "/echo");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // The index lists registered routes.
        let (_, body) = get(addr, "/");
        assert!(body.contains("POST /echo"), "{body}");
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let router = Router::new()
            .route(
                "GET",
                "/pong",
                |_req: &HttpRequest, resp: &mut HttpResponse| {
                    resp.start_text().push_str("pong\n");
                },
            )
            .threaded(true);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        for _ in 0..5 {
            stream
                .write_all(b"GET /pong HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let (head, body) = read_keepalive_response(&mut stream);
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            assert_eq!(body, "pong\n");
        }

        // An explicit close is honored: the server answers, then EOF.
        stream
            .write_all(b"GET /pong HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (head, _) = read_keepalive_response(&mut stream);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "bytes after a closed response");
    }

    #[test]
    fn http10_closes_unless_keep_alive_requested() {
        let router = Router::new().threaded(true);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let addr = server.local_addr();

        // HTTP/1.0 default: one response, then close.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("Connection: close"), "{response}");

        // HTTP/1.0 with an explicit keep-alive stays open.
        let mut stream = TcpStream::connect(addr).unwrap();
        for _ in 0..2 {
            stream
                .write_all(b"GET / HTTP/1.0\r\nHost: x\r\nConnection: keep-alive\r\n\r\n")
                .unwrap();
            let (head, _) = read_keepalive_response(&mut stream);
            assert!(head.contains("Connection: keep-alive"), "{head}");
        }
    }

    #[test]
    fn request_cap_closes_the_connection() {
        let router = Router::new().threaded(true).max_requests_per_conn(2);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (head, _) = read_keepalive_response(&mut stream);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (head, _) = read_keepalive_response(&mut stream);
        assert!(head.contains("Connection: close"), "capped: {head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    #[test]
    fn half_written_request_is_dropped_by_the_read_deadline() {
        let router = Router::new()
            .threaded(true)
            .workers(2)
            .idle_timeout_ms(200)
            .read_deadline_ms(200);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let addr = server.local_addr();

        // A client that sends half a request head and stalls forever.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET / HTTP/1.1\r\nHost:").unwrap();

        // A healthy client on the second worker is unaffected.
        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");

        // The stalled connection is closed within the read deadline
        // (plus scheduling slack), not pinned until the client gives up.
        slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let started = Instant::now();
        let mut buf = [0u8; 64];
        let n = slow.read(&mut buf).unwrap();
        assert_eq!(n, 0, "server must close a half-written request");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "close took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn chunked_transfer_encoding_gets_501_and_close() {
        let router = Router::new().threaded(true);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A chunked body the server cannot frame: it must answer 501 and
        // close rather than parse the chunk data as the next request.
        stream
            .write_all(
                b"POST / HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
                  5\r\nhello\r\n0\r\n\r\n",
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 501"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        assert_eq!(
            response.matches("HTTP/1.1").count(),
            1,
            "chunk bytes must not be served as another request: {response}"
        );
    }

    #[test]
    fn error_responses_escape_json() {
        let resp = HttpResponse::error("400 Bad Request", "a \"quoted\"\nproblem");
        assert_eq!(resp.body, "{\"error\": \"a \\\"quoted\\\"\\nproblem\"}\n");
    }

    #[test]
    fn parse_head_framing_and_connection_semantics() {
        let mut req = HttpRequest::default();
        let len = parse_head(
            b"POST /predict?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n",
            &mut req,
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(len, 12);
        assert!(!req.wants_close, "HTTP/1.1 defaults to keep-alive");

        req.clear();
        parse_head(b"GET / HTTP/1.0\r\n", &mut req);
        assert!(req.wants_close, "HTTP/1.0 defaults to close");

        req.clear();
        parse_head(b"GET / HTTP/1.1\r\nConnection: Close\r\n", &mut req);
        assert!(req.wants_close, "Connection: close is case-insensitive");

        req.clear();
        parse_head(
            b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n",
            &mut req,
        );
        assert!(req.too_large);

        req.clear();
        parse_head(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: Chunked\r\n",
            &mut req,
        );
        assert!(req.unsupported_encoding, "TE detection is case-insensitive");
    }
}

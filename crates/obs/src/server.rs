//! Minimal blocking HTTP server (std::net only) for `/metrics` and
//! `/status`. Compiled only with the `serve` feature.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop wakes to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Per-connection socket timeouts; a stalled scraper cannot wedge the
/// single accept thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// A background HTTP endpoint over the process-global telemetry registry.
///
/// `bind` spawns one thread that polls a non-blocking listener every
/// ~25 ms; each accepted request gets a fresh
/// [`snapshot`](gmreg_telemetry::snapshot) of the registry, so scrapes see
/// everything flushed up to that instant and never block a training loop.
/// Dropping the server stops the thread and closes the listener.
///
/// Routes: `/metrics` (Prometheus text), `/status` (JSON), `/` (plain-text
/// index). Anything else is a 404.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving. The bound address — with the real port —
    /// is available via [`ObsServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gmreg-obs".to_string())
            .spawn(move || accept_loop(listener, &stop_flag))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrape traffic is one client every few
                // seconds, not a web workload.
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or the buffer fills); the
    // request line is all we route on.
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    // Strip any query string before routing.
    let path = path.split('?').next().unwrap_or("/");

    let (code, content_type, body) = route(path);
    let response = format!(
        "HTTP/1.1 {code}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn route(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::prometheus_text(&gmreg_telemetry::snapshot()),
        ),
        "/status" => (
            "200 OK",
            "application/json",
            crate::status_json(&gmreg_telemetry::snapshot()),
        ),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "gmreg-obs\n\n/metrics  Prometheus text exposition\n/status   training status JSON\n"
                .to_string(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_status_index_and_404() {
        let _g = crate::prom::test_lock();
        gmreg_telemetry::reset();
        gmreg_telemetry::counter_add("t.srv", 5);
        gmreg_telemetry::flush();
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("gmreg_t_srv 5\n"), "{body}");

        let (head, body) = get(addr, "/status?verbose=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));

        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        drop(server);
        // The port is released after drop: a new bind to it succeeds.
        assert!(TcpListener::bind(addr).is_ok());
        gmreg_telemetry::reset();
    }
}

//! Minimal blocking HTTP server (std::net only) for `/metrics` and
//! `/status`, plus a [`Router`] so other crates (e.g. `gmreg-serve`) can
//! register additional routes — `/predict`, `/healthz`, `/reload` — next to
//! the built-in ones. Compiled only with the `serve` feature.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-poll ceiling: how long the loop may sleep between polls once
/// fully idle. Bounds both shutdown latency and idle wakeup cost.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Accept-poll floor, used while traffic is flowing. Every request on a
/// `Connection: close` protocol pays one accept poll, so under load the
/// poll must be much tighter than the idle ceiling — a fixed 25 ms here
/// put 25 ms on the serving path's p50.
const POLL_INTERVAL_MIN: Duration = Duration::from_millis(1);

/// Per-connection socket timeouts; a stalled scraper cannot wedge the
/// single accept thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request body accepted; anything bigger is answered with 413.
const MAX_BODY: usize = 4 << 20;

/// A parsed HTTP request handed to a route handler.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Raw request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

/// A route handler's reply.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status line text, e.g. `200 OK`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Retry-After` header value in seconds, emitted when set (back-off
    /// hint on 503s from overload shedding and deadline expiry).
    pub retry_after_secs: Option<u64>,
}

impl HttpResponse {
    /// `200 OK` with a JSON body.
    pub fn json(body: impl Into<String>) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type: "application/json",
            body: body.into(),
            retry_after_secs: None,
        }
    }

    /// `200 OK` with a plain-text body.
    pub fn text(body: impl Into<String>) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after_secs: None,
        }
    }

    /// An error response with a JSON body.
    pub fn error(status: &'static str, detail: &str) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            body: format!("{{\"error\": {}}}\n", json_escape(detail)),
            retry_after_secs: None,
        }
    }

    /// Attach a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after_secs = Some(secs);
        self
    }
}

/// Renders `s` as a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

type Handler = Box<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static>;

/// A set of custom routes layered over the built-in `/metrics`, `/status`
/// and `/` endpoints. Custom routes win on an exact `(method, path)` match;
/// unmatched requests fall through to the built-ins and finally to 404.
///
/// `threaded(true)` serves each accepted connection on its own thread —
/// required when handlers block (a `/predict` call waits for its
/// micro-batch, so inline handling would defeat request coalescing
/// entirely). The default inline mode is right for scrape-only traffic.
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, String, Handler)>,
    threaded: bool,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router")
            .field("routes", &paths)
            .field("threaded", &self.threaded)
            .finish()
    }
}

impl Router {
    /// An empty router (built-in routes only).
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers `handler` for exact matches of `method` + `path`.
    pub fn route(
        mut self,
        method: &'static str,
        path: impl Into<String>,
        handler: impl Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((method, path.into(), Box::new(handler)));
        self
    }

    /// Serve each connection on its own thread instead of inline on the
    /// accept thread.
    pub fn threaded(mut self, on: bool) -> Router {
        self.threaded = on;
        self
    }

    fn dispatch(&self, req: &HttpRequest) -> HttpResponse {
        for (method, path, handler) in &self.routes {
            if *method == req.method && *path == req.path {
                return handler(req);
            }
        }
        builtin_route(self, req)
    }
}

/// A background HTTP endpoint over the process-global telemetry registry.
///
/// `bind` spawns one thread that polls a non-blocking listener every
/// ~25 ms; each accepted request gets a fresh
/// [`snapshot`](gmreg_telemetry::snapshot) of the registry, so scrapes see
/// everything flushed up to that instant and never block a training loop.
/// Dropping the server stops the thread and closes the listener.
///
/// Routes: `/metrics` (Prometheus text), `/status` (JSON), `/` (plain-text
/// index), plus whatever the [`Router`] given to [`ObsServer::bind_with`]
/// registers. Anything else is a 404.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving the built-in routes. The bound address —
    /// with the real port — is available via [`ObsServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<ObsServer> {
        Self::bind_with(addr, Router::new())
    }

    /// [`ObsServer::bind`] with custom routes layered over the built-ins.
    pub fn bind_with(addr: impl ToSocketAddrs, router: Router) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gmreg-obs".to_string())
            .spawn(move || accept_loop(listener, &stop_flag, Arc::new(router)))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool, router: Arc<Router>) {
    // Live connection threads in threaded mode, so shutdown has a bound on
    // how much it leaves behind (threads are detached; they finish their
    // one response and exit).
    let live = Arc::new(AtomicUsize::new(0));
    // Adaptive poll: 1 ms while connections are arriving (each request
    // pays one poll of accept latency), doubling back off to the 25 ms
    // idle cadence after consecutive empty polls.
    let mut idle_backoff = POLL_INTERVAL_MIN;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                idle_backoff = POLL_INTERVAL_MIN;
                let _ = stream.set_nodelay(true);
                if router.threaded {
                    let router = Arc::clone(&router);
                    let conn_live = Arc::clone(&live);
                    live.fetch_add(1, Ordering::AcqRel);
                    let spawned = std::thread::Builder::new()
                        .name("gmreg-obs-conn".to_string())
                        .spawn(move || {
                            let _ = handle_connection(stream, &router);
                            conn_live.fetch_sub(1, Ordering::AcqRel);
                        });
                    if spawned.is_err() {
                        live.fetch_sub(1, Ordering::AcqRel);
                    }
                } else {
                    // Serve inline: scrape traffic is one client every few
                    // seconds, not a web workload.
                    let _ = handle_connection(stream, &router);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle_backoff);
                idle_backoff = (idle_backoff * 2).min(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads the request head (and `Content-Length` body, if any) off `stream`.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<HttpRequest>> {
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 64 * 1024 {
            return Ok(None); // unreasonable header section
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Ok(None),
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("GET").to_ascii_uppercase();
    let path = parts.next().unwrap_or("/");
    let path = path.split('?').next().unwrap_or("/").to_string();

    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Ok(Some(HttpRequest {
            method,
            path,
            // An oversized body is never read; the handler layer answers
            // 413 based on this marker.
            body: vec![0; MAX_BODY + 1],
        }));
    }

    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    body.truncate(content_length);
    Ok(Some(HttpRequest { method, path, body }))
}

fn handle_connection(mut stream: TcpStream, router: &Router) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    let Some(req) = read_request(&mut stream)? else {
        return Ok(());
    };
    let resp = if req.body.len() > MAX_BODY {
        HttpResponse::error("413 Payload Too Large", "request body too large")
    } else {
        router.dispatch(&req)
    };
    let retry_after = match resp.retry_after_secs {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let response = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        resp.status,
        resp.content_type,
        resp.body.len(),
        retry_after,
        resp.body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn builtin_route(router: &Router, req: &HttpRequest) -> HttpResponse {
    match req.path.as_str() {
        "/metrics" => HttpResponse {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: crate::prometheus_text(&gmreg_telemetry::snapshot()),
            retry_after_secs: None,
        },
        "/status" => HttpResponse::json(crate::status_json(&gmreg_telemetry::snapshot())),
        "/" => {
            let mut body = String::from(
                "gmreg-obs\n\n/metrics  Prometheus text exposition\n/status   training status JSON\n",
            );
            for (method, path, _) in &router.routes {
                body.push_str(&format!("{method} {path}\n"));
            }
            HttpResponse::text(body)
        }
        _ => HttpResponse {
            status: "404 Not Found",
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
            retry_after_secs: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_status_index_and_404() {
        let _g = crate::prom::test_lock();
        gmreg_telemetry::reset();
        gmreg_telemetry::counter_add("t.srv", 5);
        gmreg_telemetry::flush();
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("gmreg_t_srv 5\n"), "{body}");

        let (head, body) = get(addr, "/status?verbose=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));

        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        drop(server);
        // The port is released after drop: a new bind to it succeeds.
        assert!(TcpListener::bind(addr).is_ok());
        gmreg_telemetry::reset();
    }

    #[test]
    fn custom_routes_receive_method_and_body() {
        let router = Router::new()
            .route("POST", "/echo", |req: &HttpRequest| {
                HttpResponse::json(String::from_utf8_lossy(&req.body).into_owned())
            })
            .route("GET", "/pong", |_req: &HttpRequest| {
                HttpResponse::text("pong\n")
            })
            .threaded(true);
        let server = ObsServer::bind_with("127.0.0.1:0", router).unwrap();
        let addr = server.local_addr();

        let (head, body) = post(addr, "/echo", "{\"x\": [1, 2]}");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"x\": [1, 2]}");

        let (head, body) = get(addr, "/pong");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "pong\n");

        // A GET to the POST-only route falls through to the built-in 404,
        // and the built-ins still work beside custom routes.
        let (head, _) = get(addr, "/echo");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // The index lists registered routes.
        let (_, body) = get(addr, "/");
        assert!(body.contains("POST /echo"), "{body}");
    }

    #[test]
    fn error_responses_escape_json() {
        let resp = HttpResponse::error("400 Bad Request", "a \"quoted\"\nproblem");
        assert_eq!(resp.body, "{\"error\": \"a \\\"quoted\\\"\\nproblem\"}\n");
    }
}

//! Stamps the build with `git describe` output so `/status` can report
//! exactly which tree a running daemon was compiled from. Falls back to
//! `"unknown"` outside a git checkout (crates.io builds, exported
//! tarballs) — the build must never fail over provenance metadata.

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=GMREG_GIT_DESCRIBE={describe}");
    // Re-stamp when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}

//! Feature-gated telemetry facade: re-exports `gmreg-telemetry` when the
//! `telemetry` feature is enabled and compiles to inlined no-ops otherwise,
//! so instrumented call sites need no `cfg` of their own. Computations that
//! exist only to feed a metric (entropy, drift) must still sit inside a
//! `#[cfg(feature = "telemetry")]` block — a no-op function does not stop
//! its arguments from being evaluated.

#![allow(unused_imports, dead_code)]

#[cfg(feature = "telemetry")]
pub(crate) use gmreg_telemetry::{
    adopt_parent, alloc_span_id, counter_add, counter_inc, current_span_id, flush, gauge_set,
    histogram_record, record_span_at, record_span_with_id, span, AttrValue, Span,
};

#[cfg(feature = "telemetry")]
pub(crate) use gmreg_telemetry::trace::{capture_active, now_ns};

#[cfg(not(feature = "telemetry"))]
mod noop {
    /// Zero-cost stand-in for the telemetry span guard. The attribute
    /// builders consume and return `self` unchanged so annotated call
    /// sites compile to nothing.
    #[must_use = "a span measures the scope it is bound to"]
    pub struct Span;

    impl Span {
        /// Always 0 without the `telemetry` feature.
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }

        /// Always 0 without the `telemetry` feature.
        #[inline(always)]
        pub fn id(&self) -> u64 {
            0
        }

        #[inline(always)]
        pub fn with_u64(self, _key: &'static str, _value: u64) -> Self {
            self
        }

        #[inline(always)]
        pub fn with_i64(self, _key: &'static str, _value: i64) -> Self {
            self
        }

        #[inline(always)]
        pub fn with_f64(self, _key: &'static str, _value: f64) -> Self {
            self
        }

        #[inline(always)]
        pub fn with_str(self, _key: &'static str, _value: &'static str) -> Self {
            self
        }

        #[inline(always)]
        pub fn with_bool(self, _key: &'static str, _value: bool) -> Self {
            self
        }

        #[inline(always)]
        pub fn set_u64(&mut self, _key: &'static str, _value: u64) {}

        #[inline(always)]
        pub fn set_f64(&mut self, _key: &'static str, _value: f64) {}
    }

    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub fn counter_inc(_name: &'static str) {}

    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn histogram_record(_name: &'static str, _value: f64) {}

    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    /// Always 0 without the `telemetry` feature.
    #[inline(always)]
    pub fn current_span_id() -> u64 {
        0
    }

    #[inline(always)]
    pub fn adopt_parent(_parent: u64) {}

    #[inline(always)]
    pub fn flush() {}

    /// Stand-in for span attribute values (capture-mode spans only, so the
    /// no-op build never constructs one outside dead code).
    #[derive(Debug, Clone, Copy)]
    pub enum AttrValue {
        U64(u64),
        I64(i64),
        F64(f64),
        Str(&'static str),
        Bool(bool),
    }

    /// Always false without the `telemetry` feature: no capture windows.
    #[inline(always)]
    pub fn capture_active() -> bool {
        false
    }

    /// Always 0 without the `telemetry` feature.
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Always 0 without the `telemetry` feature.
    #[inline(always)]
    pub fn alloc_span_id() -> u64 {
        0
    }

    #[inline(always)]
    pub fn record_span_with_id(
        _id: u64,
        _name: &'static str,
        _start_ns: u64,
        _dur_ns: u64,
        _parent: u64,
        _attrs: &[(&'static str, AttrValue)],
    ) {
    }

    #[inline(always)]
    pub fn record_span_at(
        _name: &'static str,
        _start_ns: u64,
        _dur_ns: u64,
        _parent: u64,
        _attrs: &[(&'static str, AttrValue)],
    ) -> u64 {
        0
    }
}

#[cfg(not(feature = "telemetry"))]
pub(crate) use noop::*;

//! Micro-batching: coalesce concurrent `/predict` calls into one matmul.
//!
//! Callers enqueue rows onto a sharded bounded queue and block on a
//! one-shot reply channel. A dedicated batcher thread drains the shards
//! under a dual cutoff — dispatch as soon as `max_size` rows are waiting
//! *or* `max_wait_us` has elapsed since the batch opened, whichever comes
//! first — then runs the whole batch through
//! [`ServedModel::forward`](crate::model::ServedModel::forward) as a single
//! pool-dispatched matmul and fans the per-row results back out.
//!
//! ## Sharding
//!
//! The queue is split across [`NUM_SHARDS`] independently-locked FIFO
//! shards with one atomic length counter, so concurrent connection workers
//! enqueue without serializing on a single mutex. Capacity is reserved
//! on the atomic counter *before* touching any shard lock — a full queue
//! rejects in one CAS. A request larger than `queue_cap` is fed through in
//! chunks of at most `queue_cap` rows (each chunk reserved atomically), so
//! an oversized-but-legal request is served rather than permanently shed.
//! Rows are spread round-robin and the
//! dispatcher drains the shards round-robin, so each shard stays FIFO by
//! enqueue time and per-request deadlines still expire from shard fronts.
//! Because every prediction is bitwise independent of its batch-mates
//! (fixed per-row fold tree — see `crate::model`), the cross-shard
//! interleaving order cannot affect any output bit.
//!
//! ## Allocation discipline
//!
//! The dispatcher owns one [`Scratch`] reused across batches, rows are
//! `mem::take`n out of their [`Pending`]s (never cloned) and recycled
//! through a row pool the HTTP layer draws from, and the forward pass
//! writes into reused flat/probability buffers
//! ([`ServedModel::forward_into`](crate::model::ServedModel::forward_into)).
//! Steady-state batch assembly performs no heap allocation.
//!
//! Failure containment: the forward pass runs under `catch_unwind`, so a
//! worker panic mid-batch (e.g. an armed `pool.worker` failpoint) errors
//! only the requests riding in that batch; the queue is never wedged and
//! the next batch proceeds on a freshly-replaced pool worker.
//!
//! Back-pressure is load-shedding, not blocking: a full queue rejects the
//! request immediately (`serve.rejected`) instead of stacking unbounded
//! latency onto every later caller.

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use crate::tele;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Queue shards; a power of two so the round-robin cursor can mask.
/// Sized for the connection-worker pool (which defaults to `max_size`
/// workers, i.e. 32): a handful of threads contend per shard even under a
/// full house.
const NUM_SHARDS: usize = 8;

/// Micro-batch cutoffs and queue bound (`[batch]` in `serve.toml`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Dispatch as soon as this many rows are waiting.
    pub max_size: usize,
    /// ... or once the oldest waiting row is this old, in microseconds.
    /// `0` means dispatch immediately (batching only under burst arrival).
    pub max_wait_us: u64,
    /// Bounded queue depth; submissions beyond it are shed with
    /// [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Per-request deadline: a row that has sat in the queue this long —
    /// typically behind a batch stalled in its forward pass — is answered
    /// with [`ServeError::DeadlineExpired`] (HTTP 503 + `Retry-After`)
    /// instead of riding the next batch arbitrarily late. `0` disables
    /// expiry. Counted as `serve.deadline_expired`.
    pub max_wait_budget_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_size: 32,
            max_wait_us: 500,
            queue_cap: 1024,
            max_wait_budget_ms: 50,
        }
    }
}

/// One successful prediction: the generation that served it and the
/// probability.
pub type Prediction = (u64, f64);

/// Per-batch timing attribution riding back with every reply: when and how
/// long the dispatcher spent assembling the batch, how long the forward
/// pass took, and how many rows shared it. `Copy` and fixed-size, so the
/// reply channel stays allocation-free; a reply that never rode a batch
/// (shed, expired, shutdown) carries the zero stamp (`batch_mates == 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStamp {
    /// When batch assembly began, telemetry-epoch nanoseconds (0 when the
    /// `telemetry` feature is off).
    pub assemble_start_ns: u64,
    /// Drain + validation + row moves, nanoseconds.
    pub assemble_ns: u64,
    /// The batched forward pass, nanoseconds.
    pub compute_ns: u64,
    /// Rows that shared the batch.
    pub batch_mates: u64,
}

/// A reply is routed back to its slot in the submitting request, so one
/// multi-row request shares one channel instead of one channel per row.
type Reply = (usize, Result<Prediction, ServeError>, BatchStamp);

struct Pending {
    slot: usize,
    row: Vec<f32>,
    reply: mpsc::SyncSender<Reply>,
    enqueued: Instant,
    /// Root span id of the submitting request's trace while a capture
    /// window is open (0 otherwise): the dispatcher parents its
    /// assemble/compute spans to the first traced rider, which is what
    /// draws the cross-thread flow link in the Chrome trace.
    trace_parent: u64,
}

struct Shard {
    queue: Mutex<VecDeque<Pending>>,
}

struct Shared {
    cfg: BatchConfig,
    registry: Arc<ModelRegistry>,
    shards: Vec<Shard>,
    /// Rows queued across all shards; doubles as the capacity reservation
    /// counter (incremented before enqueue, decremented on drain/expiry).
    len: AtomicUsize,
    /// Round-robin enqueue cursor.
    cursor: AtomicUsize,
    /// Dispatcher wake channel (the shard locks are never held while
    /// waiting).
    wake: Mutex<()>,
    wake_cv: Condvar,
    shutdown: AtomicBool,
    /// Recycled row buffers: the dispatcher returns spent rows here and
    /// the HTTP layer draws request rows from it, so steady-state traffic
    /// reuses the same `Vec<f32>`s round after round.
    row_pool: Mutex<Vec<Vec<f32>>>,
}

impl Shared {
    fn shard_for(&self, ticket: usize) -> &Shard {
        &self.shards[ticket & (NUM_SHARDS - 1)]
    }

    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, VecDeque<Pending>> {
        self.shards[i].queue.lock().expect("batch queue poisoned")
    }
}

/// Handle to the batching queue plus its dispatcher thread. Dropping the
/// batcher drains the queue (pending callers get
/// [`ServeError::ShuttingDown`]) and joins the thread.
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the dispatcher thread over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, cfg: BatchConfig) -> Batcher {
        let shared = Arc::new(Shared {
            cfg,
            registry,
            shards: (0..NUM_SHARDS)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                })
                .collect(),
            len: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            wake: Mutex::new(()),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            row_pool: Mutex::new(Vec::new()),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gmreg-serve-batch".to_string())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn batch dispatcher")
        };
        Batcher {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// The batching configuration this batcher runs under (e.g. so the
    /// HTTP layer can size its connection-worker pool to `max_size`).
    pub fn config(&self) -> BatchConfig {
        self.shared.cfg
    }

    /// A recycled row buffer (cleared), or a fresh one if the pool is dry.
    /// Request parsing fills these so spent batch rows cycle back into new
    /// requests instead of being reallocated.
    pub fn take_row(&self) -> Vec<f32> {
        let mut pool = self.shared.row_pool.lock().expect("row pool poisoned");
        pool.pop().unwrap_or_default()
    }

    /// Return unused row buffers to the pool (e.g. rows parsed from a
    /// request that was rejected before submission).
    pub fn recycle_rows(&self, rows: &mut Vec<Vec<f32>>) {
        let mut pool = self.shared.row_pool.lock().expect("row pool poisoned");
        for mut row in rows.drain(..) {
            row.clear();
            if pool.len() < self.shared.cfg.queue_cap {
                pool.push(row);
            }
        }
    }

    /// Enqueue one row and block until its batch completes.
    ///
    /// Counts `serve.requests` and records end-to-end latency into the
    /// `serve.request.ns` histogram on every accepted request, including
    /// ones whose batch subsequently failed.
    pub fn submit(&self, row: Vec<f32>) -> Result<Prediction, ServeError> {
        let mut rows = vec![row];
        let mut out = Vec::with_capacity(1);
        self.submit_all(&mut rows, &mut out);
        out.pop().expect("one row in, one result out")
    }

    /// Enqueue every row of one request and block until all replies are in;
    /// `out[i]` is the result for `rows[i]`. Capacity is reserved
    /// atomically per chunk of at most `queue_cap` rows: a request that
    /// fits the queue is admitted or shed whole in one CAS, and a request
    /// *larger* than `queue_cap` is served in sequential chunks instead of
    /// being unservable. If a chunk cannot reserve, it and every row after
    /// it are shed with [`ServeError::QueueFull`]. Rows are consumed
    /// (moved into the queue and later recycled through the row pool; shed
    /// rows are recycled immediately).
    pub fn submit_all(
        &self,
        rows: &mut Vec<Vec<f32>>,
        out: &mut Vec<Result<Prediction, ServeError>>,
    ) {
        self.submit_all_traced(rows, out, 0);
    }

    /// [`Batcher::submit_all`] carrying the submitting request's root span
    /// id (`0` when no capture window is open — the dispatcher then emits
    /// no spans for this request), returning the request's batch-side
    /// latency attribution: `assemble_ns` and `compute_ns` summed over the
    /// distinct batches its rows rode (sequential on the one dispatcher
    /// thread, so the sum is the critical-path time), `batch_mates` from
    /// the largest such batch. The caller derives queue wait as its own
    /// blocking time minus these two.
    pub fn submit_all_traced(
        &self,
        rows: &mut Vec<Vec<f32>>,
        out: &mut Vec<Result<Prediction, ServeError>>,
        trace_parent: u64,
    ) -> BatchStamp {
        let mut stamp = BatchStamp::default();
        let n = rows.len();
        out.clear();
        if n == 0 {
            return stamp;
        }
        let shared = &*self.shared;
        let started = Instant::now();
        // Pre-fill with ShuttingDown so a dispatcher death mid-request
        // leaves the unanswered slots with a sane error.
        for _ in 0..n {
            out.push(Err(ServeError::ShuttingDown));
        }
        let cap = shared.cfg.queue_cap.max(1);
        let mut base = 0usize;
        while base < n {
            if shared.shutdown.load(Ordering::Acquire) {
                // `out[base..]` already holds ShuttingDown placeholders.
                self.recycle_rows(rows);
                break;
            }
            let chunk = (n - base).min(cap);
            // Per-chunk capacity reservation on the atomic length: no
            // shard lock is touched unless the whole chunk fits.
            let reserved = shared
                .len
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                    if cur + chunk > cap {
                        None
                    } else {
                        Some(cur + chunk)
                    }
                })
                .is_ok();
            if !reserved {
                tele::counter_add("serve.rejected", (n - base) as u64);
                // Shed everything not yet submitted, returning the parsed
                // row buffers to the pool — overload is exactly when fresh
                // allocations hurt most.
                self.recycle_rows(rows);
                for slot in out[base..].iter_mut() {
                    *slot = Err(ServeError::QueueFull);
                }
                break;
            }

            let (reply_tx, reply_rx) = mpsc::sync_channel(chunk);
            let enqueued = Instant::now();
            for (i, row) in rows.drain(..chunk).enumerate() {
                let ticket = shared.cursor.fetch_add(1, Ordering::Relaxed);
                shared
                    .shard_for(ticket)
                    .queue
                    .lock()
                    .expect("batch queue poisoned")
                    .push_back(Pending {
                        slot: base + i,
                        row,
                        reply: reply_tx.clone(),
                        enqueued,
                        trace_parent,
                    });
            }
            drop(reply_tx);
            // Pair the notify with the wake mutex so the dispatcher either
            // sees the new length before sleeping or is woken from its wait.
            drop(shared.wake.lock().expect("wake lock poisoned"));
            shared.wake_cv.notify_one();

            let mut received = 0;
            // Batches are sequential on the one dispatcher thread and each
            // batch's replies are sent together, so a change in
            // `assemble_start_ns` marks a new distinct batch to accumulate.
            let mut last_batch_start = 0u64;
            while received < chunk {
                match reply_rx.recv() {
                    Ok((slot, result, batch)) => {
                        out[slot] = result;
                        received += 1;
                        if batch.batch_mates > 0 && batch.assemble_start_ns != last_batch_start {
                            last_batch_start = batch.assemble_start_ns;
                            if stamp.batch_mates == 0 {
                                stamp.assemble_start_ns = batch.assemble_start_ns;
                            }
                            stamp.assemble_ns += batch.assemble_ns;
                            stamp.compute_ns += batch.compute_ns;
                        }
                        stamp.batch_mates = stamp.batch_mates.max(batch.batch_mates);
                    }
                    // Dispatcher gone mid-request: remaining slots keep the
                    // ShuttingDown placeholder.
                    Err(_) => break,
                }
            }
            base += chunk;
        }
        if base > 0 {
            let elapsed_ns = started.elapsed().as_nanos() as f64;
            tele::counter_add("serve.requests", base as u64);
            for _ in 0..base {
                tele::histogram_record("serve.request.ns", elapsed_ns);
            }
        }
        stamp
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_cv.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Dispatcher-owned buffers reused across batches.
struct Scratch {
    batch: Vec<Pending>,
    valid: Vec<Pending>,
    rows: Vec<Vec<f32>>,
    flat: Vec<f32>,
    probs: Vec<f64>,
}

fn dispatch_loop(shared: &Shared) {
    let mut scratch = Scratch {
        batch: Vec::new(),
        valid: Vec::new(),
        rows: Vec::new(),
        flat: Vec::new(),
        probs: Vec::new(),
    };
    let mut drain_from = 0usize;
    loop {
        let drain_started = collect_batch(shared, &mut scratch.batch, &mut drain_from);
        if scratch.batch.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) {
                drain_on_shutdown(shared);
                return;
            }
            continue;
        }
        run_batch(shared, &mut scratch, drain_started);
        // The dispatcher is long-lived: push its per-thread counters into
        // the global registry so live scrapes see batches as they happen.
        tele::flush();
    }
}

/// Expire every queued row older than the per-request budget: each gets an
/// immediate [`ServeError::DeadlineExpired`] reply (503 + `Retry-After` at
/// the HTTP layer) instead of riding the next batch. No-op when the budget
/// is 0. Each shard is FIFO by enqueue time, so expired rows always form a
/// prefix of every shard.
fn expire_overdue(shared: &Shared, budget_ms: u64) {
    if budget_ms == 0 {
        return;
    }
    let budget = Duration::from_millis(budget_ms);
    let now = Instant::now();
    for i in 0..NUM_SHARDS {
        let mut queue = shared.lock_shard(i);
        while let Some(front) = queue.front() {
            let waited = now.saturating_duration_since(front.enqueued);
            if waited < budget {
                break;
            }
            let pending = queue.pop_front().expect("front exists");
            shared.len.fetch_sub(1, Ordering::AcqRel);
            tele::counter_inc("serve.deadline_expired");
            let _ = pending.reply.send((
                pending.slot,
                Err(ServeError::DeadlineExpired {
                    waited_ms: waited.as_millis() as u64,
                }),
                BatchStamp::default(),
            ));
        }
    }
}

/// Enqueue time of the oldest row across all shards, if any.
fn oldest_enqueued(shared: &Shared) -> Option<Instant> {
    let mut oldest: Option<Instant> = None;
    for i in 0..NUM_SHARDS {
        let queue = shared.lock_shard(i);
        if let Some(front) = queue.front() {
            oldest = Some(match oldest {
                Some(o) => o.min(front.enqueued),
                None => front.enqueued,
            });
        }
    }
    oldest
}

/// Block until at least one row is waiting, then hold the batch open until
/// it fills to `max_size` or the wait cutoff expires. Rows stay in their
/// shards for the whole window — a row that out-sits its per-request budget
/// mid-window is expired rather than collected — and are only drained into
/// `batch` when the window closes. Shards are drained round-robin from a
/// rotating start so no shard is systematically favored.
///
/// Returns when the drain began — the start of the batch's *assemble*
/// stage. The open wait window before it counts as the riders' queue time,
/// not assembly.
fn collect_batch(shared: &Shared, batch: &mut Vec<Pending>, drain_from: &mut usize) -> Instant {
    batch.clear();
    let budget_ms = shared.cfg.max_wait_budget_ms;
    // Shed whatever went overdue while the previous batch was running —
    // the stalled-batch case the per-request deadline exists for.
    expire_overdue(shared, budget_ms);
    {
        let mut guard = shared.wake.lock().expect("wake lock poisoned");
        while shared.len.load(Ordering::Acquire) == 0 {
            if shared.shutdown.load(Ordering::Acquire) {
                return Instant::now();
            }
            let (g, _) = shared
                .wake_cv
                .wait_timeout(guard, Duration::from_millis(50))
                .expect("wake lock poisoned");
            guard = g;
        }
    }
    let deadline = Instant::now() + Duration::from_micros(shared.cfg.max_wait_us);
    while shared.len.load(Ordering::Acquire) < shared.cfg.max_size
        && !shared.shutdown.load(Ordering::Acquire)
    {
        expire_overdue(shared, budget_ms);
        let now = Instant::now();
        if shared.len.load(Ordering::Acquire) == 0 || now >= deadline {
            break;
        }
        // Wake in time for both the batch cutoff and the oldest row's
        // expiry, whichever lands first.
        let mut wait = deadline - now;
        if budget_ms > 0 {
            if let Some(oldest) = oldest_enqueued(shared) {
                let expiry = oldest + Duration::from_millis(budget_ms);
                wait = wait.min(
                    expiry
                        .saturating_duration_since(now)
                        .max(Duration::from_millis(1)),
                );
            }
        }
        let guard = shared.wake.lock().expect("wake lock poisoned");
        let _ = shared
            .wake_cv
            .wait_timeout(guard, wait)
            .expect("wake lock poisoned");
    }
    expire_overdue(shared, budget_ms);
    // Window closed: drain up to max_size rows, round-robin across shards.
    let drain_started = Instant::now();
    let max = shared.cfg.max_size;
    for step in 0..NUM_SHARDS {
        if batch.len() >= max {
            break;
        }
        let i = (*drain_from + step) & (NUM_SHARDS - 1);
        let mut queue = shared.lock_shard(i);
        while batch.len() < max {
            match queue.pop_front() {
                Some(pending) => {
                    shared.len.fetch_sub(1, Ordering::AcqRel);
                    batch.push(pending);
                }
                None => break,
            }
        }
    }
    *drain_from = (*drain_from + 1) & (NUM_SHARDS - 1);
    drain_started
}

fn drain_on_shutdown(shared: &Shared) {
    for i in 0..NUM_SHARDS {
        let mut queue = shared.lock_shard(i);
        for pending in queue.drain(..) {
            shared.len.fetch_sub(1, Ordering::AcqRel);
            let _ = pending.reply.send((
                pending.slot,
                Err(ServeError::ShuttingDown),
                BatchStamp::default(),
            ));
        }
    }
}

fn run_batch(shared: &Shared, scratch: &mut Scratch, drain_started: Instant) {
    let assemble_start_ns = tele::now_ns();
    let Some(model) = shared.registry.current() else {
        for pending in scratch.batch.drain(..) {
            let _ = pending.reply.send((
                pending.slot,
                Err(ServeError::NoModel),
                BatchStamp::default(),
            ));
        }
        return;
    };

    // Reject malformed rows individually so one bad request cannot fail
    // the well-formed rows sharing its batch.
    scratch.valid.clear();
    scratch.rows.clear();
    for mut pending in scratch.batch.drain(..) {
        if pending.row.len() == model.dim() {
            scratch.rows.push(std::mem::take(&mut pending.row));
            scratch.valid.push(pending);
        } else {
            let _ = pending.reply.send((
                pending.slot,
                Err(ServeError::DimensionMismatch {
                    expected: model.dim(),
                    actual: pending.row.len(),
                }),
                BatchStamp::default(),
            ));
        }
    }
    if scratch.valid.is_empty() {
        return;
    }

    tele::counter_inc("serve.batches");
    tele::histogram_record("serve.batch_size", scratch.rows.len() as f64);

    let batch_mates = scratch.rows.len() as u64;
    let assemble_ns = drain_started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    // While a capture window is open, the dispatcher materializes its two
    // stages as spans parented to the first traced rider's root — the
    // parent lives on a connection-worker thread, which is exactly what
    // draws the cross-thread flow arrow in the Chrome trace. The compute
    // span id is adopted as this thread's default parent before the
    // forward pass so the pool's fork/matmul spans nest under it.
    let mut compute_id = 0u64;
    if tele::capture_active() {
        let trace_root = scratch
            .valid
            .iter()
            .map(|p| p.trace_parent)
            .find(|&p| p != 0);
        if let Some(root) = trace_root {
            tele::record_span_at(
                "serve.stage.assemble.ns",
                assemble_start_ns,
                assemble_ns,
                root,
                &[("batch_mates", tele::AttrValue::U64(batch_mates))],
            );
            compute_id = tele::alloc_span_id();
            tele::adopt_parent(compute_id);
        }
    }

    let compute_started = Instant::now();
    let compute_start_ns = tele::now_ns();
    let forward = catch_unwind(AssertUnwindSafe(|| {
        model.forward_into(&scratch.rows, &mut scratch.flat, &mut scratch.probs)
    }));
    let compute_ns = compute_started
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64;
    if compute_id != 0 {
        tele::adopt_parent(0);
        let root = scratch
            .valid
            .iter()
            .map(|p| p.trace_parent)
            .find(|&p| p != 0)
            .unwrap_or(0);
        tele::record_span_with_id(
            compute_id,
            "serve.stage.compute.ns",
            compute_start_ns,
            compute_ns,
            root,
            &[
                ("batch_mates", tele::AttrValue::U64(batch_mates)),
                ("generation", tele::AttrValue::U64(model.generation)),
            ],
        );
    }
    let stamp = BatchStamp {
        assemble_start_ns,
        assemble_ns,
        compute_ns,
        batch_mates,
    };

    match forward {
        Ok(Ok(())) => {
            debug_assert_eq!(scratch.probs.len(), scratch.valid.len());
            for (pending, &prob) in scratch.valid.drain(..).zip(scratch.probs.iter()) {
                let _ = pending
                    .reply
                    .send((pending.slot, Ok((model.generation, prob)), stamp));
            }
        }
        Ok(Err(e)) => {
            tele::counter_inc("serve.batch.failures");
            let msg = e.to_string();
            for pending in scratch.valid.drain(..) {
                let _ = pending.reply.send((
                    pending.slot,
                    Err(ServeError::BatchFailed(msg.clone())),
                    stamp,
                ));
            }
        }
        Err(panic) => {
            tele::counter_inc("serve.batch.failures");
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "forward pass panicked".to_string());
            for pending in scratch.valid.drain(..) {
                let _ = pending.reply.send((
                    pending.slot,
                    Err(ServeError::BatchFailed(msg.clone())),
                    stamp,
                ));
            }
        }
    }
    // Recycle the spent row buffers for the next requests.
    let mut pool = shared.row_pool.lock().expect("row pool poisoned");
    for mut row in scratch.rows.drain(..) {
        row.clear();
        if pool.len() < shared.cfg.queue_cap {
            pool.push(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServedModel;
    use gmreg_core::durable::CheckpointManager;
    use gmreg_linear::LinearFitState;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gmreg-serve-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_registry(dir: &PathBuf, dim: usize) -> Arc<ModelRegistry> {
        let mgr = CheckpointManager::new(dir, "linfit", 4).unwrap();
        mgr.save(&LinearFitState {
            next_epoch: 1,
            iterations: 10,
            current_lr: 0.1,
            w: (0..dim).map(|i| (i as f32 - 1.0) * 0.3).collect(),
            bias: -0.25,
            velocity: vec![0.0; dim],
            bias_velocity: 0.0,
            gm: None,
            degraded_beta: None,
        })
        .unwrap();
        let reg = Arc::new(ModelRegistry::new(dir, "linfit", 4).unwrap());
        reg.reload().unwrap();
        reg
    }

    #[test]
    fn submit_matches_direct_forward_bitwise() {
        let dir = tmp_dir("direct");
        let reg = seeded_registry(&dir, 4);
        let reference: Arc<ServedModel> = reg.current().unwrap();
        let batcher = Batcher::new(Arc::clone(&reg), BatchConfig::default());

        let row = vec![0.5, -0.25, 0.125, 1.0];
        let (generation, prob) = batcher.submit(row.clone()).unwrap();
        let direct = reference.forward(std::slice::from_ref(&row)).unwrap()[0];
        assert_eq!(generation, 0);
        assert_eq!(prob.to_bits(), direct.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_all_returns_results_in_request_order() {
        let dir = tmp_dir("multirow");
        let reg = seeded_registry(&dir, 4);
        let reference: Arc<ServedModel> = reg.current().unwrap();
        let batcher = Batcher::new(Arc::clone(&reg), BatchConfig::default());

        let rows: Vec<Vec<f32>> = (0..11)
            .map(|i| (0..4).map(|j| (i * 4 + j) as f32 * 0.05 - 0.3).collect())
            .collect();
        let mut submitted = rows.clone();
        let mut out = Vec::new();
        batcher.submit_all(&mut submitted, &mut out);
        assert!(submitted.is_empty(), "rows are consumed");
        assert_eq!(out.len(), rows.len());
        let direct = reference.forward(&rows).unwrap();
        for (i, result) in out.iter().enumerate() {
            let (generation, prob) = result.as_ref().unwrap();
            assert_eq!(*generation, 0);
            assert_eq!(
                prob.to_bits(),
                direct[i].to_bits(),
                "row {i} diverged between submit_all and direct forward"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_submission_returns_batch_attribution() {
        let dir = tmp_dir("stamp");
        let reg = seeded_registry(&dir, 4);
        let batcher = Batcher::new(Arc::clone(&reg), BatchConfig::default());
        let mut rows: Vec<Vec<f32>> = (0..3).map(|_| vec![0.1, 0.2, 0.3, 0.4]).collect();
        let mut out = Vec::new();
        let stamp = batcher.submit_all_traced(&mut rows, &mut out, 0);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
        assert!(
            (1..=32).contains(&stamp.batch_mates),
            "rows rode a real batch: {stamp:?}"
        );
        assert!(stamp.compute_ns > 0, "forward pass took measurable time");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_all_larger_than_queue_cap_is_served_in_chunks() {
        let dir = tmp_dir("cap");
        let reg = seeded_registry(&dir, 4);
        let reference: Arc<ServedModel> = reg.current().unwrap();
        let batcher = Batcher::new(
            Arc::clone(&reg),
            BatchConfig {
                max_size: 4,
                max_wait_us: 1_000,
                queue_cap: 8,
                max_wait_budget_ms: 50,
            },
        );
        // 9 rows > queue_cap 8: served as an 8-row chunk then a 1-row
        // chunk, not permanently shed.
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..4).map(|j| (i * 4 + j) as f32 * 0.03 - 0.4).collect())
            .collect();
        let mut submitted = rows.clone();
        let mut out = Vec::new();
        batcher.submit_all(&mut submitted, &mut out);
        assert!(submitted.is_empty(), "rows are consumed");
        assert_eq!(out.len(), 9);
        let direct = reference.forward(&rows).unwrap();
        for (i, result) in out.iter().enumerate() {
            let (_, prob) = result.as_ref().unwrap_or_else(|e| panic!("row {i}: {e}"));
            assert_eq!(prob.to_bits(), direct[i].to_bits(), "row {i} diverged");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_sheds_request_and_recycles_its_rows() {
        let dir = tmp_dir("full");
        let reg = seeded_registry(&dir, 4);
        // A wide-open batch window (500 ms, max_size never reached) keeps
        // the 4 queued rows parked, so the queue is genuinely full when
        // the second request arrives.
        let batcher = Arc::new(Batcher::new(
            reg,
            BatchConfig {
                max_size: 64,
                max_wait_us: 500_000,
                queue_cap: 4,
                max_wait_budget_ms: 0,
            },
        ));
        let filler = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                let mut rows: Vec<Vec<f32>> = (0..4).map(|_| vec![0.1, 0.2, 0.3, 0.4]).collect();
                let mut out = Vec::new();
                batcher.submit_all(&mut rows, &mut out);
                out
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        let err = batcher.submit(vec![0.5, 0.6, 0.7, 0.8]).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull), "{err:?}");
        // The shed request's parsed row buffer went back to the pool
        // instead of being dropped (the filler batch is still parked, so
        // the pool holds only the shed row).
        let recycled = batcher.take_row();
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= 4, "shed row buffer was recycled");
        for result in filler.join().unwrap() {
            assert!(result.is_ok(), "{result:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_registry_yields_no_model() {
        let dir = tmp_dir("nomodel");
        let reg = Arc::new(ModelRegistry::new(&dir, "linfit", 4).unwrap());
        let batcher = Batcher::new(reg, BatchConfig::default());
        assert!(matches!(
            batcher.submit(vec![1.0]).unwrap_err(),
            ServeError::NoModel
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dimension_fails_only_that_request() {
        let dir = tmp_dir("baddim");
        let reg = seeded_registry(&dir, 4);
        let batcher = Arc::new(Batcher::new(reg, BatchConfig::default()));

        let b2 = Arc::clone(&batcher);
        let good = std::thread::spawn(move || b2.submit(vec![0.1, 0.2, 0.3, 0.4]));
        let bad = batcher.submit(vec![1.0, 2.0]);
        assert!(matches!(
            bad.unwrap_err(),
            ServeError::DimensionMismatch {
                expected: 4,
                actual: 2
            }
        ));
        assert!(good.join().unwrap().is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_request_past_budget_expires_with_deadline_error() {
        let dir = tmp_dir("deadline");
        let reg = seeded_registry(&dir, 4);
        // A batch that stays open far longer than the 10 ms budget: the
        // dispatcher waits for max_size rows that never come, so the lone
        // queued row must be expired by the budget sweep, not served.
        let batcher = Batcher::new(
            reg,
            BatchConfig {
                max_size: 64,
                max_wait_us: 400_000,
                queue_cap: 8,
                max_wait_budget_ms: 10,
            },
        );
        let started = Instant::now();
        let err = batcher.submit(vec![0.1, 0.2, 0.3, 0.4]).unwrap_err();
        assert!(
            matches!(err, ServeError::DeadlineExpired { waited_ms } if waited_ms >= 10),
            "{err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "expiry must cut the wait short of the 400ms batch cutoff"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_zero_disables_expiry() {
        let dir = tmp_dir("nodeadline");
        let reg = seeded_registry(&dir, 4);
        let batcher = Batcher::new(
            reg,
            BatchConfig {
                max_size: 4,
                max_wait_us: 30_000,
                queue_cap: 8,
                max_wait_budget_ms: 0,
            },
        );
        // 30ms batch window > any disabled budget: the request rides the
        // batch and succeeds.
        assert!(batcher.submit(vec![0.1, 0.2, 0.3, 0.4]).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn row_pool_recycles_spent_buffers() {
        let dir = tmp_dir("rowpool");
        let reg = seeded_registry(&dir, 4);
        let batcher = Batcher::new(reg, BatchConfig::default());
        // Before any traffic the pool is dry.
        assert!(batcher.take_row().is_empty());
        batcher.submit(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        // The spent row is back in the pool with its capacity intact.
        let recycled = batcher.take_row();
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= 4, "spent row buffer was recycled");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_cleanly() {
        let dir = tmp_dir("shutdown");
        let reg = seeded_registry(&dir, 4);
        let batcher = Batcher::new(reg, BatchConfig::default());
        drop(batcher); // must not hang
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Micro-batching: coalesce concurrent `/predict` calls into one matmul.
//!
//! Callers enqueue single rows onto a bounded queue and block on a
//! one-shot reply channel. A dedicated batcher thread drains the queue
//! under a dual cutoff — dispatch as soon as `max_size` rows are waiting
//! *or* `max_wait_us` has elapsed since the batch opened, whichever comes
//! first — then runs the whole batch through
//! [`ServedModel::forward`](crate::model::ServedModel::forward) as a single
//! pool-dispatched matmul and fans the per-row results back out.
//!
//! Failure containment: the forward pass runs under `catch_unwind`, so a
//! worker panic mid-batch (e.g. an armed `pool.worker` failpoint) errors
//! only the requests riding in that batch; the queue is never wedged and
//! the next batch proceeds on a freshly-replaced pool worker.
//!
//! Back-pressure is load-shedding, not blocking: a full queue rejects the
//! request immediately (`serve.rejected`) instead of stacking unbounded
//! latency onto every later caller.

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use crate::tele;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Micro-batch cutoffs and queue bound (`[batch]` in `serve.toml`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Dispatch as soon as this many rows are waiting.
    pub max_size: usize,
    /// ... or once the oldest waiting row is this old, in microseconds.
    /// `0` means dispatch immediately (batching only under burst arrival).
    pub max_wait_us: u64,
    /// Bounded queue depth; submissions beyond it are shed with
    /// [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Per-request deadline: a row that has sat in the queue this long —
    /// typically behind a batch stalled in its forward pass — is answered
    /// with [`ServeError::DeadlineExpired`] (HTTP 503 + `Retry-After`)
    /// instead of riding the next batch arbitrarily late. `0` disables
    /// expiry. Counted as `serve.deadline_expired`.
    pub max_wait_budget_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_size: 32,
            max_wait_us: 500,
            queue_cap: 1024,
            max_wait_budget_ms: 50,
        }
    }
}

/// One successful prediction: the generation that served it and the
/// probability.
pub type Prediction = (u64, f64);

struct Pending {
    row: Vec<f32>,
    reply: mpsc::SyncSender<Result<Prediction, ServeError>>,
    enqueued: Instant,
}

struct Shared {
    cfg: BatchConfig,
    registry: Arc<ModelRegistry>,
    queue: Mutex<VecDeque<Pending>>,
    wake: Condvar,
    shutdown: AtomicBool,
}

/// Handle to the batching queue plus its dispatcher thread. Dropping the
/// batcher drains the queue (pending callers get
/// [`ServeError::ShuttingDown`]) and joins the thread.
pub struct Batcher {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the dispatcher thread over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, cfg: BatchConfig) -> Batcher {
        let shared = Arc::new(Shared {
            cfg,
            registry,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gmreg-serve-batch".to_string())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn batch dispatcher")
        };
        Batcher {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Enqueue one row and block until its batch completes.
    ///
    /// Counts `serve.requests` and records end-to-end latency into the
    /// `serve.request.ns` histogram on every accepted request, including
    /// ones whose batch subsequently failed.
    pub fn submit(&self, row: Vec<f32>) -> Result<Prediction, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let started = Instant::now();
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        {
            let mut queue = self.shared.queue.lock().expect("batch queue poisoned");
            if queue.len() >= self.shared.cfg.queue_cap {
                tele::counter_inc("serve.rejected");
                return Err(ServeError::QueueFull);
            }
            queue.push_back(Pending {
                row,
                reply: reply_tx,
                enqueued: started,
            });
        }
        self.shared.wake.notify_one();
        let result = reply_rx.recv().unwrap_or(Err(ServeError::ShuttingDown));
        tele::counter_inc("serve.requests");
        tele::histogram_record("serve.request.ns", started.elapsed().as_nanos() as f64);
        result
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) {
                drain_on_shutdown(shared);
                return;
            }
            continue;
        }
        run_batch(shared, batch);
        // The dispatcher is long-lived: push its per-thread counters into
        // the global registry so live scrapes see batches as they happen.
        tele::flush();
    }
}

/// Expire every queued row older than the per-request budget: each gets an
/// immediate [`ServeError::DeadlineExpired`] reply (503 + `Retry-After` at
/// the HTTP layer) instead of riding the next batch. No-op when the budget
/// is 0. The queue is FIFO, so expired rows always form a prefix.
fn expire_overdue(queue: &mut VecDeque<Pending>, budget_ms: u64) {
    if budget_ms == 0 {
        return;
    }
    let budget = Duration::from_millis(budget_ms);
    let now = Instant::now();
    while let Some(front) = queue.front() {
        let waited = now.saturating_duration_since(front.enqueued);
        if waited < budget {
            break;
        }
        let pending = queue.pop_front().expect("front exists");
        tele::counter_inc("serve.deadline_expired");
        let _ = pending.reply.send(Err(ServeError::DeadlineExpired {
            waited_ms: waited.as_millis() as u64,
        }));
    }
}

/// Block until at least one row is waiting, then hold the batch open until
/// it fills to `max_size` or the wait cutoff expires. Rows that out-sit
/// their per-request budget are expired rather than collected.
fn collect_batch(shared: &Shared) -> Vec<Pending> {
    let budget_ms = shared.cfg.max_wait_budget_ms;
    let mut queue = shared.queue.lock().expect("batch queue poisoned");
    // Shed whatever went overdue while the previous batch was running —
    // the stalled-batch case the per-request deadline exists for.
    expire_overdue(&mut queue, budget_ms);
    while queue.is_empty() {
        if shared.shutdown.load(Ordering::Acquire) {
            return Vec::new();
        }
        let (guard, _) = shared
            .wake
            .wait_timeout(queue, Duration::from_millis(50))
            .expect("batch queue poisoned");
        queue = guard;
    }
    let deadline = Instant::now() + Duration::from_micros(shared.cfg.max_wait_us);
    while queue.len() < shared.cfg.max_size && !shared.shutdown.load(Ordering::Acquire) {
        expire_overdue(&mut queue, budget_ms);
        let now = Instant::now();
        if queue.is_empty() || now >= deadline {
            break;
        }
        // Wake in time for both the batch cutoff and the oldest row's
        // expiry, whichever lands first.
        let mut wait = deadline - now;
        if budget_ms > 0 {
            let oldest = queue.front().expect("queue is non-empty").enqueued;
            let expiry = oldest + Duration::from_millis(budget_ms);
            wait = wait.min(
                expiry
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1)),
            );
        }
        let (guard, _) = shared
            .wake
            .wait_timeout(queue, wait)
            .expect("batch queue poisoned");
        queue = guard;
    }
    expire_overdue(&mut queue, budget_ms);
    let take = queue.len().min(shared.cfg.max_size);
    queue.drain(..take).collect()
}

fn drain_on_shutdown(shared: &Shared) {
    let mut queue = shared.queue.lock().expect("batch queue poisoned");
    for pending in queue.drain(..) {
        let _ = pending.reply.send(Err(ServeError::ShuttingDown));
    }
}

fn run_batch(shared: &Shared, mut batch: Vec<Pending>) {
    let Some(model) = shared.registry.current() else {
        for pending in batch {
            let _ = pending.reply.send(Err(ServeError::NoModel));
        }
        return;
    };

    // Reject malformed rows individually so one bad request cannot fail
    // the well-formed rows sharing its batch.
    let mut valid = Vec::with_capacity(batch.len());
    for pending in batch.drain(..) {
        if pending.row.len() == model.dim() {
            valid.push(pending);
        } else {
            let _ = pending.reply.send(Err(ServeError::DimensionMismatch {
                expected: model.dim(),
                actual: pending.row.len(),
            }));
        }
    }
    if valid.is_empty() {
        return;
    }

    let rows: Vec<Vec<f32>> = valid.iter().map(|p| p.row.clone()).collect();
    tele::counter_inc("serve.batches");
    tele::histogram_record("serve.batch_size", rows.len() as f64);

    match catch_unwind(AssertUnwindSafe(|| model.forward(&rows))) {
        Ok(Ok(probs)) => {
            debug_assert_eq!(probs.len(), valid.len());
            for (pending, prob) in valid.into_iter().zip(probs) {
                let _ = pending.reply.send(Ok((model.generation, prob)));
            }
        }
        Ok(Err(e)) => {
            tele::counter_inc("serve.batch.failures");
            let msg = e.to_string();
            for pending in valid {
                let _ = pending
                    .reply
                    .send(Err(ServeError::BatchFailed(msg.clone())));
            }
        }
        Err(panic) => {
            tele::counter_inc("serve.batch.failures");
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "forward pass panicked".to_string());
            for pending in valid {
                let _ = pending
                    .reply
                    .send(Err(ServeError::BatchFailed(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServedModel;
    use gmreg_core::durable::CheckpointManager;
    use gmreg_linear::LinearFitState;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gmreg-serve-batch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_registry(dir: &PathBuf, dim: usize) -> Arc<ModelRegistry> {
        let mgr = CheckpointManager::new(dir, "linfit", 4).unwrap();
        mgr.save(&LinearFitState {
            next_epoch: 1,
            iterations: 10,
            current_lr: 0.1,
            w: (0..dim).map(|i| (i as f32 - 1.0) * 0.3).collect(),
            bias: -0.25,
            velocity: vec![0.0; dim],
            bias_velocity: 0.0,
            gm: None,
            degraded_beta: None,
        })
        .unwrap();
        let reg = Arc::new(ModelRegistry::new(dir, "linfit", 4).unwrap());
        reg.reload().unwrap();
        reg
    }

    #[test]
    fn submit_matches_direct_forward_bitwise() {
        let dir = tmp_dir("direct");
        let reg = seeded_registry(&dir, 4);
        let reference: Arc<ServedModel> = reg.current().unwrap();
        let batcher = Batcher::new(Arc::clone(&reg), BatchConfig::default());

        let row = vec![0.5, -0.25, 0.125, 1.0];
        let (generation, prob) = batcher.submit(row.clone()).unwrap();
        let direct = reference.forward(std::slice::from_ref(&row)).unwrap()[0];
        assert_eq!(generation, 0);
        assert_eq!(prob.to_bits(), direct.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_registry_yields_no_model() {
        let dir = tmp_dir("nomodel");
        let reg = Arc::new(ModelRegistry::new(&dir, "linfit", 4).unwrap());
        let batcher = Batcher::new(reg, BatchConfig::default());
        assert!(matches!(
            batcher.submit(vec![1.0]).unwrap_err(),
            ServeError::NoModel
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dimension_fails_only_that_request() {
        let dir = tmp_dir("baddim");
        let reg = seeded_registry(&dir, 4);
        let batcher = Arc::new(Batcher::new(reg, BatchConfig::default()));

        let b2 = Arc::clone(&batcher);
        let good = std::thread::spawn(move || b2.submit(vec![0.1, 0.2, 0.3, 0.4]));
        let bad = batcher.submit(vec![1.0, 2.0]);
        assert!(matches!(
            bad.unwrap_err(),
            ServeError::DimensionMismatch {
                expected: 4,
                actual: 2
            }
        ));
        assert!(good.join().unwrap().is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_request_past_budget_expires_with_deadline_error() {
        let dir = tmp_dir("deadline");
        let reg = seeded_registry(&dir, 4);
        // A batch that stays open far longer than the 10 ms budget: the
        // dispatcher waits for max_size rows that never come, so the lone
        // queued row must be expired by the budget sweep, not served.
        let batcher = Batcher::new(
            reg,
            BatchConfig {
                max_size: 64,
                max_wait_us: 400_000,
                queue_cap: 8,
                max_wait_budget_ms: 10,
            },
        );
        let started = Instant::now();
        let err = batcher.submit(vec![0.1, 0.2, 0.3, 0.4]).unwrap_err();
        assert!(
            matches!(err, ServeError::DeadlineExpired { waited_ms } if waited_ms >= 10),
            "{err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "expiry must cut the wait short of the 400ms batch cutoff"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_zero_disables_expiry() {
        let dir = tmp_dir("nodeadline");
        let reg = seeded_registry(&dir, 4);
        let batcher = Batcher::new(
            reg,
            BatchConfig {
                max_size: 4,
                max_wait_us: 30_000,
                queue_cap: 8,
                max_wait_budget_ms: 0,
            },
        );
        // 30ms batch window > any disabled budget: the request rides the
        // batch and succeeds.
        assert!(batcher.submit(vec![0.1, 0.2, 0.3, 0.4]).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_cleanly() {
        let dir = tmp_dir("shutdown");
        let reg = seeded_registry(&dir, 4);
        let batcher = Batcher::new(reg, BatchConfig::default());
        drop(batcher); // must not hang
        let _ = fs::remove_dir_all(&dir);
    }
}

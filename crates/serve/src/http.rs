//! HTTP surface of the serving daemon: `/predict`, `/healthz`, `/reload`
//! registered on the `gmreg-obs` [`Router`] next to the built-in
//! `/metrics` and `/status` endpoints, so one port serves both inference
//! traffic and observability scrapes.
//!
//! * `POST /predict` — body `{"inputs": [[f32, ...], ...]}`; the rows are
//!   parsed straight into pooled buffers ([`crate::wire`]) and submitted
//!   to the [`Batcher`] as one multi-row request (rows from one request
//!   still coalesce with rows from concurrent requests). Reply:
//!   `{"generation": N, "predictions": [p, ...]}`. Predictions are
//!   rendered with Rust's shortest-round-trip float formatting, so the
//!   wire value parses back to exactly the bits the model produced.
//! * `GET /healthz` — `200 {"status": "ok", ...}` when a model generation
//!   is published, `503` when the registry is empty.
//! * `POST /reload` — synchronous hot-swap attempt; reports the outcome.
//!
//! Handlers render into the connection's reused [`HttpResponse`] buffer
//! (no per-request `String`), and `/predict` keeps per-thread scratch for
//! rows and results — the steady-state request path does not allocate in
//! this layer.

use crate::batch::{Batcher, Prediction};
use crate::registry::{ModelRegistry, ReloadOutcome};
use crate::wire;
use crate::ServeError;
use gmreg_obs::{HttpRequest, HttpResponse, Router, StageNs};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// `Instant::elapsed` as saturating nanoseconds.
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Largest number of rows one request may carry — an abuse guard against
/// a single caller smuggling in an effectively unbounded batch. Requests
/// up to this size are always servable regardless of `queue_cap`: the
/// batcher feeds rows through in chunks of at most `queue_cap`.
pub const MAX_ROWS_PER_REQUEST: usize = 4096;

/// Per-thread `/predict` scratch: each connection worker reuses its own
/// row container and result vector across requests.
struct PredictScratch {
    rows: Vec<Vec<f32>>,
    results: Vec<Result<Prediction, ServeError>>,
}

thread_local! {
    static SCRATCH: RefCell<PredictScratch> = const {
        RefCell::new(PredictScratch {
            rows: Vec::new(),
            results: Vec::new(),
        })
    };
}

fn predict(batcher: &Batcher, req: &HttpRequest, resp: &mut HttpResponse) {
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let parse_started = Instant::now();
        if let Err(e) = wire::parse_predict(&req.body, &mut scratch.rows, || batcher.take_row()) {
            batcher.recycle_rows(&mut scratch.rows);
            resp.set_error("400 Bad Request", &format!("malformed request: {e}"));
            return;
        }
        if scratch.rows.is_empty() {
            resp.set_error("400 Bad Request", "inputs is empty");
            return;
        }
        if scratch.rows.len() > MAX_ROWS_PER_REQUEST {
            batcher.recycle_rows(&mut scratch.rows);
            resp.set_error(
                "400 Bad Request",
                &format!("at most {MAX_ROWS_PER_REQUEST} rows per request"),
            );
            return;
        }
        let parse = elapsed_ns(parse_started);

        let submit_started = Instant::now();
        let stamp =
            batcher.submit_all_traced(&mut scratch.rows, &mut scratch.results, req.trace.parent);
        let submit_wait = elapsed_ns(submit_started);

        let mut generation = 0;
        for result in &scratch.results {
            match result {
                Ok((generation_served, _)) => generation = *generation_served,
                Err(e) => {
                    error_response_into(e, resp);
                    return;
                }
            }
        }

        let render_started = Instant::now();
        let body = resp.start_json();
        let _ = write!(body, "{{\"generation\": {generation}, \"predictions\": [");
        for (i, result) in scratch.results.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            let p = result.as_ref().expect("errors returned above").1;
            // `{}` on f64 is shortest round-trip: the client re-parses to
            // the identical bits, which the bit-identity test suite relies
            // on.
            let _ = write!(body, "{p}");
        }
        body.push_str("]}\n");

        // Stage attribution for the server to finish (it times the socket
        // write) and record. Queue wait is the blocking time in the
        // batcher minus the batch work itself, so the six stages tile the
        // request without double counting.
        resp.stages = StageNs {
            parse,
            queue: submit_wait.saturating_sub(stamp.assemble_ns + stamp.compute_ns),
            assemble: stamp.assemble_ns,
            assemble_start: stamp.assemble_start_ns,
            compute: stamp.compute_ns,
            render: elapsed_ns(render_started),
            write: 0,
            batch_mates: stamp.batch_mates,
            generation,
            traced: true,
        };
    });
}

/// Map a batching error onto its HTTP status and render it into `resp`.
/// Overload shedding (`QueueFull`) and deadline expiry both carry a
/// `Retry-After` back-off hint with their 503 — the queue is (or just was)
/// congested, so the client should ease off rather than hammer a
/// saturated batcher.
fn error_response_into(e: &ServeError, resp: &mut HttpResponse) {
    use crate::ServeError::*;
    let status = match e {
        NoModel => "503 Service Unavailable",
        QueueFull => "503 Service Unavailable",
        ShuttingDown => "503 Service Unavailable",
        DeadlineExpired { .. } => "503 Service Unavailable",
        DimensionMismatch { .. } => "400 Bad Request",
        Config { .. } => "400 Bad Request",
        Checkpoint(_) | BatchFailed(_) => "500 Internal Server Error",
    };
    resp.set_error(status, &e.to_string());
    if matches!(e, DeadlineExpired { .. } | QueueFull) {
        resp.set_retry_after(1);
    }
}

fn healthz(registry: &ModelRegistry, resp: &mut HttpResponse) {
    match registry.generation() {
        Some(generation) => {
            let body = resp.start_json();
            let _ = write!(body, "{{\"status\": \"ok\", \"generation\": {generation}}}");
            body.push('\n');
        }
        None => {
            let body = resp.start("503 Service Unavailable", "application/json");
            body.push_str("{\"status\": \"unavailable\", \"generation\": null}\n");
        }
    }
}

fn reload(registry: &ModelRegistry, resp: &mut HttpResponse) {
    match registry.reload() {
        Ok(ReloadOutcome::Swapped(generation)) => {
            let body = resp.start_json();
            let _ = write!(
                body,
                "{{\"outcome\": \"swapped\", \"generation\": {generation}}}"
            );
            body.push('\n');
        }
        Ok(ReloadOutcome::Unchanged(generation)) => {
            let body = resp.start_json();
            let _ = write!(
                body,
                "{{\"outcome\": \"unchanged\", \"generation\": {generation}}}"
            );
            body.push('\n');
        }
        Ok(ReloadOutcome::Empty) => resp.set_error(
            "503 Service Unavailable",
            "no loadable checkpoint generation found",
        ),
        Err(e) => error_response_into(&e, resp),
    }
}

/// Build the serving [`Router`]: `/predict`, `/healthz`, `/reload` over the
/// built-ins, in threaded mode (a `/predict` handler blocks on its
/// micro-batch, so connections must not serialize on the accept thread —
/// concurrent requests are exactly what the batcher coalesces). Each
/// connection worker serves one keep-alive connection at a time, so the
/// pool width bounds `/predict` concurrency — the default is sized to
/// `batch.max_size` so a full micro-batch can actually be in flight at
/// once. The daemon passes its `[server]` config through
/// [`serving_router_with`].
pub fn serving_router(registry: Arc<ModelRegistry>, batcher: Arc<Batcher>) -> Router {
    let health_registry = Arc::clone(&registry);
    let reload_registry = Arc::clone(&registry);
    let workers = batcher.config().max_size.max(1);
    Router::new()
        .route(
            "POST",
            "/predict",
            move |req: &HttpRequest, resp: &mut HttpResponse| predict(&batcher, req, resp),
        )
        .route(
            "GET",
            "/healthz",
            move |_req: &HttpRequest, resp: &mut HttpResponse| healthz(&health_registry, resp),
        )
        .route(
            "POST",
            "/reload",
            move |_req: &HttpRequest, resp: &mut HttpResponse| reload(&reload_registry, resp),
        )
        .threaded(true)
        .workers(workers)
}

/// [`serving_router`] with the daemon's `[server]` connection knobs:
/// worker-pool width, per-connection request cap, and keep-alive idle
/// timeout.
pub fn serving_router_with(
    registry: Arc<ModelRegistry>,
    batcher: Arc<Batcher>,
    workers: usize,
    max_requests_per_conn: usize,
    idle_ms: u64,
) -> Router {
    serving_router(registry, batcher)
        .workers(workers)
        .max_requests_per_conn(max_requests_per_conn)
        .idle_timeout_ms(idle_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_503_carries_retry_after() {
        let mut resp = HttpResponse::default();
        error_response_into(&ServeError::QueueFull, &mut resp);
        assert_eq!(resp.status, "503 Service Unavailable");
        assert_eq!(resp.retry_after_secs, Some(1));
        assert!(resp.body.contains("queue"), "{}", resp.body);
    }

    #[test]
    fn deadline_expired_503_carries_retry_after() {
        let mut resp = HttpResponse::default();
        error_response_into(&ServeError::DeadlineExpired { waited_ms: 75 }, &mut resp);
        assert_eq!(resp.status, "503 Service Unavailable");
        assert_eq!(resp.retry_after_secs, Some(1));
        assert!(resp.body.contains("75"), "{}", resp.body);
    }

    #[test]
    fn other_errors_do_not_back_off() {
        // The 503s that are NOT congestion (no model yet, shutting down)
        // and the caller-fault 4xx/5xx must not advertise a retry delay.
        for e in [
            ServeError::NoModel,
            ServeError::ShuttingDown,
            ServeError::DimensionMismatch {
                expected: 8,
                actual: 2,
            },
            ServeError::BatchFailed("boom".to_string()),
        ] {
            let mut resp = HttpResponse::default();
            error_response_into(&e, &mut resp);
            assert_eq!(resp.retry_after_secs, None, "{e}");
        }
    }
}

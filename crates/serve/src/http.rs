//! HTTP surface of the serving daemon: `/predict`, `/healthz`, `/reload`
//! registered on the `gmreg-obs` [`Router`] next to the built-in
//! `/metrics` and `/status` endpoints, so one port serves both inference
//! traffic and observability scrapes.
//!
//! * `POST /predict` — body `{"inputs": [[f32, ...], ...]}`; each row is
//!   submitted to the [`Batcher`] (rows from one request still coalesce
//!   with rows from concurrent requests). Reply:
//!   `{"generation": N, "predictions": [p, ...]}`. Predictions are
//!   rendered with Rust's shortest-round-trip float formatting, so the
//!   wire value parses back to exactly the bits the model produced.
//! * `GET /healthz` — `200 {"status": "ok", ...}` when a model generation
//!   is published, `503` when the registry is empty.
//! * `POST /reload` — synchronous hot-swap attempt; reports the outcome.

use crate::batch::Batcher;
use crate::registry::{ModelRegistry, ReloadOutcome};
use gmreg_obs::{HttpRequest, HttpResponse, Router};
use serde::Deserialize;
use std::sync::Arc;

#[derive(Deserialize)]
struct PredictRequest {
    inputs: Vec<Vec<f32>>,
}

/// Largest number of rows one request may carry; protects the queue bound
/// from a single caller smuggling in an effectively unbounded batch.
pub const MAX_ROWS_PER_REQUEST: usize = 4096;

fn predict(batcher: &Batcher, req: &HttpRequest) -> HttpResponse {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return HttpResponse::error("400 Bad Request", "body is not UTF-8"),
    };
    let parsed: PredictRequest = match serde_json::from_str(body) {
        Ok(p) => p,
        Err(e) => {
            return HttpResponse::error("400 Bad Request", &format!("malformed request: {e}"))
        }
    };
    if parsed.inputs.is_empty() {
        return HttpResponse::error("400 Bad Request", "inputs is empty");
    }
    if parsed.inputs.len() > MAX_ROWS_PER_REQUEST {
        return HttpResponse::error(
            "400 Bad Request",
            &format!("at most {MAX_ROWS_PER_REQUEST} rows per request"),
        );
    }

    let mut generation = None;
    let mut predictions = Vec::with_capacity(parsed.inputs.len());
    for row in parsed.inputs {
        match batcher.submit(row) {
            Ok((generation_served, p)) => {
                generation = Some(generation_served);
                predictions.push(p);
            }
            Err(e) => return error_response(&e),
        }
    }

    let mut out = String::with_capacity(32 + predictions.len() * 20);
    out.push_str(&format!(
        "{{\"generation\": {}, \"predictions\": [",
        generation.expect("non-empty inputs produced at least one prediction")
    ));
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // `{}` on f64 is shortest round-trip: the client re-parses to the
        // identical bits, which the bit-identity test suite relies on.
        out.push_str(&format!("{p}"));
    }
    out.push_str("]}\n");
    HttpResponse::json(out)
}

fn error_response(e: &crate::ServeError) -> HttpResponse {
    use crate::ServeError::*;
    let status = match e {
        NoModel => "503 Service Unavailable",
        QueueFull => "503 Service Unavailable",
        ShuttingDown => "503 Service Unavailable",
        DeadlineExpired { .. } => "503 Service Unavailable",
        DimensionMismatch { .. } => "400 Bad Request",
        Config { .. } => "400 Bad Request",
        Checkpoint(_) | BatchFailed(_) => "500 Internal Server Error",
    };
    let resp = HttpResponse::error(status, &e.to_string());
    // An expired deadline means the queue is (or just was) congested; hand
    // the client an explicit back-off instead of letting it hammer a
    // saturated batcher.
    match e {
        DeadlineExpired { .. } | QueueFull => resp.with_retry_after(1),
        _ => resp,
    }
}

fn healthz(registry: &ModelRegistry) -> HttpResponse {
    match registry.generation() {
        Some(generation) => HttpResponse::json(format!(
            "{{\"status\": \"ok\", \"generation\": {generation}}}\n"
        )),
        None => HttpResponse {
            status: "503 Service Unavailable",
            content_type: "application/json",
            body: "{\"status\": \"unavailable\", \"generation\": null}\n".to_string(),
            retry_after_secs: None,
        },
    }
}

fn reload(registry: &ModelRegistry) -> HttpResponse {
    match registry.reload() {
        Ok(ReloadOutcome::Swapped(generation)) => HttpResponse::json(format!(
            "{{\"outcome\": \"swapped\", \"generation\": {generation}}}\n"
        )),
        Ok(ReloadOutcome::Unchanged(generation)) => HttpResponse::json(format!(
            "{{\"outcome\": \"unchanged\", \"generation\": {generation}}}\n"
        )),
        Ok(ReloadOutcome::Empty) => HttpResponse::error(
            "503 Service Unavailable",
            "no loadable checkpoint generation found",
        ),
        Err(e) => error_response(&e),
    }
}

/// Build the serving [`Router`]: `/predict`, `/healthz`, `/reload` over the
/// built-ins, in threaded mode (a `/predict` handler blocks on its
/// micro-batch, so connections must not serialize on the accept thread —
/// concurrent requests are exactly what the batcher coalesces).
pub fn serving_router(registry: Arc<ModelRegistry>, batcher: Arc<Batcher>) -> Router {
    let health_registry = Arc::clone(&registry);
    let reload_registry = Arc::clone(&registry);
    Router::new()
        .route("POST", "/predict", move |req: &HttpRequest| {
            predict(&batcher, req)
        })
        .route("GET", "/healthz", move |_req: &HttpRequest| {
            healthz(&health_registry)
        })
        .route("POST", "/reload", move |_req: &HttpRequest| {
            reload(&reload_registry)
        })
        .threaded(true)
}

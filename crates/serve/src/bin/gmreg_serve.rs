//! `gmreg-serve` — the batched model-serving daemon.
//!
//! ```text
//! gmreg-serve [--config serve.toml] [--listen ADDR] [--model-dir DIR]
//!             [--init-demo] [--run-secs N] [--print-addr]
//! ```
//!
//! Boot sequence: parse config → (optionally) train a demo checkpoint →
//! install the SIGHUP handler → load the newest checkpoint generation →
//! spawn the micro-batcher → bind the HTTP server with `/predict`,
//! `/healthz`, `/reload` layered over `/metrics` and `/status`. The main
//! thread then polls for SIGHUP (hot-swap) and flushes telemetry until
//! `--run-secs` elapses (0 = run until killed).
//!
//! `--init-demo` trains a small logistic model on synthetic blobs with
//! `fit_durable`, leaving real GMCK generations in the model directory —
//! this is how the CI smoke job seeds a model without a separate trainer.

use gmreg_serve::{BatchConfig, Batcher, ModelRegistry, ReloadOutcome, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    config: Option<PathBuf>,
    listen: Option<String>,
    model_dir: Option<PathBuf>,
    init_demo: bool,
    run_secs: u64,
    print_addr: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: None,
        listen: None,
        model_dir: None,
        init_demo: false,
        run_secs: 0,
        print_addr: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--listen" => args.listen = Some(value("--listen")?),
            "--model-dir" => args.model_dir = Some(PathBuf::from(value("--model-dir")?)),
            "--init-demo" => args.init_demo = true,
            "--run-secs" => {
                args.run_secs = value("--run-secs")?
                    .parse()
                    .map_err(|e| format!("--run-secs: {e}"))?
            }
            "--print-addr" => args.print_addr = true,
            "--help" | "-h" => {
                println!(
                    "gmreg-serve [--config serve.toml] [--listen ADDR] [--model-dir DIR] \
                     [--init-demo] [--run-secs N] [--print-addr]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Train a small demo model into `cfg.model_dir` so the daemon has
/// something real to serve (used by CI smoke and local experimentation).
fn init_demo(cfg: &ServeConfig) -> Result<(), String> {
    use gmreg_linear::{blobs, LogisticRegression, LrConfig};
    let ds = blobs(512, 8, 1.5, 42).map_err(|e| e.to_string())?;
    let lr_cfg = LrConfig {
        epochs: 5,
        ..LrConfig::default()
    };
    let mut model = LogisticRegression::new(8, lr_cfg).map_err(|e| e.to_string())?;
    let durable_cfg = gmreg_linear::DurableFitConfig {
        keep: cfg.model_keep,
        ..gmreg_linear::DurableFitConfig::default()
    };
    model
        .fit_durable(&ds, &cfg.model_dir, &durable_cfg)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "gmreg-serve: demo model trained into {}",
        cfg.model_dir.display()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut cfg = match &args.config {
        Some(path) => ServeConfig::load(path).map_err(|e| e.to_string())?,
        None => ServeConfig::default(),
    };
    if let Some(listen) = args.listen {
        cfg.listen = listen;
    }
    if let Some(dir) = args.model_dir {
        cfg.model_dir = dir;
    }

    if args.init_demo {
        init_demo(&cfg)?;
    }

    gmreg_serve::signal::install_sighup_handler();

    let registry = Arc::new(
        ModelRegistry::new(&cfg.model_dir, &cfg.model_prefix, cfg.model_keep)
            .map_err(|e| e.to_string())?,
    );
    match registry.reload() {
        Ok(ReloadOutcome::Swapped(generation)) => {
            eprintln!("gmreg-serve: serving generation {generation}");
        }
        Ok(_) | Err(_) => {
            // An empty or corrupt model dir is not fatal: /healthz reports
            // 503 until a reload finds a loadable generation.
            eprintln!(
                "gmreg-serve: no loadable checkpoint in {} yet; serving unhealthy",
                cfg.model_dir.display()
            );
        }
    }

    let batch_cfg = BatchConfig {
        max_size: cfg.batch.max_size,
        max_wait_us: cfg.batch.max_wait_us,
        queue_cap: cfg.batch.queue_cap,
        max_wait_budget_ms: cfg.batch.max_wait_budget_ms,
    };
    let batcher = Arc::new(Batcher::new(Arc::clone(&registry), batch_cfg));
    let router = gmreg_serve::http::serving_router_with(
        Arc::clone(&registry),
        batcher,
        cfg.workers,
        cfg.max_requests_per_conn,
        cfg.idle_ms,
    );
    let server = gmreg_obs::ObsServer::bind_with(&cfg.listen, router)
        .map_err(|e| format!("bind {}: {e}", cfg.listen))?;
    eprintln!("gmreg-serve: listening on {}", server.local_addr());
    if args.print_addr {
        // Machine-readable line for harnesses that passed port 0.
        println!("ADDR {}", server.local_addr());
    }

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if gmreg_serve::signal::take_reload_request() {
            match registry.reload() {
                Ok(ReloadOutcome::Swapped(generation)) => {
                    eprintln!("gmreg-serve: SIGHUP reload -> generation {generation}");
                }
                Ok(outcome) => eprintln!("gmreg-serve: SIGHUP reload -> {outcome:?}"),
                Err(e) => eprintln!("gmreg-serve: SIGHUP reload failed: {e}"),
            }
        }
        gmreg_telemetry::flush();
        if args.run_secs > 0 && started.elapsed() >= Duration::from_secs(args.run_secs) {
            eprintln!("gmreg-serve: --run-secs {} elapsed, exiting", args.run_secs);
            return Ok(());
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gmreg-serve: {e}");
            ExitCode::from(2)
        }
    }
}

//! SIGHUP-triggered hot-swap, without a signal-handling dependency.
//!
//! `std` exposes no signal API, so on Unix we register a handler through
//! the C `signal(2)` entry point. The handler does the only thing that is
//! async-signal-safe here: it flips an `AtomicBool`. The daemon's main
//! loop polls [`take_reload_request`] between accept cycles and performs
//! the actual registry reload on a normal thread — exactly the same code
//! path as `POST /reload`.
//!
//! On non-Unix targets the module compiles to a stub that never reports a
//! pending request.

use std::sync::atomic::{AtomicBool, Ordering};

static RELOAD_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::RELOAD_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGHUP: i32 = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sighup(_signum: i32) {
        // Async-signal-safe: a single relaxed store, nothing else.
        RELOAD_REQUESTED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        unsafe {
            signal(
                SIGHUP,
                on_sighup as extern "C" fn(i32) as *const () as usize,
            );
        }
    }
}

/// Install the SIGHUP handler (idempotent; no-op off Unix).
pub fn install_sighup_handler() {
    #[cfg(unix)]
    unix::install();
}

/// True exactly once per delivered SIGHUP: reads and clears the flag.
pub fn take_reload_request() -> bool {
    RELOAD_REQUESTED.swap(false, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_one_shot() {
        RELOAD_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(take_reload_request());
        assert!(!take_reload_request());
    }

    #[cfg(unix)]
    #[test]
    fn real_sighup_sets_the_flag() {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
            fn getpid() -> i32;
        }
        install_sighup_handler();
        let _ = take_reload_request(); // clear any stale state
        unsafe {
            assert_eq!(kill(getpid(), 1), 0);
        }
        // Delivery is synchronous for a self-directed signal on Linux, but
        // allow a brief grace period to be safe.
        for _ in 0..100 {
            if take_reload_request() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("SIGHUP was not observed");
    }
}

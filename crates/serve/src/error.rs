use std::fmt;

/// Error type for every serving-layer operation.
#[derive(Debug)]
pub enum ServeError {
    /// `serve.toml` could not be parsed. Carries the 1-based line number and
    /// a human-readable reason (unknown section, unknown key, bad value).
    Config {
        /// 1-based line in the config file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint layer failed (I/O, corruption with no fallback, ...).
    Checkpoint(gmreg_core::CoreError),
    /// No generation is loaded: the registry is empty. `/healthz` maps this
    /// to 503, `/predict` to a request error.
    NoModel,
    /// A request row's feature count does not match the served model.
    DimensionMismatch {
        /// Feature count of the served model.
        expected: usize,
        /// Feature count of the offending request row.
        actual: usize,
    },
    /// The micro-batch queue is at capacity; the request was shed rather
    /// than queued unboundedly (counted as `serve.rejected`).
    QueueFull,
    /// The batch this request rode in panicked mid-forward (e.g. an armed
    /// `pool.worker` failpoint). Only the requests in that batch fail; the
    /// queue keeps draining.
    BatchFailed(String),
    /// The request sat in the batcher queue past its per-request deadline
    /// (`max_wait_budget_ms`) — typically behind a stalled batch — and was
    /// shed with a back-off hint instead of being served arbitrarily late
    /// (counted as `serve.deadline_expired`; HTTP maps it to 503 with
    /// `Retry-After`).
    DeadlineExpired {
        /// How long the request waited before expiring, in milliseconds.
        waited_ms: u64,
    },
    /// The batcher is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config { line, reason } => {
                write!(f, "config error at line {line}: {reason}")
            }
            ServeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            ServeError::NoModel => write!(f, "no model generation loaded"),
            ServeError::DimensionMismatch { expected, actual } => write!(
                f,
                "input has {actual} features but the served model expects {expected}"
            ),
            ServeError::QueueFull => write!(f, "prediction queue is full"),
            ServeError::BatchFailed(reason) => write!(f, "batch execution failed: {reason}"),
            ServeError::DeadlineExpired { waited_ms } => {
                write!(f, "request deadline expired after {waited_ms}ms in queue")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<gmreg_core::CoreError> for ServeError {
    fn from(e: gmreg_core::CoreError) -> Self {
        ServeError::Checkpoint(e)
    }
}

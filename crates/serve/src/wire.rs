//! Hand-rolled `/predict` request parser.
//!
//! The predict hot path parses `{"inputs": [[f32, ...], ...]}` straight
//! off the request bytes into row buffers drawn from the batcher's row
//! pool — no DOM, no intermediate `Vec<Vec<f32>>` allocation per request,
//! matching the repo's other hand-rolled readers (`serve.toml`,
//! `bench_diff`'s report walker). Numbers go through `str::parse::<f32>`,
//! the exact inverse of the `{}` shortest-round-trip formatting the
//! response renderer and the test clients use, so wire values re-parse to
//! identical bits.
//!
//! Unknown top-level keys are skipped (any valid JSON value), mirroring
//! serde's default lenient-object behavior the endpoint previously had;
//! a duplicated `"inputs"` key is rejected outright (deterministic, where
//! serde silently kept the last value); anything structurally malformed
//! is a position-stamped error the HTTP layer maps to a 400.

/// Parser over the raw body bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// A structural parse failure: byte offset plus what was expected.
#[derive(Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the request body where parsing stopped.
    pub pos: usize,
    /// What the parser was looking for at that position.
    pub expected: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.pos)
    }
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn err(&self, expected: &'static str) -> WireError {
        WireError {
            pos: self.pos,
            expected,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    /// Consume a JSON string, returning the raw bytes between the quotes.
    /// Escapes are tolerated (skipped) but not unescaped — the only
    /// strings the endpoint compares against are plain ASCII key names.
    fn string(&mut self) -> Result<&'a [u8], WireError> {
        self.eat(b'"', "string")?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let s = &self.bytes[start..self.pos];
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => self.pos += 2,
                Some(_) => self.pos += 1,
                None => return Err(self.err("closing '\"'")),
            }
        }
    }

    fn number_f32(&mut self) -> Result<f32, WireError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f32>().ok())
            .ok_or(WireError {
                pos: start,
                expected: "number",
            })
    }

    /// Skip any one JSON value (for unknown keys).
    fn skip_value(&mut self) -> Result<(), WireError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b'{') => self.skip_delimited(b'{', b'}'),
            Some(b'[') => self.skip_delimited(b'[', b']'),
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                self.number_f32()?;
                Ok(())
            }
            Some(b't') => self.keyword(b"true"),
            Some(b'f') => self.keyword(b"false"),
            Some(b'n') => self.keyword(b"null"),
            _ => Err(self.err("value")),
        }
    }

    fn keyword(&mut self, word: &'static [u8]) -> Result<(), WireError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("keyword"))
        }
    }

    fn skip_delimited(&mut self, open: u8, close: u8) -> Result<(), WireError> {
        self.eat(open, "container")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'"') => {
                    self.string()?;
                    continue;
                }
                Some(b) if b == open => depth += 1,
                Some(b) if b == close => depth -= 1,
                Some(_) => {}
                None => return Err(self.err("closing delimiter")),
            }
            self.pos += 1;
        }
        Ok(())
    }
}

/// Parse a `/predict` body into `rows`. Row buffers are drawn from
/// `take_row` (the batcher's recycle pool) so a steady request stream
/// reuses the same allocations; on error the partially-filled rows stay in
/// `rows` for the caller to recycle.
pub fn parse_predict(
    body: &[u8],
    rows: &mut Vec<Vec<f32>>,
    mut take_row: impl FnMut() -> Vec<f32>,
) -> Result<(), WireError> {
    rows.clear();
    let mut c = Cursor::new(body);
    c.skip_ws();
    c.eat(b'{', "'{'")?;
    let mut saw_inputs = false;
    loop {
        c.skip_ws();
        if c.peek() == Some(b'}') {
            c.pos += 1;
            break;
        }
        let key = c.string()?;
        c.skip_ws();
        c.eat(b':', "':'")?;
        if key == b"inputs" {
            // A repeated key would silently concatenate rows here, where
            // the serde path this parser replaced kept the last value;
            // neither is worth supporting — make duplicates an error.
            if saw_inputs {
                return Err(c.err("a single \"inputs\" key"));
            }
            saw_inputs = true;
            parse_rows(&mut c, rows, &mut take_row)?;
        } else {
            c.skip_value()?;
        }
        c.skip_ws();
        match c.peek() {
            Some(b',') => c.pos += 1,
            Some(b'}') => {
                c.pos += 1;
                break;
            }
            _ => return Err(c.err("',' or '}'")),
        }
    }
    if !saw_inputs {
        return Err(WireError {
            pos: c.pos,
            expected: "\"inputs\" key",
        });
    }
    c.skip_ws();
    if c.pos != body.len() {
        return Err(c.err("end of body"));
    }
    Ok(())
}

fn parse_rows(
    c: &mut Cursor<'_>,
    rows: &mut Vec<Vec<f32>>,
    take_row: &mut impl FnMut() -> Vec<f32>,
) -> Result<(), WireError> {
    c.skip_ws();
    c.eat(b'[', "array of rows")?;
    c.skip_ws();
    if c.peek() == Some(b']') {
        c.pos += 1;
        return Ok(());
    }
    loop {
        let mut row = take_row();
        row.clear();
        parse_row(c, &mut row)?;
        rows.push(row);
        c.skip_ws();
        match c.peek() {
            Some(b',') => c.pos += 1,
            Some(b']') => {
                c.pos += 1;
                return Ok(());
            }
            _ => return Err(c.err("',' or ']'")),
        }
    }
}

fn parse_row(c: &mut Cursor<'_>, row: &mut Vec<f32>) -> Result<(), WireError> {
    c.skip_ws();
    c.eat(b'[', "row array")?;
    c.skip_ws();
    if c.peek() == Some(b']') {
        c.pos += 1;
        return Ok(());
    }
    loop {
        c.skip_ws();
        row.push(c.number_f32()?);
        c.skip_ws();
        match c.peek() {
            Some(b',') => c.pos += 1,
            Some(b']') => {
                c.pos += 1;
                return Ok(());
            }
            _ => return Err(c.err("',' or ']'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<Vec<Vec<f32>>, WireError> {
        let mut rows = Vec::new();
        parse_predict(body.as_bytes(), &mut rows, Vec::new)?;
        Ok(rows)
    }

    #[test]
    fn parses_plain_and_spaced_bodies() {
        assert_eq!(
            parse("{\"inputs\": [[1, 2.5], [-0.25, 3e-2]]}").unwrap(),
            vec![vec![1.0, 2.5], vec![-0.25, 0.03]]
        );
        assert_eq!(
            parse(" { \"inputs\" : [ [ 1.0 ] ] } ").unwrap(),
            vec![vec![1.0]]
        );
        assert_eq!(parse("{\"inputs\": []}").unwrap(), Vec::<Vec<f32>>::new());
        assert_eq!(
            parse("{\"inputs\": [[]]}").unwrap(),
            vec![Vec::<f32>::new()]
        );
    }

    #[test]
    fn round_trips_shortest_float_formatting_bitwise() {
        let values: Vec<f32> = vec![0.1, -3.4028235e38, 1.1754944e-38, 123456.78, -0.0];
        let body = format!(
            "{{\"inputs\": [[{}]]}}",
            values
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let parsed = parse(&body).unwrap();
        for (a, b) in values.iter().zip(&parsed[0]) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} reparsed as {b}");
        }
    }

    #[test]
    fn unknown_keys_are_skipped() {
        let rows = parse(
            "{\"version\": 2, \"tag\": \"a[b{c\", \"meta\": {\"x\": [1, {}]}, \"inputs\": [[1]], \"after\": null}",
        )
        .unwrap();
        assert_eq!(rows, vec![vec![1.0]]);
    }

    #[test]
    fn malformed_bodies_are_rejected_with_position() {
        assert!(parse("").is_err());
        assert!(parse("{}").is_err(), "missing inputs key");
        assert!(parse("{\"inputs\": \"nope\"}").is_err());
        assert!(parse("{\"inputs\": [[1,]]}").is_err());
        assert!(parse("{\"inputs\": [[1] [2]]}").is_err());
        assert!(parse("{\"inputs\": [[NaN]]}").is_err(), "no NaN literals");
        assert!(parse("{\"inputs\": [[1]]} trailing").is_err());
        assert!(
            parse("{\"inputs\": [[1]], \"inputs\": [[2]]}").is_err(),
            "duplicate inputs keys must not concatenate"
        );
        let err = parse("{\"inputs\": [[1, oops]]}").unwrap_err();
        assert_eq!(err.expected, "number");
        assert!(err.to_string().contains("byte 16"), "{err}");
    }

    #[test]
    fn rows_come_from_the_supplied_pool() {
        let mut pool = vec![Vec::with_capacity(64), Vec::with_capacity(64)];
        let mut rows = Vec::new();
        parse_predict("{\"inputs\": [[1, 2], [3]]}".as_bytes(), &mut rows, || {
            pool.pop().unwrap_or_default()
        })
        .unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0]]);
        assert!(
            rows.iter().any(|r| r.capacity() >= 64),
            "pooled buffer used"
        );
        assert_eq!(pool.len(), 0);
    }
}

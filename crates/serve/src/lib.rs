//! # gmreg-serve
//!
//! The model-serving layer: everything between a durable GMCK checkpoint on
//! disk and a `/predict` response on the wire.
//!
//! * [`config`] — a declarative `serve.toml` (hand-rolled TOML-subset
//!   parser, cackle-style strict: unknown keys are errors) instead of an
//!   ever-growing flag set.
//! * [`registry`] — [`ModelRegistry`]: generation-keyed models loaded
//!   through [`gmreg_core::durable::CheckpointManager`], published
//!   atomically by `Arc` swap so in-flight batches keep the model they
//!   started with. Corrupt newest generations fall back to N−1 and count
//!   `serve.fallbacks`.
//! * [`model`] — [`ServedModel`]: the frozen forward pass. One batch is one
//!   `matmul` on the persistent pool; every output row depends only on its
//!   own input row, so batch composition never changes a prediction's bits.
//! * [`batch`] — [`Batcher`]: coalesces concurrent predict calls into
//!   micro-batches under a size/time cutoff on a bounded queue, with
//!   panic containment (a poisoned batch errors its own requests and the
//!   queue keeps draining).
//! * `http` (behind the `http` feature) — `/predict`, `/healthz`, `/reload`
//!   routes registered on the `gmreg-obs` server next to `/metrics` and
//!   `/status`.
//! * `signal` — SIGHUP requests a hot-swap, exactly like POST `/reload`.
//!
//! The `gmreg-serve` binary composes all of the above into the daemon.
//!
//! ## Metric names
//!
//! `serve.requests`, `serve.batches`, `serve.batch_size` (histogram),
//! `serve.request.ns` (latency histogram → p50/p95/p99 in `/metrics`),
//! `serve.reloads`, `serve.fallbacks`, `serve.rejected`,
//! `serve.batch.failures`, and the `serve.generation` gauge. The `/status`
//! document exposes them under its `serve` section.
//!
//! Every `/predict` response additionally decomposes into the six
//! `serve.stage.{parse,queue,assemble,compute,render,write}.ns` histograms
//! — the stages tile the request end to end, so the per-stage p99s explain
//! where tail latency lives — and echoes its request trace id as the
//! `X-Gmreg-Trace` header (see `gmreg-obs`'s `/debug/requests` and
//! `/debug/trace`).

#![warn(missing_docs)]

pub mod batch;
pub mod config;
mod error;
pub mod model;
pub mod registry;
pub mod signal;
mod tele;
pub mod wire;

#[cfg(feature = "http")]
pub mod http;

pub use batch::{BatchConfig, BatchStamp, Batcher};
pub use config::ServeConfig;
pub use error::ServeError;
pub use model::ServedModel;
pub use registry::{ModelRegistry, ReloadOutcome};

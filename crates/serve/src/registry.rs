//! Generation-keyed model registry with atomic hot-swap.
//!
//! The registry wraps a [`CheckpointManager`] and publishes the newest
//! loadable generation as an `Arc<ServedModel>` behind an `RwLock`. Readers
//! ([`ModelRegistry::current`]) clone the `Arc` — a few nanoseconds under a
//! read lock — so an in-flight batch keeps the exact model it started with
//! even while a reload swaps the pointer underneath it.
//!
//! [`ModelRegistry::reload`] is the single mutation path, driven by three
//! triggers that all behave identically: daemon startup, `POST /reload`,
//! and SIGHUP. A reload that finds a *corrupt* newest generation falls back
//! to the newest one that validates (the checkpoint layer's behaviour) and
//! counts `serve.fallbacks` so the degradation is visible in `/status`
//! rather than silent.

use crate::error::ServeError;
use crate::model::ServedModel;
use crate::tele;
use gmreg_core::durable::CheckpointManager;
use gmreg_linear::LinearFitState;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// What a [`ModelRegistry::reload`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// A new generation was published (carries the generation number).
    Swapped(u64),
    /// The newest on-disk generation is already being served.
    Unchanged(u64),
    /// The directory has no loadable checkpoint and nothing was published.
    Empty,
}

/// Thread-safe holder of the currently-served model.
pub struct ModelRegistry {
    manager: CheckpointManager,
    current: RwLock<Option<Arc<ServedModel>>>,
}

impl ModelRegistry {
    /// Create a registry over `<dir>/<prefix>-NNNNNNNNNN.gmck` checkpoints.
    /// No generation is loaded yet; call [`ModelRegistry::reload`].
    pub fn new(dir: &Path, prefix: &str, keep: usize) -> Result<Self, ServeError> {
        let manager = CheckpointManager::new(dir, prefix, keep)?;
        Ok(ModelRegistry {
            manager,
            current: RwLock::new(None),
        })
    }

    /// The model serving right now, if any. Cheap: one `Arc` clone.
    pub fn current(&self) -> Option<Arc<ServedModel>> {
        self.current.read().expect("registry lock poisoned").clone()
    }

    /// Generation of the model serving right now, if any.
    pub fn generation(&self) -> Option<u64> {
        self.current().map(|m| m.generation)
    }

    /// Load the newest valid generation and publish it atomically.
    ///
    /// * newest file valid → serve it (`serve.reloads` on change);
    /// * newest file corrupt, older valid → serve the older one and count
    ///   `serve.fallbacks`;
    /// * nothing loadable → keep whatever is currently published (a corrupt
    ///   upload must not take down a healthy server) and report
    ///   [`ReloadOutcome::Empty`] / the checkpoint error.
    pub fn reload(&self) -> Result<ReloadOutcome, ServeError> {
        let newest_on_disk = self.manager.generations()?.last().copied();
        let loaded = match self.manager.load_latest::<LinearFitState>() {
            Ok(loaded) => loaded,
            Err(e) => {
                // Every generation failed validation. Existing traffic keeps
                // the old model; surface the error to the reload caller.
                tele::counter_inc("serve.fallbacks");
                return Err(e.into());
            }
        };
        let Some((generation, state)) = loaded else {
            return Ok(ReloadOutcome::Empty);
        };
        if newest_on_disk.is_some_and(|newest| generation < newest) {
            // Served generation N-1 because generation N failed validation.
            tele::counter_inc("serve.fallbacks");
        }
        if self.generation() == Some(generation) {
            return Ok(ReloadOutcome::Unchanged(generation));
        }
        let model = Arc::new(ServedModel::from_state(generation, &state)?);
        *self.current.write().expect("registry lock poisoned") = Some(model);
        tele::counter_inc("serve.reloads");
        tele::gauge_set("serve.generation", generation as f64);
        Ok(ReloadOutcome::Swapped(generation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gmreg-serve-reg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Serializes the tests that assert on the process-global
    /// `serve.fallbacks` counter, so their before/after deltas can't
    /// interleave.
    static FALLBACK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn state(dim: usize, fill: f32) -> LinearFitState {
        LinearFitState {
            next_epoch: 1,
            iterations: 10,
            current_lr: 0.1,
            w: vec![fill; dim],
            bias: 0.5,
            velocity: vec![0.0; dim],
            bias_velocity: 0.0,
            gm: None,
            degraded_beta: None,
        }
    }

    #[cfg(feature = "telemetry")]
    fn counter(name: &str) -> u64 {
        gmreg_telemetry::flush();
        gmreg_telemetry::snapshot()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    #[test]
    fn empty_dir_publishes_nothing() {
        let dir = tmp_dir("empty");
        let reg = ModelRegistry::new(&dir, "linfit", 4).unwrap();
        assert_eq!(reg.reload().unwrap(), ReloadOutcome::Empty);
        assert!(reg.current().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_publishes_and_deduplicates() {
        let dir = tmp_dir("dedup");
        let mgr = CheckpointManager::new(&dir, "linfit", 4).unwrap();
        mgr.save(&state(4, 1.0)).unwrap();

        let reg = ModelRegistry::new(&dir, "linfit", 4).unwrap();
        assert_eq!(reg.reload().unwrap(), ReloadOutcome::Swapped(0));
        assert_eq!(reg.generation(), Some(0));
        // Same generation again: no swap, no reload counted.
        assert_eq!(reg.reload().unwrap(), ReloadOutcome::Unchanged(0));

        mgr.save(&state(4, 2.0)).unwrap();
        assert_eq!(reg.reload().unwrap(), ReloadOutcome::Swapped(1));
        assert_eq!(reg.generation(), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncate the newest GMCK file on disk: the registry must serve
    /// generation N−1 and count the degradation as a `serve.fallbacks`.
    #[test]
    fn truncated_newest_generation_falls_back_to_previous() {
        let _g = FALLBACK_LOCK.lock().unwrap();
        let dir = tmp_dir("trunc");
        let mgr = CheckpointManager::new(&dir, "linfit", 4).unwrap();
        mgr.save(&state(4, 1.0)).unwrap(); // generation 0
        mgr.save(&state(4, 2.0)).unwrap(); // generation 1 — about to die

        let newest = dir.join("linfit-0000000001.gmck");
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        #[cfg(feature = "telemetry")]
        let fallbacks_before = counter("serve.fallbacks");

        let reg = ModelRegistry::new(&dir, "linfit", 4).unwrap();
        assert_eq!(reg.reload().unwrap(), ReloadOutcome::Swapped(0));
        assert_eq!(reg.generation(), Some(0), "must serve generation N-1");

        #[cfg(feature = "telemetry")]
        assert_eq!(
            counter("serve.fallbacks"),
            fallbacks_before + 1,
            "fallback must be counted"
        );

        // The served model is usable despite the corrupt newest file.
        let model = reg.current().unwrap();
        let out = model.forward(&[vec![0.1, 0.2, 0.3, 0.4]]).unwrap();
        assert!(out[0].is_finite());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_corrupt_keeps_previous_model_and_errors() {
        let _g = FALLBACK_LOCK.lock().unwrap();
        let dir = tmp_dir("allbad");
        let mgr = CheckpointManager::new(&dir, "linfit", 4).unwrap();
        mgr.save(&state(4, 1.0)).unwrap();

        let reg = ModelRegistry::new(&dir, "linfit", 4).unwrap();
        reg.reload().unwrap();
        assert_eq!(reg.generation(), Some(0));

        // New generation arrives but is garbage; gen 0 pruned away too.
        let g0 = dir.join("linfit-0000000000.gmck");
        fs::remove_file(&g0).unwrap();
        fs::write(dir.join("linfit-0000000001.gmck"), b"not a checkpoint").unwrap();

        assert!(reg.reload().is_err());
        // Healthy traffic continues on the previously-published model.
        assert_eq!(reg.generation(), Some(0));
        let _ = fs::remove_dir_all(&dir);
    }
}

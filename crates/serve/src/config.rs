//! Declarative daemon configuration: a strict, hand-rolled parser for a
//! TOML subset (`[section]` headers, `key = value` lines, `#` comments).
//!
//! The grammar is deliberately tiny — no arrays, no nested tables, no
//! multi-line strings — because the config is flat and a full TOML crate
//! would be a dependency the container cannot fetch. The parser is strict
//! the way `cackle`-style tools are: an unknown section or key is an
//! **error**, not a warning, so a typo (`max_wait_ms` for `max_wait_us`)
//! can never silently fall back to a default.
//!
//! ```toml
//! [server]
//! listen = "127.0.0.1:9900"
//! workers = 4
//! max_requests_per_conn = 1000
//! idle_ms = 500
//!
//! [model]
//! dir = "ckpts"
//! prefix = "linfit"
//! keep = 4
//!
//! [batch]
//! max_size = 32
//! max_wait_us = 500
//! queue_cap = 1024
//! max_wait_budget_ms = 50
//! ```

use crate::batch::BatchConfig;
use crate::error::ServeError;
use std::path::{Path, PathBuf};

/// Parsed daemon configuration with defaults for every field.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// `[server] listen` — address the HTTP server binds.
    pub listen: String,
    /// `[server] workers` — connection-worker pool width. Each worker
    /// serves one keep-alive connection at a time, so this bounds
    /// concurrent in-flight requests (notably `/predict` coalescing).
    /// When unset it defaults to `batch.max_size` so a full micro-batch
    /// can be in flight at once.
    pub workers: usize,
    /// `[server] max_requests_per_conn` — requests served over one
    /// keep-alive connection before the server closes it.
    pub max_requests_per_conn: usize,
    /// `[server] idle_ms` — keep-alive idle timeout: how long a worker
    /// waits for the next request on a connection before closing it.
    pub idle_ms: u64,
    /// `[model] dir` — checkpoint directory the registry watches.
    pub model_dir: PathBuf,
    /// `[model] prefix` — checkpoint file prefix (`<prefix>-NNNNNNNNNN.gmck`).
    pub model_prefix: String,
    /// `[model] keep` — retention window passed to the checkpoint manager.
    pub model_keep: usize,
    /// `[batch]` — micro-batching cutoffs and queue bound.
    pub batch: BatchConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:9900".to_string(),
            workers: BatchConfig::default().max_size,
            max_requests_per_conn: 1000,
            idle_ms: 500,
            model_dir: PathBuf::from("ckpts"),
            model_prefix: "linfit".to_string(),
            model_keep: 4,
            batch: BatchConfig::default(),
        }
    }
}

fn bad(line: usize, reason: impl Into<String>) -> ServeError {
    ServeError::Config {
        line,
        reason: reason.into(),
    }
}

/// Strip a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(raw: &str, line: usize) -> Result<String, ServeError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| bad(line, format!("expected a quoted string, got `{raw}`")))?;
    if inner.contains('"') {
        return Err(bad(line, "embedded quotes are not supported"));
    }
    Ok(inner.to_string())
}

fn parse_usize(raw: &str, line: usize) -> Result<usize, ServeError> {
    raw.trim().parse::<usize>().map_err(|_| {
        bad(
            line,
            format!("expected an unsigned integer, got `{}`", raw.trim()),
        )
    })
}

fn parse_u64(raw: &str, line: usize) -> Result<u64, ServeError> {
    raw.trim().parse::<u64>().map_err(|_| {
        bad(
            line,
            format!("expected an unsigned integer, got `{}`", raw.trim()),
        )
    })
}

impl ServeConfig {
    /// Parse the TOML-subset text. Unknown sections/keys, duplicate keys,
    /// malformed values, and zero-valued cutoffs are all hard errors.
    pub fn parse(text: &str) -> Result<ServeConfig, ServeError> {
        let mut cfg = ServeConfig::default();
        let mut section = String::new();
        let mut seen: Vec<String> = Vec::new();

        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(bad(
                        line_no,
                        format!("unterminated section header `{line}`"),
                    ));
                };
                let name = name.trim();
                match name {
                    "server" | "model" | "batch" => section = name.to_string(),
                    other => {
                        return Err(bad(
                            line_no,
                            format!(
                            "unknown section `[{other}]` (expected [server], [model], or [batch])"
                        ),
                        ))
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(bad(
                    line_no,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let key = key.trim();
            let qualified = format!("{section}.{key}");
            if seen.contains(&qualified) {
                return Err(bad(line_no, format!("duplicate key `{qualified}`")));
            }
            seen.push(qualified.clone());
            match qualified.as_str() {
                "server.listen" => cfg.listen = parse_string(value, line_no)?,
                "server.workers" => {
                    cfg.workers = parse_usize(value, line_no)?;
                    if cfg.workers == 0 {
                        return Err(bad(line_no, "server.workers must be at least 1"));
                    }
                }
                "server.max_requests_per_conn" => {
                    cfg.max_requests_per_conn = parse_usize(value, line_no)?;
                    if cfg.max_requests_per_conn == 0 {
                        return Err(bad(
                            line_no,
                            "server.max_requests_per_conn must be at least 1",
                        ));
                    }
                }
                "server.idle_ms" => {
                    cfg.idle_ms = parse_u64(value, line_no)?;
                    if cfg.idle_ms == 0 {
                        return Err(bad(line_no, "server.idle_ms must be at least 1"));
                    }
                }
                "model.dir" => cfg.model_dir = PathBuf::from(parse_string(value, line_no)?),
                "model.prefix" => cfg.model_prefix = parse_string(value, line_no)?,
                "model.keep" => cfg.model_keep = parse_usize(value, line_no)?.max(1),
                "batch.max_size" => {
                    cfg.batch.max_size = parse_usize(value, line_no)?;
                    if cfg.batch.max_size == 0 {
                        return Err(bad(line_no, "batch.max_size must be at least 1"));
                    }
                }
                "batch.max_wait_us" => cfg.batch.max_wait_us = parse_u64(value, line_no)?,
                "batch.max_wait_budget_ms" => {
                    cfg.batch.max_wait_budget_ms = parse_u64(value, line_no)?;
                }
                "batch.queue_cap" => {
                    cfg.batch.queue_cap = parse_usize(value, line_no)?;
                    if cfg.batch.queue_cap == 0 {
                        return Err(bad(line_no, "batch.queue_cap must be at least 1"));
                    }
                }
                _ => {
                    let place = if section.is_empty() {
                        "outside any section".to_string()
                    } else {
                        format!("in [{section}]")
                    };
                    return Err(bad(line_no, format!("unknown key `{key}` {place}")));
                }
            }
        }
        // The worker pool bounds in-flight /predict concurrency; unless
        // pinned explicitly, track the batch size so coalescing can
        // actually reach `max_size` rows.
        if !seen.iter().any(|k| k == "server.workers") {
            cfg.workers = cfg.batch.max_size.max(1);
        }
        Ok(cfg)
    }

    /// Read and parse a config file; a missing path is an I/O-flavoured
    /// config error so the daemon fails fast instead of serving defaults.
    pub fn load(path: &Path) -> Result<ServeConfig, ServeError> {
        let text = std::fs::read_to_string(path).map_err(|e| ServeError::Config {
            line: 0,
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_yields_defaults() {
        assert_eq!(ServeConfig::parse("").unwrap(), ServeConfig::default());
    }

    #[test]
    fn full_config_parses() {
        let cfg = ServeConfig::parse(
            r#"
            # serving config
            [server]
            listen = "0.0.0.0:7777"   # public
            workers = 8
            max_requests_per_conn = 5000
            idle_ms = 250

            [model]
            dir = "/var/lib/gmreg/ckpts"
            prefix = "linfit"
            keep = 8

            [batch]
            max_size = 64
            max_wait_us = 250
            queue_cap = 512
            max_wait_budget_ms = 20
            "#,
        )
        .unwrap();
        assert_eq!(cfg.listen, "0.0.0.0:7777");
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.max_requests_per_conn, 5000);
        assert_eq!(cfg.idle_ms, 250);
        assert_eq!(cfg.model_dir, PathBuf::from("/var/lib/gmreg/ckpts"));
        assert_eq!(cfg.model_keep, 8);
        assert_eq!(cfg.batch.max_size, 64);
        assert_eq!(cfg.batch.max_wait_us, 250);
        assert_eq!(cfg.batch.queue_cap, 512);
        assert_eq!(cfg.batch.max_wait_budget_ms, 20);
    }

    #[test]
    fn unknown_key_is_an_error_with_line_number() {
        let err = ServeConfig::parse("[batch]\nmax_wait_ms = 5\n").unwrap_err();
        match err {
            ServeError::Config { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("max_wait_ms"), "{reason}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unknown_section_duplicate_key_and_bad_values_fail() {
        assert!(ServeConfig::parse("[tuning]\n").is_err());
        assert!(ServeConfig::parse("[model]\nkeep = 2\nkeep = 3\n").is_err());
        assert!(ServeConfig::parse("[model]\nkeep = \"two\"\n").is_err());
        assert!(ServeConfig::parse("[server]\nlisten = 9900\n").is_err());
        assert!(ServeConfig::parse("[batch]\nmax_size = 0\n").is_err());
        assert!(ServeConfig::parse("[server]\nworkers = 0\n").is_err());
        assert!(ServeConfig::parse("[server]\nidle_ms = 0\n").is_err());
        assert!(ServeConfig::parse("listen = \"x\"\n").is_err());
    }

    #[test]
    fn workers_default_tracks_batch_max_size() {
        // Unset workers follow the batch size so the connection pool can
        // keep a full micro-batch in flight...
        let cfg = ServeConfig::parse("[batch]\nmax_size = 64\n").unwrap();
        assert_eq!(cfg.workers, 64);
        assert_eq!(ServeConfig::default().workers, 32);
        // ...but an explicit setting always wins, in either key order.
        let cfg = ServeConfig::parse("[server]\nworkers = 2\n[batch]\nmax_size = 64\n").unwrap();
        assert_eq!(cfg.workers, 2);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = ServeConfig::parse("[model]\nprefix = \"a#b\"\n").unwrap();
        assert_eq!(cfg.model_prefix, "a#b");
    }
}

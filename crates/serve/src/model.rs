//! The frozen forward pass served by the daemon.
//!
//! A [`ServedModel`] is an immutable snapshot of a trained logistic model
//! (`w`, `bias`) reconstructed from a `LinearFitState` checkpoint payload.
//! Inference is one `matmul` of the request batch `[rows × d]` against the
//! weight column `[d × 1]` followed by a numerically-stable sigmoid.
//!
//! ## Bitwise batch invariance
//!
//! Every output row of the matmul is `dot(x_row, w)` computed with the same
//! fixed fold tree regardless of how many other rows share the batch, and
//! the band partitioner splits *rows*, never the reduction dimension. A
//! prediction therefore has exactly the same bits whether its row was
//! served alone or coalesced into a 32-row micro-batch — the property the
//! `serve_batching` suite asserts at thread counts {1, 2, 4, 8}.

use crate::error::ServeError;
use gmreg_linear::LinearFitState;
use gmreg_tensor::Tensor;

/// Immutable, generation-stamped inference model.
#[derive(Debug)]
pub struct ServedModel {
    /// Checkpoint generation this model was loaded from.
    pub generation: u64,
    /// Weight column, shape `[d, 1]`.
    w: Tensor,
    /// Intercept, applied in f64 after the f32 dot product.
    bias: f64,
    dim: usize,
}

/// Numerically-stable sigmoid; same formula as the training path so served
/// probabilities match `predict_proba` to within f32-dot accumulation.
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl ServedModel {
    /// Freeze the inference-relevant slice of a training checkpoint.
    pub fn from_state(generation: u64, state: &LinearFitState) -> Result<Self, ServeError> {
        let dim = state.w.len();
        let w = Tensor::from_vec(state.w.clone(), [dim, 1])
            .map_err(|e| ServeError::BatchFailed(format!("weight tensor: {e}")))?;
        Ok(ServedModel {
            generation,
            w,
            bias: state.bias,
            dim,
        })
    }

    /// Build a model directly from weights (test/bench convenience).
    pub fn from_weights(generation: u64, w: Vec<f32>, bias: f64) -> Result<Self, ServeError> {
        let dim = w.len();
        let w = Tensor::from_vec(w, [dim, 1])
            .map_err(|e| ServeError::BatchFailed(format!("weight tensor: {e}")))?;
        Ok(ServedModel {
            generation,
            w,
            bias,
            dim,
        })
    }

    /// Feature count the model expects per input row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Run the batch through one matmul and return one probability per row.
    ///
    /// Multi-row batches are dispatched onto the persistent pool (capped at
    /// one thread per row); single rows stay serial — the pool's fixed
    /// per-row arithmetic keeps both paths bit-identical.
    pub fn forward(&self, rows: &[Vec<f32>]) -> Result<Vec<f64>, ServeError> {
        let mut flat = Vec::new();
        let mut out = Vec::new();
        self.forward_into(rows, &mut flat, &mut out)?;
        Ok(out)
    }

    /// [`ServedModel::forward`] into caller-owned scratch: `flat` is the
    /// reusable `[rows × d]` staging buffer (its backing allocation rides
    /// through the tensor and is recovered afterwards), `out` receives one
    /// probability per row. The batcher calls this every batch with the
    /// same two buffers, so steady-state inference reallocates neither.
    pub fn forward_into(
        &self,
        rows: &[Vec<f32>],
        flat: &mut Vec<f32>,
        out: &mut Vec<f64>,
    ) -> Result<(), ServeError> {
        out.clear();
        if rows.is_empty() {
            return Ok(());
        }
        flat.clear();
        flat.reserve(rows.len() * self.dim);
        for row in rows {
            if row.len() != self.dim {
                return Err(ServeError::DimensionMismatch {
                    expected: self.dim,
                    actual: row.len(),
                });
            }
            flat.extend_from_slice(row);
        }
        let x = Tensor::from_vec(std::mem::take(flat), [rows.len(), self.dim])
            .map_err(|e| ServeError::BatchFailed(format!("input tensor: {e}")))?;

        // Small batches never clear the auto-parallel FLOP threshold, so
        // engage the pool explicitly for multi-row batches: serving latency
        // wants the width, and the chaos suite needs real pool tasks for
        // the `pool.worker` failpoint to land in.
        #[cfg(feature = "parallel")]
        let z = x
            .matmul_with_threads(&self.w, gmreg_parallel::current_threads().min(rows.len()))
            .map_err(|e| ServeError::BatchFailed(format!("matmul: {e}")))?;
        #[cfg(not(feature = "parallel"))]
        let z = x
            .matmul_serial(&self.w)
            .map_err(|e| ServeError::BatchFailed(format!("matmul: {e}")))?;

        out.extend(
            z.as_slice()
                .iter()
                .map(|&zi| sigmoid(zi as f64 + self.bias)),
        );
        // Hand the staging allocation back for the next batch.
        *flat = x.into_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_model() -> ServedModel {
        let w: Vec<f32> = (0..8).map(|i| (i as f32 - 3.5) * 0.25).collect();
        ServedModel::from_weights(7, w, 0.125).unwrap()
    }

    fn demo_row(seed: u64) -> Vec<f32> {
        (0..8)
            .map(|i| ((seed * 31 + i) % 17) as f32 * 0.1 - 0.8)
            .collect()
    }

    #[test]
    fn outputs_are_probabilities() {
        let m = demo_model();
        let out = m.forward(&[demo_row(1), demo_row(2)]).unwrap();
        assert_eq!(out.len(), 2);
        for p in out {
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn batched_rows_match_single_rows_bitwise() {
        let m = demo_model();
        let rows: Vec<Vec<f32>> = (0..13).map(demo_row).collect();
        let batched = m.forward(&rows).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let single = m.forward(std::slice::from_ref(row)).unwrap();
            assert_eq!(
                batched[i].to_bits(),
                single[0].to_bits(),
                "row {i} diverged between batch and single execution"
            );
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let m = demo_model();
        let err = m.forward(&[vec![1.0; 5]]).unwrap_err();
        assert!(matches!(
            err,
            ServeError::DimensionMismatch {
                expected: 8,
                actual: 5
            }
        ));
    }

    #[test]
    fn empty_batch_is_empty_output() {
        assert!(demo_model().forward(&[]).unwrap().is_empty());
    }
}

//! Labeled datasets: a dense feature tensor plus integer class labels.

use crate::error::{DataError, Result};
use gmreg_tensor::Tensor;

/// A labeled dataset.
///
/// `x` has shape `[N, ...]` — `[N, M]` for tabular data, `[N, C, H, W]`
/// for images — and `y` holds one class index per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Tensor,
    y: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating sample counts and label ranges.
    pub fn new(x: Tensor, y: Vec<usize>, n_classes: usize) -> Result<Self> {
        let n = x.dims().first().copied().unwrap_or(0);
        if n != y.len() {
            return Err(DataError::SampleCountMismatch {
                features: n,
                labels: y.len(),
            });
        }
        if n_classes == 0 {
            return Err(DataError::InvalidConfig {
                field: "n_classes",
                reason: "must be at least 1".into(),
            });
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= n_classes) {
            return Err(DataError::LabelOutOfRange {
                label: bad,
                n_classes,
            });
        }
        Ok(Dataset { x, y, n_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// The feature tensor (`[N, ...]`).
    pub fn x(&self) -> &Tensor {
        &self.x
    }

    /// The labels.
    pub fn y(&self) -> &[usize] {
        &self.y
    }

    /// Declared number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features per sample (product of all non-batch dims).
    pub fn n_features(&self) -> usize {
        self.x.dims().iter().skip(1).product()
    }

    /// The shape of one sample (dims without the batch axis).
    pub fn sample_dims(&self) -> &[usize] {
        &self.x.dims()[1..]
    }

    /// Builds a new dataset holding the given sample indices, in order.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let feat: usize = self.n_features();
        let mut data = Vec::with_capacity(indices.len() * feat);
        let src = self.x.as_slice();
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::NotEnoughSamples {
                    needed: i + 1,
                    available: self.len(),
                });
            }
            data.extend_from_slice(&src[i * feat..(i + 1) * feat]);
            y.push(self.y[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.sample_dims());
        let x = Tensor::from_vec(data, dims)?;
        Dataset::new(x, y, self.n_classes)
    }

    /// Zero-copy view of sample `i`'s features.
    pub fn sample(&self, i: usize) -> Result<&[f32]> {
        if i >= self.len() {
            return Err(DataError::NotEnoughSamples {
                needed: i + 1,
                available: self.len(),
            });
        }
        let feat = self.n_features();
        Ok(&self.x.as_slice()[i * feat..(i + 1) * feat])
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), [4, 3]).unwrap();
        Dataset::new(x, vec![0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        let x = Tensor::zeros([3, 2]);
        assert!(matches!(
            Dataset::new(x.clone(), vec![0, 1], 2),
            Err(DataError::SampleCountMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(x.clone(), vec![0, 1, 2], 2),
            Err(DataError::LabelOutOfRange { .. })
        ));
        assert!(Dataset::new(x, vec![0, 1, 1], 0).is_err());
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.sample_dims(), &[3]);
        assert_eq!(d.sample(2).unwrap(), &[6.0, 7.0, 8.0]);
        assert!(d.sample(4).is_err());
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn subset_reorders() {
        let d = ds();
        let s = d.subset(&[3, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.y(), &[1, 0]);
        assert_eq!(s.sample(0).unwrap(), &[9.0, 10.0, 11.0]);
        assert!(d.subset(&[7]).is_err());
    }

    #[test]
    fn image_shaped_dataset() {
        let x = Tensor::zeros([2, 3, 4, 4]);
        let d = Dataset::new(x, vec![0, 1], 2).unwrap();
        assert_eq!(d.n_features(), 48);
        assert_eq!(d.sample_dims(), &[3, 4, 4]);
        let s = d.subset(&[1]).unwrap();
        assert_eq!(s.x().dims(), &[1, 3, 4, 4]);
    }
}

//! Mini-batch iteration with per-epoch shuffling.

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::tele;
use gmreg_tensor::{shuffled_indices, Tensor};
use rand::Rng;

/// One mini-batch: a dense feature tensor and its labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Features, shape `[B, ...]`.
    pub x: Tensor,
    /// Labels, length `B`.
    pub y: Vec<usize>,
}

/// Plans one epoch of mini-batches over a dataset.
///
/// The sampler reshuffles at construction; build a new one (or call
/// [`Batcher::reshuffle`]) each epoch. The final batch may be smaller than
/// `batch_size` (no samples are dropped).
#[derive(Debug)]
pub struct Batcher {
    order: Vec<usize>,
    batch_size: usize,
}

impl Batcher {
    /// Creates a shuffled batch plan.
    pub fn new(ds: &Dataset, batch_size: usize, rng: &mut impl Rng) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig {
                field: "batch_size",
                reason: "must be at least 1".into(),
            });
        }
        if ds.is_empty() {
            return Err(DataError::NotEnoughSamples {
                needed: 1,
                available: 0,
            });
        }
        Ok(Batcher {
            order: shuffled_indices(rng, ds.len()),
            batch_size,
        })
    }

    /// Creates a deterministic, unshuffled plan (useful for evaluation).
    pub fn sequential(ds: &Dataset, batch_size: usize) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig {
                field: "batch_size",
                reason: "must be at least 1".into(),
            });
        }
        if ds.is_empty() {
            return Err(DataError::NotEnoughSamples {
                needed: 1,
                available: 0,
            });
        }
        Ok(Batcher {
            order: (0..ds.len()).collect(),
            batch_size,
        })
    }

    /// Number of batches in the epoch (`B` in Algorithm 2).
    pub fn n_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Re-shuffles the plan for a new epoch.
    pub fn reshuffle(&mut self, rng: &mut impl Rng) {
        let perm = shuffled_indices(rng, self.order.len());
        self.order = perm.into_iter().map(|p| self.order[p]).collect();
    }

    /// Materializes batch `i` from the dataset.
    pub fn batch(&self, ds: &Dataset, i: usize) -> Result<Batch> {
        let lo = i * self.batch_size;
        if lo >= self.order.len() {
            return Err(DataError::NotEnoughSamples {
                needed: lo + 1,
                available: self.order.len(),
            });
        }
        let hi = (lo + self.batch_size).min(self.order.len());
        tele::counter_inc("data.batches.materialized");
        tele::counter_add("data.samples.materialized", (hi - lo) as u64);
        let sub = ds.subset(&self.order[lo..hi])?;
        Ok(Batch {
            y: sub.y().to_vec(),
            x: sub.x().clone(),
        })
    }

    /// Iterates all batches of the epoch.
    pub fn iter<'a>(&'a self, ds: &'a Dataset) -> impl Iterator<Item = Result<Batch>> + 'a {
        (0..self.n_batches()).map(move |i| self.batch(ds, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ds(n: usize) -> Dataset {
        let x = Tensor::from_vec((0..n).map(|v| v as f32).collect(), [n, 1]).unwrap();
        Dataset::new(x, vec![0; n], 1).unwrap()
    }

    #[test]
    fn covers_every_sample_once() {
        let d = ds(10);
        let mut rng = StdRng::seed_from_u64(2);
        let b = Batcher::new(&d, 3, &mut rng).unwrap();
        assert_eq!(b.n_batches(), 4);
        let mut seen: Vec<f32> = b
            .iter(&d)
            .flat_map(|batch| batch.unwrap().x.into_vec())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn last_batch_is_short() {
        let d = ds(10);
        let b = Batcher::sequential(&d, 4).unwrap();
        assert_eq!(b.batch(&d, 2).unwrap().y.len(), 2);
        assert!(b.batch(&d, 3).is_err());
    }

    #[test]
    fn sequential_preserves_order() {
        let d = ds(5);
        let b = Batcher::sequential(&d, 2).unwrap();
        assert_eq!(b.batch(&d, 0).unwrap().x.as_slice(), &[0.0, 1.0]);
        assert_eq!(b.batch(&d, 2).unwrap().x.as_slice(), &[4.0]);
    }

    #[test]
    fn reshuffle_changes_order() {
        let d = ds(64);
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Batcher::new(&d, 64, &mut rng).unwrap();
        let before = b.batch(&d, 0).unwrap().x.into_vec();
        b.reshuffle(&mut rng);
        let after = b.batch(&d, 0).unwrap().x.into_vec();
        assert_ne!(before, after);
    }

    #[test]
    fn validation() {
        let d = ds(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Batcher::new(&d, 0, &mut rng).is_err());
        assert!(Batcher::sequential(&d, 0).is_err());
        let empty = Dataset::new(Tensor::zeros([0, 1]), vec![], 1).unwrap();
        assert!(Batcher::new(&empty, 1, &mut rng).is_err());
        assert!(Batcher::sequential(&empty, 1).is_err());
    }
}

//! Synthetic workload generators substituting for the paper's datasets
//! (CIFAR-10, the private Hosp-FA hospital dataset, and the 11 UCI
//! benchmarks) — see DESIGN.md §3 for the substitution rationale.

mod images;
mod tabular;
mod uci;

pub use images::ImageSpec;
pub use tabular::{CatSpec, TabularSpec};
pub use uci::{small_dataset, small_dataset_suite, FeatureType, SmallDataset};

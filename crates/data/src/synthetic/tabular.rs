//! Synthetic tabular classification generator.
//!
//! Substitutes for the UCI and hospital datasets the paper evaluates on
//! (see DESIGN.md §3). The generator reproduces the structure that drives
//! the paper's Table VII comparison: a minority of *informative* features
//! with real effects on the label and a majority of *noise* features with
//! none, so that a well-fit prior over the weights has two populations —
//! exactly the regime GM regularization exploits.

use crate::encode::{Column, RawDataset};
use crate::error::{DataError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Specification of one categorical column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatSpec {
    /// Number of categories.
    pub arity: usize,
    /// Whether the column's categories carry signal about the label.
    pub informative: bool,
}

/// Specification of a synthetic tabular dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TabularSpec {
    /// Number of samples to generate.
    pub n_samples: usize,
    /// Continuous columns with non-zero true weights.
    pub n_informative_cont: usize,
    /// Continuous columns with zero true weight (pure noise).
    pub n_noise_cont: usize,
    /// Categorical columns.
    pub categorical: Vec<CatSpec>,
    /// Scale of the logistic noise added to the decision score; larger
    /// values blur the class boundary and lower the achievable accuracy.
    pub boundary_noise: f64,
    /// Fraction of labels flipped after generation.
    pub label_noise: f64,
    /// Probability that any individual cell is missing.
    pub missing_rate: f64,
    /// Standard deviation of the *weak* effects carried by the "noise"
    /// features, relative to the informative features' unit scale. Real
    /// noisy features are rarely pure noise; the paper's argument against
    /// L1 is precisely that it removes their weak signal entirely while GM
    /// retains it under a small-variance component. `0.0` makes them pure
    /// noise.
    pub weak_signal: f64,
}

impl TabularSpec {
    /// Encoded feature count this spec will produce, assuming every
    /// categorical column with `missing_rate > 0` gains a missing
    /// indicator.
    pub fn encoded_features(&self) -> usize {
        let missing_extra = usize::from(self.missing_rate > 0.0);
        self.n_informative_cont
            + self.n_noise_cont
            + self
                .categorical
                .iter()
                .map(|c| c.arity + missing_extra)
                .sum::<usize>()
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<()> {
        if self.n_samples < 4 {
            return Err(DataError::InvalidConfig {
                field: "n_samples",
                reason: "need at least 4 samples".into(),
            });
        }
        if self.n_informative_cont == 0 && !self.categorical.iter().any(|c| c.informative) {
            return Err(DataError::InvalidConfig {
                field: "n_informative_cont",
                reason: "need at least one informative feature".into(),
            });
        }
        if !(0.0..=0.5).contains(&self.label_noise) {
            return Err(DataError::InvalidConfig {
                field: "label_noise",
                reason: format!("must lie in [0, 0.5], got {}", self.label_noise),
            });
        }
        if !(0.0..1.0).contains(&self.missing_rate) {
            return Err(DataError::InvalidConfig {
                field: "missing_rate",
                reason: format!("must lie in [0, 1), got {}", self.missing_rate),
            });
        }
        if !(self.weak_signal.is_finite() && self.weak_signal >= 0.0) {
            return Err(DataError::InvalidConfig {
                field: "weak_signal",
                reason: format!("must be non-negative, got {}", self.weak_signal),
            });
        }
        if !(self.boundary_noise.is_finite() && self.boundary_noise >= 0.0) {
            return Err(DataError::InvalidConfig {
                field: "boundary_noise",
                reason: format!("must be non-negative, got {}", self.boundary_noise),
            });
        }
        if let Some(c) = self.categorical.iter().find(|c| c.arity < 2) {
            return Err(DataError::InvalidConfig {
                field: "categorical",
                reason: format!("arity must be at least 2, got {}", c.arity),
            });
        }
        Ok(())
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<RawDataset> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.n_samples;

        // True effects. Informative continuous features carry weights with
        // magnitude bounded away from zero so the informative/noise split
        // is unambiguous.
        let cont_total = self.n_informative_cont + self.n_noise_cont;
        let mut cont_w = vec![0.0f64; cont_total];
        for (j, w) in cont_w.iter_mut().enumerate() {
            if j < self.n_informative_cont {
                let mag = 0.5 + rng.random::<f64>(); // [0.5, 1.5)
                *w = if rng.random::<f64>() < 0.5 { mag } else { -mag };
            } else if self.weak_signal > 0.0 {
                *w = self.weak_signal * standard_normal(&mut rng);
            }
        }
        // Category effects: one score offset per (column, category).
        let cat_effects: Vec<Vec<f64>> = self
            .categorical
            .iter()
            .map(|c| {
                (0..c.arity)
                    .map(|_| {
                        if c.informative {
                            standard_normal(&mut rng)
                        } else {
                            self.weak_signal * standard_normal(&mut rng)
                        }
                    })
                    .collect()
            })
            .collect();

        // Draw raw feature values and accumulate scores.
        let mut cont_vals: Vec<Vec<f64>> = vec![vec![0.0; n]; cont_total];
        let mut cat_vals: Vec<Vec<u32>> = self
            .categorical
            .iter()
            .map(|c| {
                (0..n)
                    .map(|_| rng.random_range(0..c.arity as u32))
                    .collect()
            })
            .collect();
        let mut scores = vec![0.0f64; n];
        for (j, col) in cont_vals.iter_mut().enumerate() {
            for (i, v) in col.iter_mut().enumerate() {
                *v = standard_normal(&mut rng);
                scores[i] += cont_w[j] * *v;
            }
        }
        for (c, col) in cat_vals.iter_mut().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                scores[i] += cat_effects[c][v as usize];
            }
        }

        // Normalize score scale so boundary_noise is comparable across specs,
        // then draw labels from a logistic model and apply label flips.
        let scale = {
            let mean = scores.iter().sum::<f64>() / n as f64;
            let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
            var.sqrt().max(1e-9)
        };
        let mut y = Vec::with_capacity(n);
        for s in &scores {
            let z = s / scale + self.boundary_noise * logistic_noise(&mut rng);
            y.push(usize::from(z > 0.0));
        }
        for l in y.iter_mut() {
            if rng.random::<f64>() < self.label_noise {
                *l = 1 - *l;
            }
        }

        // Knock out cells at the missing rate.
        let mut columns = Vec::with_capacity(cont_total + self.categorical.len());
        for col in cont_vals {
            let values = col
                .into_iter()
                .map(|v| {
                    if self.missing_rate > 0.0 && rng.random::<f64>() < self.missing_rate {
                        None
                    } else {
                        Some(v)
                    }
                })
                .collect();
            columns.push(Column::Continuous { values });
        }
        for (c, col) in cat_vals.into_iter().enumerate() {
            let values = col
                .into_iter()
                .map(|v| {
                    if self.missing_rate > 0.0 && rng.random::<f64>() < self.missing_rate {
                        None
                    } else {
                        Some(v)
                    }
                })
                .collect();
            columns.push(Column::Categorical {
                arity: self.categorical[c].arity,
                values,
            });
        }
        RawDataset::new(columns, y, 2)
    }
}

fn standard_normal(rng: &mut impl RngExt) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Standard logistic noise (inverse-CDF sampling).
fn logistic_noise(rng: &mut impl RngExt) -> f64 {
    let u: f64 = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
    (u / (1.0 - u)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TabularSpec {
        TabularSpec {
            n_samples: 300,
            n_informative_cont: 5,
            n_noise_cont: 10,
            categorical: vec![
                CatSpec {
                    arity: 3,
                    informative: true,
                },
                CatSpec {
                    arity: 4,
                    informative: false,
                },
            ],
            boundary_noise: 0.3,
            label_noise: 0.02,
            missing_rate: 0.05,
            weak_signal: 0.0,
        }
    }

    #[test]
    fn encoded_feature_count_matches_prediction() {
        let s = spec();
        let raw = s.generate(1).unwrap();
        // Predicted: 15 continuous + (3+1) + (4+1) = 24 (missing indicators
        // appear whenever the column actually contains a missing value).
        assert_eq!(s.encoded_features(), 24);
        assert!(raw.encoded_features() <= 24);
        assert!(raw.encoded_features() >= 22);
        assert_eq!(raw.len(), 300);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        assert_eq!(s.generate(7).unwrap(), s.generate(7).unwrap());
        assert_ne!(s.generate(7).unwrap(), s.generate(8).unwrap());
    }

    #[test]
    fn labels_depend_on_informative_features() {
        // With no noise features and no label noise, a strong single
        // informative feature should correlate heavily with the label.
        let s = TabularSpec {
            n_samples: 500,
            n_informative_cont: 1,
            n_noise_cont: 0,
            categorical: vec![],
            boundary_noise: 0.0,
            label_noise: 0.0,
            missing_rate: 0.0,
            weak_signal: 0.0,
        };
        let raw = s.generate(3).unwrap();
        let ds = raw.encode().unwrap();
        // Check |corr(x0, y)| is high.
        let mut agree = 0;
        for i in 0..ds.len() {
            let x = ds.sample(i).unwrap()[0];
            let pred = usize::from(x > 0.0);
            if pred == ds.y()[i] || pred == 1 - ds.y()[i] {
                // direction of the weight is random; count the majority below
            }
            agree += usize::from(pred == ds.y()[i]);
        }
        let rate = agree as f64 / ds.len() as f64;
        assert!(
            !(0.1..=0.9).contains(&rate),
            "single informative feature should nearly determine labels, rate {rate}"
        );
    }

    #[test]
    fn both_classes_present() {
        let raw = spec().generate(11).unwrap();
        let ones: usize = raw.y().iter().sum();
        assert!(ones > 30 && ones < 270, "classes badly unbalanced: {ones}");
    }

    #[test]
    fn missing_rate_respected() {
        let s = TabularSpec {
            missing_rate: 0.2,
            ..spec()
        };
        let raw = s.generate(5).unwrap();
        let mut missing = 0usize;
        let mut total = 0usize;
        for col in raw.columns() {
            match col {
                Column::Continuous { values } => {
                    missing += values.iter().filter(|v| v.is_none()).count();
                    total += values.len();
                }
                Column::Categorical { values, .. } => {
                    missing += values.iter().filter(|v| v.is_none()).count();
                    total += values.len();
                }
            }
        }
        let rate = missing as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.05, "missing rate {rate}");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = spec();
        s.n_samples = 2;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.label_noise = 0.7;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.missing_rate = 1.0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.boundary_noise = -1.0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.categorical[0].arity = 1;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.n_informative_cont = 0;
        s.categorical.clear();
        assert!(s.validate().is_err());
    }
}

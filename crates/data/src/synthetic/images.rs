//! Synthetic class-structured image dataset — the CIFAR-10 substitute.
//!
//! Each class owns a smooth template image (a seeded sum of random 2-D
//! sinusoids per channel). A sample is its class template, randomly
//! shifted by a few pixels and scaled in amplitude, plus dense Gaussian
//! pixel noise. The task therefore requires some spatial tolerance
//! (convolutions help), is learnable to high accuracy with enough data,
//! and overfits readily when the training set is small — the properties
//! the paper's CIFAR-10 experiments rely on. See DESIGN.md §3.

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use gmreg_tensor::{SampleExt, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Specification of a synthetic image classification dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSpec {
    /// Number of classes (10 for the CIFAR-10 substitute).
    pub n_classes: usize,
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Channels (3 for the CIFAR-10 substitute).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Standard deviation of the additive pixel noise.
    pub noise_std: f32,
    /// Maximum template shift in pixels (per axis, uniform in ±shift).
    pub max_shift: usize,
    /// RNG seed controlling templates and samples.
    pub seed: u64,
}

impl ImageSpec {
    /// A small CIFAR-10-like default: 32×32×3, 10 classes.
    pub fn cifar_like(n_train: usize, n_test: usize, seed: u64) -> Self {
        ImageSpec {
            n_classes: 10,
            n_train,
            n_test,
            channels: 3,
            height: 32,
            width: 32,
            noise_std: 0.6,
            max_shift: 2,
            seed,
        }
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<()> {
        if self.n_classes < 2 {
            return Err(DataError::InvalidConfig {
                field: "n_classes",
                reason: "need at least two classes".into(),
            });
        }
        if self.n_train < self.n_classes || self.n_test < self.n_classes {
            return Err(DataError::InvalidConfig {
                field: "n_train/n_test",
                reason: "need at least one sample per class on each side".into(),
            });
        }
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(DataError::InvalidConfig {
                field: "shape",
                reason: "channels, height and width must be positive".into(),
            });
        }
        if !(self.noise_std.is_finite() && self.noise_std >= 0.0) {
            return Err(DataError::InvalidConfig {
                field: "noise_std",
                reason: format!("must be non-negative, got {}", self.noise_std),
            });
        }
        Ok(())
    }

    /// Generates `(train, test)` datasets with shape `[N, C, H, W]` and
    /// per-pixel zero mean across the whole training set (the paper's
    /// "per-pixel mean subtracted" preprocessing for ResNet).
    pub fn generate(&self) -> Result<(Dataset, Dataset)> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let templates = self.make_templates(&mut rng);

        let train = self.sample_set(self.n_train, &templates, &mut rng)?;
        let test = self.sample_set(self.n_test, &templates, &mut rng)?;

        // Per-pixel mean from the training set, subtracted from both.
        let feat = self.channels * self.height * self.width;
        let mut mean = vec![0.0f64; feat];
        for i in 0..train.0.len() / feat {
            for (m, &v) in mean.iter_mut().zip(&train.0[i * feat..(i + 1) * feat]) {
                *m += v as f64;
            }
        }
        let n_tr = (train.0.len() / feat) as f64;
        for m in mean.iter_mut() {
            *m /= n_tr;
        }
        let center = |mut data: Vec<f32>| {
            for i in 0..data.len() / feat {
                for (v, &m) in data[i * feat..(i + 1) * feat].iter_mut().zip(&mean) {
                    *v -= m as f32;
                }
            }
            data
        };

        let dims_tr = vec![self.n_train, self.channels, self.height, self.width];
        let dims_te = vec![self.n_test, self.channels, self.height, self.width];
        let tr = Dataset::new(
            Tensor::from_vec(center(train.0), dims_tr)?,
            train.1,
            self.n_classes,
        )?;
        let te = Dataset::new(
            Tensor::from_vec(center(test.0), dims_te)?,
            test.1,
            self.n_classes,
        )?;
        Ok((tr, te))
    }

    /// One smooth template per class: per channel, a sum of 4 random 2-D
    /// sinusoids with random orientation and phase.
    fn make_templates(&self, rng: &mut StdRng) -> Vec<Vec<f32>> {
        let feat = self.channels * self.height * self.width;
        (0..self.n_classes)
            .map(|_| {
                let mut t = vec![0.0f32; feat];
                for c in 0..self.channels {
                    for _ in 0..4 {
                        let fx = rng.uniform(0.5, 3.0) * std::f64::consts::TAU / self.width as f64;
                        let fy = rng.uniform(0.5, 3.0) * std::f64::consts::TAU / self.height as f64;
                        let phase = rng.uniform(0.0, std::f64::consts::TAU);
                        let amp = rng.uniform(0.25, 0.6);
                        for y in 0..self.height {
                            for x in 0..self.width {
                                let v = amp * (fx * x as f64 + fy * y as f64 + phase).sin();
                                t[c * self.height * self.width + y * self.width + x] += v as f32;
                            }
                        }
                    }
                }
                t
            })
            .collect()
    }

    fn sample_set(
        &self,
        n: usize,
        templates: &[Vec<f32>],
        rng: &mut StdRng,
    ) -> Result<(Vec<f32>, Vec<usize>)> {
        let feat = self.channels * self.height * self.width;
        let mut data = Vec::with_capacity(n * feat);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin labels guarantee every class appears.
            let label = i % self.n_classes;
            labels.push(label);
            let shift_y = self.rand_shift(rng);
            let shift_x = self.rand_shift(rng);
            let amp = rng.uniform(0.8, 1.2) as f32;
            let t = &templates[label];
            for c in 0..self.channels {
                for y in 0..self.height {
                    for x in 0..self.width {
                        let sy = y as isize + shift_y;
                        let sx = x as isize + shift_x;
                        let base = if (0..self.height as isize).contains(&sy)
                            && (0..self.width as isize).contains(&sx)
                        {
                            t[c * self.height * self.width + sy as usize * self.width + sx as usize]
                        } else {
                            0.0
                        };
                        let noise = rng.normal(0.0, self.noise_std as f64) as f32;
                        data.push(amp * base + noise);
                    }
                }
            }
        }
        Ok((data, labels))
    }

    fn rand_shift(&self, rng: &mut StdRng) -> isize {
        if self.max_shift == 0 {
            0
        } else {
            rng.random_range(0..=2 * self.max_shift) as isize - self.max_shift as isize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ImageSpec {
        ImageSpec {
            n_classes: 4,
            n_train: 40,
            n_test: 16,
            channels: 2,
            height: 8,
            width: 8,
            noise_std: 0.3,
            max_shift: 1,
            seed: 5,
        }
    }

    #[test]
    fn shapes_and_labels() {
        let (tr, te) = spec().generate().unwrap();
        assert_eq!(tr.x().dims(), &[40, 2, 8, 8]);
        assert_eq!(te.x().dims(), &[16, 2, 8, 8]);
        assert_eq!(tr.n_classes(), 4);
        // round-robin labels -> balanced classes
        assert_eq!(tr.class_counts(), vec![10; 4]);
        assert_eq!(te.class_counts(), vec![4; 4]);
    }

    #[test]
    fn per_pixel_mean_is_zero_on_train() {
        let (tr, _) = spec().generate().unwrap();
        let feat = 2 * 8 * 8;
        let mut mean = vec![0.0f64; feat];
        for i in 0..tr.len() {
            for (m, &v) in mean.iter_mut().zip(tr.sample(i).unwrap()) {
                *m += v as f64;
            }
        }
        for m in &mean {
            assert!((m / tr.len() as f64).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = spec().generate().unwrap();
        let (b, _) = spec().generate().unwrap();
        assert_eq!(a.x().as_slice(), b.x().as_slice());
        let mut other = spec();
        other.seed = 6;
        let (c, _) = other.generate().unwrap();
        assert_ne!(a.x().as_slice(), c.x().as_slice());
    }

    #[test]
    fn same_class_more_similar_than_cross_class() {
        // Average intra-class distance must be lower than inter-class: the
        // signal must dominate enough for learnability.
        let mut s = spec();
        s.noise_std = 0.2;
        s.max_shift = 0;
        let (tr, _) = s.generate().unwrap();
        let dist = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
        };
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..tr.len() {
            for j in (i + 1)..tr.len() {
                let d = dist(tr.sample(i).unwrap(), tr.sample(j).unwrap());
                if tr.y()[i] == tr.y()[j] {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra = intra.0 / intra.1 as f64;
        let inter = inter.0 / inter.1 as f64;
        assert!(
            inter > 1.5 * intra,
            "templates should separate classes: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn cifar_like_defaults() {
        let s = ImageSpec::cifar_like(100, 20, 1);
        assert_eq!(s.n_classes, 10);
        assert_eq!((s.channels, s.height, s.width), (3, 32, 32));
        s.validate().unwrap();
    }

    #[test]
    fn validation_errors() {
        let mut s = spec();
        s.n_classes = 1;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.n_train = 2;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.channels = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.noise_std = f32::NAN;
        assert!(s.validate().is_err());
    }
}

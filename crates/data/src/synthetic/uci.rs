//! Synthetic stand-ins for the paper's 12 small datasets: the 11 UCI
//! benchmark datasets of Table II plus the private Hosp-FA hospital
//! readmission dataset.
//!
//! Each spec reproduces the corresponding dataset's sample count, encoded
//! feature count and feature-type mix (categorical / continuous /
//! combined) from Table II; noise parameters are tuned so logistic
//! regression lands in the accuracy band Table VII reports. The Hosp-FA
//! generator follows the paper's own description: a minority of strongly
//! predictive features and a majority of noisy ones (Section V-A).

use crate::encode::RawDataset;
use crate::error::Result;
use crate::synthetic::tabular::{CatSpec, TabularSpec};

/// The kind of features a dataset contains, as reported in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureType {
    /// Only categorical (one-hot encoded) features.
    Categorical,
    /// Only continuous features.
    Continuous,
    /// Both kinds.
    Combined,
}

impl FeatureType {
    /// Name used in reports, matching Table II.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureType::Categorical => "categorical",
            FeatureType::Continuous => "continuous",
            FeatureType::Combined => "combined",
        }
    }
}

/// A named small-dataset benchmark entry.
#[derive(Debug, Clone)]
pub struct SmallDataset {
    /// Dataset name as the paper spells it.
    pub name: &'static str,
    /// Feature-type mix, from Table II.
    pub feature_type: FeatureType,
    /// The generator specification.
    pub spec: TabularSpec,
    /// Base RNG seed; subsample `s` uses `seed + s`.
    pub seed: u64,
}

impl SmallDataset {
    /// Generates the raw dataset.
    pub fn generate(&self) -> Result<RawDataset> {
        self.spec.generate(self.seed)
    }
}

fn cats(n: usize, arity: usize, informative_every: usize) -> Vec<CatSpec> {
    (0..n)
        .map(|i| CatSpec {
            arity,
            informative: i % informative_every == 0,
        })
        .collect()
}

/// The full Table VII benchmark: Hosp-FA first, then the 11 UCI datasets
/// in the paper's (alphabetical) order.
///
/// Sample and encoded-feature counts follow Table II; the generator noise
/// levels are calibrated so logistic-regression accuracy falls near the
/// band Table VII reports for each dataset.
pub fn small_dataset_suite() -> Vec<SmallDataset> {
    vec![
        // Hosp-FA: 1755 samples, 375 features, combined; target acc ~0.85.
        // The paper: predictive features -> large-variance weights, noisy
        // features -> small-variance weights. A *minority* of strongly
        // predictive features: 30 informative + 145 noise continuous, 100
        // binary categorical columns (10 informative); encoded 175 + 200
        // = 375.
        SmallDataset {
            name: "Hosp-FA",
            feature_type: FeatureType::Combined,
            spec: TabularSpec {
                n_samples: 1755,
                n_informative_cont: 30,
                n_noise_cont: 145,
                categorical: cats(100, 2, 10),
                boundary_noise: 0.22,
                label_noise: 0.02,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA001,
        },
        // breast-canc: 699 samples, 81 categorical features (9 cols x 9).
        SmallDataset {
            name: "breast-canc",
            feature_type: FeatureType::Categorical,
            spec: TabularSpec {
                n_samples: 699,
                n_informative_cont: 0,
                n_noise_cont: 0,
                categorical: cats(9, 9, 1),
                boundary_noise: 0.005,
                label_noise: 0.005,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA002,
        },
        // breast-canc-dia: 569 samples, 30 continuous.
        SmallDataset {
            name: "breast-canc-dia",
            feature_type: FeatureType::Continuous,
            spec: TabularSpec {
                n_samples: 569,
                n_informative_cont: 20,
                n_noise_cont: 10,
                categorical: vec![],
                boundary_noise: 0.06,
                label_noise: 0.005,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA003,
        },
        // breast-canc-pro: 198 samples, 33 continuous.
        SmallDataset {
            name: "breast-canc-pro",
            feature_type: FeatureType::Continuous,
            spec: TabularSpec {
                n_samples: 198,
                n_informative_cont: 14,
                n_noise_cont: 19,
                categorical: vec![],
                boundary_noise: 0.12,
                label_noise: 0.03,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA004,
        },
        // climate-model: 540 samples, 18 continuous.
        SmallDataset {
            name: "climate-model",
            feature_type: FeatureType::Continuous,
            spec: TabularSpec {
                n_samples: 540,
                n_informative_cont: 6,
                n_noise_cont: 12,
                categorical: vec![],
                boundary_noise: 0.03,
                label_noise: 0.005,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA005,
        },
        // congress-voting: 435 samples, 32 categorical (16 cols x 2).
        SmallDataset {
            name: "congress-voting",
            feature_type: FeatureType::Categorical,
            spec: TabularSpec {
                n_samples: 435,
                n_informative_cont: 0,
                n_noise_cont: 0,
                categorical: cats(16, 2, 2),
                boundary_noise: 0.008,
                label_noise: 0.005,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA006,
        },
        // conn-sonar: 208 samples, 60 continuous.
        SmallDataset {
            name: "conn-sonar",
            feature_type: FeatureType::Continuous,
            spec: TabularSpec {
                n_samples: 208,
                n_informative_cont: 40,
                n_noise_cont: 20,
                categorical: vec![],
                boundary_noise: 0.17,
                label_noise: 0.02,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA007,
        },
        // credit-approval: 690 samples, 42 combined (6 cont + 12 cat x 3).
        SmallDataset {
            name: "credit-approval",
            feature_type: FeatureType::Combined,
            spec: TabularSpec {
                n_samples: 690,
                n_informative_cont: 4,
                n_noise_cont: 2,
                categorical: cats(12, 3, 2),
                boundary_noise: 0.35,
                label_noise: 0.02,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA008,
        },
        // cylindar-bands: 541 samples, 93 combined (13 cont + 20 cat x 4).
        SmallDataset {
            name: "cylindar-bands",
            feature_type: FeatureType::Combined,
            spec: TabularSpec {
                n_samples: 541,
                n_informative_cont: 6,
                n_noise_cont: 7,
                categorical: cats(20, 4, 4),
                boundary_noise: 0.28,
                label_noise: 0.04,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA009,
        },
        // hepatitis: 155 samples, 34 combined (6 cont + 14 cat x 2).
        SmallDataset {
            name: "hepatitis",
            feature_type: FeatureType::Combined,
            spec: TabularSpec {
                n_samples: 155,
                n_informative_cont: 3,
                n_noise_cont: 3,
                categorical: cats(14, 2, 2),
                boundary_noise: 0.18,
                label_noise: 0.02,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA00A,
        },
        // horse-colic: 368 samples, 58 combined (10 cont + 16 cat x 3).
        SmallDataset {
            name: "horse-colic",
            feature_type: FeatureType::Combined,
            spec: TabularSpec {
                n_samples: 368,
                n_informative_cont: 5,
                n_noise_cont: 5,
                categorical: cats(16, 3, 4),
                boundary_noise: 0.1,
                label_noise: 0.02,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA00B,
        },
        // ionosphere: 351 samples, 33 combined (31 cont + 1 cat x 2).
        SmallDataset {
            name: "ionosphere",
            feature_type: FeatureType::Combined,
            spec: TabularSpec {
                n_samples: 351,
                n_informative_cont: 16,
                n_noise_cont: 15,
                categorical: cats(1, 2, 1),
                boundary_noise: 0.09,
                label_noise: 0.01,
                missing_rate: 0.0,
                weak_signal: 0.12,
            },
            seed: 0xA00C,
        },
    ]
}

/// Looks a dataset up by name.
pub fn small_dataset(name: &str) -> Option<SmallDataset> {
    small_dataset_suite().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (name, samples, encoded features) straight from Table II + Hosp-FA.
    const TABLE_II: [(&str, usize, usize); 12] = [
        ("Hosp-FA", 1755, 375),
        ("breast-canc", 699, 81),
        ("breast-canc-dia", 569, 30),
        ("breast-canc-pro", 198, 33),
        ("climate-model", 540, 18),
        ("congress-voting", 435, 32),
        ("conn-sonar", 208, 60),
        ("credit-approval", 690, 42),
        ("cylindar-bands", 541, 93),
        ("hepatitis", 155, 34),
        ("horse-colic", 368, 58),
        ("ionosphere", 351, 33),
    ];

    #[test]
    fn suite_matches_table_ii_counts() {
        let suite = small_dataset_suite();
        assert_eq!(suite.len(), 12);
        for ((name, n, m), ds) in TABLE_II.iter().zip(&suite) {
            assert_eq!(ds.name, *name);
            assert_eq!(ds.spec.n_samples, *n, "{name}: sample count");
            assert_eq!(ds.spec.encoded_features(), *m, "{name}: feature count");
            ds.spec.validate().unwrap();
        }
    }

    #[test]
    fn every_dataset_generates_and_encodes() {
        for ds in small_dataset_suite() {
            let raw = ds.generate().unwrap();
            assert_eq!(raw.len(), ds.spec.n_samples, "{}", ds.name);
            let enc = raw.encode().unwrap();
            assert_eq!(enc.n_features(), ds.spec.encoded_features(), "{}", ds.name);
            let counts = enc.class_counts();
            assert!(
                counts.iter().all(|&c| c >= ds.spec.n_samples / 10),
                "{}: classes too unbalanced {counts:?}",
                ds.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(small_dataset("horse-colic").is_some());
        assert!(small_dataset("no-such-dataset").is_none());
    }

    #[test]
    fn feature_type_names() {
        assert_eq!(FeatureType::Categorical.name(), "categorical");
        assert_eq!(FeatureType::Continuous.name(), "continuous");
        assert_eq!(FeatureType::Combined.name(), "combined");
    }
}

//! Image data augmentation: zero-pad + random crop and horizontal flip —
//! the standard CIFAR recipe the paper applies to ResNet (Section V-A:
//! "Data augmentation is performed for ResNet but not for
//! Alex-CIFAR-10").

use crate::error::{DataError, Result};
use gmreg_tensor::Tensor;
use rand::RngExt;

/// Configuration of the augmentation pipeline applied per training batch.
#[derive(Debug, Clone, Copy)]
pub struct Augment {
    /// Zero padding added to each side before cropping back to the original
    /// size (4 in the ResNet paper's CIFAR recipe).
    pub pad: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f64,
}

impl Default for Augment {
    fn default() -> Self {
        Augment {
            pad: 4,
            flip_prob: 0.5,
        }
    }
}

impl Augment {
    /// Applies the pipeline in place to a batch of images `[N, C, H, W]`.
    pub fn apply_batch(&self, batch: &mut Tensor, rng: &mut impl RngExt) -> Result<()> {
        let dims = batch.dims().to_vec();
        if dims.len() != 4 {
            return Err(DataError::InvalidConfig {
                field: "batch",
                reason: format!("expected [N, C, H, W] images, got {dims:?}"),
            });
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let img_len = c * h * w;
        let data = batch.as_mut_slice();
        let mut scratch = vec![0.0f32; img_len];
        for i in 0..n {
            let img = &mut data[i * img_len..(i + 1) * img_len];
            if self.pad > 0 {
                // Random translation within ±pad, implemented as pad+crop:
                // offsets in [0, 2*pad] relative to the padded frame, i.e.
                // shifts in [-pad, +pad] of the original image.
                let dy = rng.random_range(0..=2 * self.pad) as isize - self.pad as isize;
                let dx = rng.random_range(0..=2 * self.pad) as isize - self.pad as isize;
                shift_image(img, &mut scratch, c, h, w, dy, dx);
            }
            if self.flip_prob > 0.0 && rng.random::<f64>() < self.flip_prob {
                flip_horizontal(img, c, h, w);
            }
        }
        Ok(())
    }
}

/// Shifts an image by (dy, dx), filling exposed pixels with zero.
fn shift_image(
    img: &mut [f32],
    scratch: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    dy: isize,
    dx: isize,
) {
    scratch.fill(0.0);
    for ch in 0..c {
        let plane = ch * h * w;
        for y in 0..h {
            let sy = y as isize + dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize + dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                scratch[plane + y * w + x] = img[plane + sy as usize * w + sx as usize];
            }
        }
    }
    img.copy_from_slice(scratch);
}

/// Mirrors an image left-to-right in place.
fn flip_horizontal(img: &mut [f32], c: usize, h: usize, w: usize) {
    for ch in 0..c {
        let plane = ch * h * w;
        for y in 0..h {
            let row = plane + y * w;
            img[row..row + w].reverse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn img_batch() -> Tensor {
        // one 1-channel 4x4 image: values 0..16
        Tensor::from_vec((0..16).map(|v| v as f32).collect(), [1, 1, 4, 4]).unwrap()
    }

    #[test]
    fn flip_reverses_rows() {
        let mut t = img_batch();
        let aug = Augment {
            pad: 0,
            flip_prob: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        aug.apply_batch(&mut t, &mut rng).unwrap();
        assert_eq!(&t.as_slice()[..4], &[3.0, 2.0, 1.0, 0.0]);
        // flipping twice restores the image
        aug.apply_batch(&mut t, &mut rng).unwrap();
        assert_eq!(&t.as_slice()[..4], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn shift_moves_pixels_and_zero_fills() {
        let mut img: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut scratch = vec![0.0; 16];
        shift_image(&mut img, &mut scratch, 1, 4, 4, 1, 0);
        // Row y now reads from source row y+1; last row becomes zero.
        assert_eq!(&img[0..4], &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(&img[12..16], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let mut img: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut scratch = vec![0.0; 16];
        shift_image(&mut img, &mut scratch, 1, 4, 4, 0, 0);
        assert_eq!(img, (0..16).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn augment_preserves_shape_and_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Tensor::rand_uniform(&mut rng, [8, 3, 8, 8], 0.0, 1.0);
        let aug = Augment::default();
        aug.apply_batch(&mut t, &mut rng).unwrap();
        assert_eq!(t.dims(), &[8, 3, 8, 8]);
        assert!(t.min().unwrap() >= 0.0);
        assert!(t.max().unwrap() <= 1.0);
    }

    #[test]
    fn rejects_non_image_batches() {
        let aug = Augment::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = Tensor::zeros([4, 4]);
        assert!(aug.apply_batch(&mut t, &mut rng).is_err());
    }
}

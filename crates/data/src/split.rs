//! Stratified train/test splitting and k-fold cross-validation.
//!
//! The paper's small-dataset protocol (Section V-C): 5 subsamples via
//! stratified sampling with an 80/20 train/test split, hyper-parameters
//! chosen by cross-validation on the training portion.

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use gmreg_tensor::shuffled_indices;
use rand::Rng;

/// A train/test pair produced by a split.
#[derive(Debug, Clone)]
pub struct Split {
    /// The training portion.
    pub train: Dataset,
    /// The held-out test portion.
    pub test: Dataset,
}

/// Groups sample indices by class, each group shuffled.
fn class_groups(ds: &Dataset, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ds.n_classes()];
    for (i, &l) in ds.y().iter().enumerate() {
        groups[l].push(i);
    }
    for g in groups.iter_mut() {
        let perm = shuffled_indices(rng, g.len());
        let shuffled: Vec<usize> = perm.into_iter().map(|p| g[p]).collect();
        *g = shuffled;
    }
    groups
}

/// Splits a dataset into train/test with per-class proportions preserved.
///
/// `test_fraction` must be in `(0, 1)`. Every class must have at least one
/// sample in each side; tiny classes are split so the test side gets at
/// least one sample when the class has two or more.
pub fn stratified_split(ds: &Dataset, test_fraction: f64, rng: &mut impl Rng) -> Result<Split> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(DataError::InvalidConfig {
            field: "test_fraction",
            reason: format!("must lie in (0, 1), got {test_fraction}"),
        });
    }
    if ds.len() < 2 {
        return Err(DataError::NotEnoughSamples {
            needed: 2,
            available: ds.len(),
        });
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for g in class_groups(ds, rng) {
        if g.is_empty() {
            continue;
        }
        let n_test = ((g.len() as f64 * test_fraction).round() as usize)
            .clamp(usize::from(g.len() > 1), g.len().saturating_sub(1));
        test_idx.extend_from_slice(&g[..n_test]);
        train_idx.extend_from_slice(&g[n_test..]);
    }
    // Shuffle the merged index lists so classes are interleaved.
    let perm = shuffled_indices(rng, train_idx.len());
    let train_idx: Vec<usize> = perm.into_iter().map(|p| train_idx[p]).collect();
    let perm = shuffled_indices(rng, test_idx.len());
    let test_idx: Vec<usize> = perm.into_iter().map(|p| test_idx[p]).collect();
    Ok(Split {
        train: ds.subset(&train_idx)?,
        test: ds.subset(&test_idx)?,
    })
}

/// Produces `n_subsamples` independent stratified 80/20 splits — the
/// paper's evaluation protocol for Table VII.
pub fn stratified_subsamples(
    ds: &Dataset,
    n_subsamples: usize,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> Result<Vec<Split>> {
    (0..n_subsamples)
        .map(|_| stratified_split(ds, test_fraction, rng))
        .collect()
}

/// Stratified k-fold cross-validation: yields `k` (train, validation)
/// pairs whose validation parts partition the dataset.
pub fn stratified_kfold(ds: &Dataset, k: usize, rng: &mut impl Rng) -> Result<Vec<Split>> {
    if k < 2 {
        return Err(DataError::InvalidConfig {
            field: "k",
            reason: format!("need at least 2 folds, got {k}"),
        });
    }
    if ds.len() < k {
        return Err(DataError::NotEnoughSamples {
            needed: k,
            available: ds.len(),
        });
    }
    // Deal each class's shuffled samples round-robin into folds.
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next = 0usize;
    for g in class_groups(ds, rng) {
        for i in g {
            folds[next % k].push(i);
            next += 1;
        }
    }
    let mut out = Vec::with_capacity(k);
    for test_fold in 0..k {
        let test_idx = &folds[test_fold];
        let mut train_idx = Vec::with_capacity(ds.len() - test_idx.len());
        for (fi, f) in folds.iter().enumerate() {
            if fi != test_fold {
                train_idx.extend_from_slice(f);
            }
        }
        out.push(Split {
            train: ds.subset(&train_idx)?,
            test: ds.subset(test_idx)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmreg_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ds(n: usize) -> Dataset {
        // 70% class 0, 30% class 1
        let y: Vec<usize> = (0..n).map(|i| usize::from(i % 10 >= 7)).collect();
        let x = Tensor::from_vec((0..n * 2).map(|v| v as f32).collect(), [n, 2]).unwrap();
        Dataset::new(x, y, 2).unwrap()
    }

    #[test]
    fn split_preserves_class_ratio() {
        let d = ds(100);
        let mut rng = StdRng::seed_from_u64(4);
        let s = stratified_split(&d, 0.2, &mut rng).unwrap();
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.train.class_counts(), vec![56, 24]);
        assert_eq!(s.test.class_counts(), vec![14, 6]);
    }

    #[test]
    fn split_partitions_samples() {
        let d = ds(50);
        let mut rng = StdRng::seed_from_u64(4);
        let s = stratified_split(&d, 0.2, &mut rng).unwrap();
        // Feature 0 of every sample is unique (2*i), so we can recover ids.
        let mut seen: Vec<f32> = s
            .train
            .x()
            .as_slice()
            .chunks(2)
            .chain(s.test.x().as_slice().chunks(2))
            .map(|c| c[0])
            .collect();
        seen.sort_by(f32::total_cmp);
        let want: Vec<f32> = (0..50).map(|i| (2 * i) as f32).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn invalid_fractions_rejected() {
        let d = ds(10);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(stratified_split(&d, 0.0, &mut rng).is_err());
        assert!(stratified_split(&d, 1.0, &mut rng).is_err());
        assert!(stratified_split(&ds(1), 0.2, &mut rng).is_err());
    }

    #[test]
    fn subsamples_differ() {
        let d = ds(60);
        let mut rng = StdRng::seed_from_u64(9);
        let subs = stratified_subsamples(&d, 5, 0.2, &mut rng).unwrap();
        assert_eq!(subs.len(), 5);
        // At least two of the test sets should differ.
        let sets: Vec<Vec<u32>> = subs
            .iter()
            .map(|s| {
                let mut v: Vec<u32> = s
                    .test
                    .x()
                    .as_slice()
                    .chunks(2)
                    .map(|c| c[0] as u32)
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();
        assert!(sets.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn kfold_partitions_validation_sets() {
        let d = ds(40);
        let mut rng = StdRng::seed_from_u64(3);
        let folds = stratified_kfold(&d, 5, &mut rng).unwrap();
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(|f| f.test.len()).sum();
        assert_eq!(total, 40);
        let mut ids: Vec<u32> = folds
            .iter()
            .flat_map(|f| {
                f.test
                    .x()
                    .as_slice()
                    .chunks(2)
                    .map(|c| c[0] as u32)
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "validation folds must partition the data");
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 40);
            // stratification: both classes present in every fold's train side
            assert!(f.train.class_counts().iter().all(|&c| c > 0));
        }
    }

    #[test]
    fn kfold_validates_inputs() {
        let d = ds(10);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(stratified_kfold(&d, 1, &mut rng).is_err());
        assert!(stratified_kfold(&d, 11, &mut rng).is_err());
    }

    #[test]
    fn tiny_class_keeps_one_test_sample() {
        // 18 samples of class 0, 2 of class 1
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 18)).collect();
        let x = Tensor::zeros([20, 1]);
        let d = Dataset::new(x, y, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = stratified_split(&d, 0.2, &mut rng).unwrap();
        assert_eq!(s.test.class_counts()[1], 1);
        assert_eq!(s.train.class_counts()[1], 1);
    }
}

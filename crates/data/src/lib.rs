//! # gmreg-data
//!
//! Datasets and preprocessing for the `gmreg` reproduction of the ICDE'18
//! adaptive-regularization paper:
//!
//! * [`Dataset`] — dense feature tensor + labels;
//! * [`RawDataset`]/[`Column`] — typed tabular data with missing values,
//!   and the paper's preprocessing pipeline (one-hot, imputation,
//!   standardization);
//! * [`stratified_split`] / [`stratified_kfold`] — the Table VII
//!   evaluation protocol;
//! * [`Batcher`] — shuffled mini-batch iteration;
//! * [`Augment`] — pad-crop-flip image augmentation (ResNet recipe);
//! * [`synthetic`] — deterministic generators standing in for CIFAR-10,
//!   Hosp-FA and the 11 UCI benchmarks (DESIGN.md §3);
//! * [`csv`] — schema-inferring CSV import/export for real tabular data;
//! * [`metrics`] — confusion matrices, precision/recall/F1 and ROC-AUC.

#![warn(missing_docs)]

mod augment;
mod batch;
pub mod csv;
mod dataset;
mod encode;
mod error;
pub mod metrics;
mod split;
pub mod synthetic;
mod tele;

pub use augment::Augment;
pub use batch::{Batch, Batcher};
pub use dataset::Dataset;
pub use encode::{Column, RawDataset};
pub use error::{DataError, Result};
pub use split::{stratified_kfold, stratified_split, stratified_subsamples, Split};

//! Classification metrics beyond plain accuracy: confusion matrices,
//! precision/recall/F1 and ROC-AUC — what a healthcare analytics pipeline
//! (the paper's GEMINI setting) actually reports for readmission models.

use crate::error::{DataError, Result};

/// A `C × C` confusion matrix; `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from aligned actual/predicted label slices.
    pub fn new(actual: &[usize], predicted: &[usize], n_classes: usize) -> Result<Self> {
        if actual.len() != predicted.len() {
            return Err(DataError::SampleCountMismatch {
                features: predicted.len(),
                labels: actual.len(),
            });
        }
        if n_classes == 0 {
            return Err(DataError::InvalidConfig {
                field: "n_classes",
                reason: "must be at least 1".into(),
            });
        }
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            if a >= n_classes || p >= n_classes {
                return Err(DataError::LabelOutOfRange {
                    label: a.max(p),
                    n_classes,
                });
            }
            counts[a][p] += 1;
        }
        Ok(ConfusionMatrix { counts })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of samples with the given actual and predicted classes.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Precision of class `c`: TP / (TP + FP). `None` when nothing was
    /// predicted as `c`.
    pub fn precision(&self, c: usize) -> Option<f64> {
        let tp = self.counts[c][c];
        let predicted: usize = (0..self.n_classes()).map(|a| self.counts[a][c]).sum();
        (predicted > 0).then(|| tp as f64 / predicted as f64)
    }

    /// Recall of class `c`: TP / (TP + FN). `None` when class `c` has no
    /// actual samples.
    pub fn recall(&self, c: usize) -> Option<f64> {
        let tp = self.counts[c][c];
        let actual: usize = self.counts[c].iter().sum();
        (actual > 0).then(|| tp as f64 / actual as f64)
    }

    /// F1 score of class `c` (harmonic mean of precision and recall).
    pub fn f1(&self, c: usize) -> Option<f64> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over classes that have at least one actual sample
    /// and one prediction.
    pub fn macro_f1(&self) -> f64 {
        let scores: Vec<f64> = (0..self.n_classes()).filter_map(|c| self.f1(c)).collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

/// Area under the ROC curve for binary classification from positive-class
/// scores, computed via the rank statistic (Mann–Whitney U) with proper
/// tie handling.
pub fn roc_auc(labels: &[usize], scores: &[f64]) -> Result<f64> {
    if labels.len() != scores.len() {
        return Err(DataError::SampleCountMismatch {
            features: scores.len(),
            labels: labels.len(),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l > 1) {
        return Err(DataError::LabelOutOfRange {
            label: bad,
            n_classes: 2,
        });
    }
    if scores.iter().any(|s| !s.is_finite()) {
        return Err(DataError::InvalidConfig {
            field: "scores",
            reason: "scores must be finite".into(),
        });
    }
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(DataError::InvalidConfig {
            field: "labels",
            reason: "need at least one sample of each class".into(),
        });
    }
    // Rank the scores (average ranks over ties), then
    // AUC = (R_pos − n_pos(n_pos+1)/2) / (n_pos · n_neg).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let r_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l == 1)
        .map(|(_, &r)| r)
        .sum();
    Ok((r_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_basics() {
        let actual = [0, 0, 1, 1, 1, 2];
        let predicted = [0, 1, 1, 1, 0, 2];
        let cm = ConfusionMatrix::new(&actual, &predicted, 3).expect("builds");
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        // class 1: TP=2, FP=1 (one actual-0 predicted 1), FN=1
        assert!((cm.precision(1).expect("has preds") - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1).expect("has actuals") - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1).expect("defined") - 2.0 / 3.0).abs() < 1e-12);
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn degenerate_classes_return_none() {
        let cm = ConfusionMatrix::new(&[0, 0], &[0, 0], 2).expect("builds");
        assert!(cm.precision(1).is_none(), "no predictions for class 1");
        assert!(cm.recall(1).is_none(), "no actuals for class 1");
        assert_eq!(cm.f1(0), Some(1.0));
    }

    #[test]
    fn validation() {
        assert!(ConfusionMatrix::new(&[0], &[0, 1], 2).is_err());
        assert!(ConfusionMatrix::new(&[2], &[0], 2).is_err());
        assert!(ConfusionMatrix::new(&[0], &[0], 0).is_err());
    }

    #[test]
    fn auc_perfect_and_random() {
        let labels = [0, 0, 1, 1];
        assert_eq!(roc_auc(&labels, &[0.1, 0.2, 0.8, 0.9]).expect("ok"), 1.0);
        assert_eq!(roc_auc(&labels, &[0.9, 0.8, 0.2, 0.1]).expect("ok"), 0.0);
        // all-equal scores = coin flip
        assert!((roc_auc(&labels, &[0.5; 4]).expect("ok") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_correctly() {
        // pos scores {0.5, 0.9}, neg scores {0.5, 0.1}:
        // pairs: (0.5 vs 0.5) = 0.5, (0.5 vs 0.1) = 1, (0.9 vs 0.5) = 1,
        // (0.9 vs 0.1) = 1 -> AUC = 3.5/4
        let auc = roc_auc(&[1, 0, 1, 0], &[0.5, 0.5, 0.9, 0.1]).expect("ok");
        assert!((auc - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_validation() {
        assert!(roc_auc(&[0, 1], &[0.5]).is_err());
        assert!(roc_auc(&[0, 2], &[0.5, 0.5]).is_err());
        assert!(roc_auc(&[0, 0], &[0.5, 0.5]).is_err());
        assert!(roc_auc(&[0, 1], &[f64::NAN, 0.5]).is_err());
    }

    #[test]
    fn auc_matches_brute_force_on_random_data() {
        use gmreg_tensor::SampleExt;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let labels: Vec<usize> = (0..60).map(|i| usize::from(i % 3 == 0)).collect();
        let scores: Vec<f64> = labels
            .iter()
            .map(|&l| rng.normal(l as f64 * 0.5, 1.0))
            .collect();
        let fast = roc_auc(&labels, &scores).expect("ok");
        // brute force over all (pos, neg) pairs
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                if labels[i] == 1 && labels[j] == 0 {
                    den += 1.0;
                    num += match scores[i].total_cmp(&scores[j]) {
                        std::cmp::Ordering::Greater => 1.0,
                        std::cmp::Ordering::Equal => 0.5,
                        std::cmp::Ordering::Less => 0.0,
                    };
                }
            }
        }
        assert!((fast - num / den).abs() < 1e-12);
    }
}

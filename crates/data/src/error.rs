//! Error type for dataset construction and preprocessing.

use std::fmt;

/// Errors raised while building or transforming datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Feature matrix and label vector disagree on the number of samples.
    SampleCountMismatch {
        /// Rows in the feature matrix.
        features: usize,
        /// Entries in the label vector.
        labels: usize,
    },
    /// A label value is outside `0..n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared class count.
        n_classes: usize,
    },
    /// A configuration field has an invalid value.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
    /// An operation needs more samples than the dataset has.
    NotEnoughSamples {
        /// Samples required.
        needed: usize,
        /// Samples available.
        available: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(gmreg_tensor::TensorError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SampleCountMismatch { features, labels } => write!(
                f,
                "feature matrix has {features} samples but label vector has {labels}"
            ),
            DataError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            DataError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            DataError::NotEnoughSamples { needed, available } => {
                write!(f, "need at least {needed} samples, have {available}")
            }
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gmreg_tensor::TensorError> for DataError {
    fn from(e: gmreg_tensor::TensorError) -> Self {
        DataError::Tensor(e)
    }
}

/// Convenience alias used across the data crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::SampleCountMismatch {
            features: 3,
            labels: 4,
        };
        assert!(e.to_string().contains('3'));
        let e = DataError::LabelOutOfRange {
            label: 5,
            n_classes: 2,
        };
        assert!(e.to_string().contains('5'));
        let e = DataError::InvalidConfig {
            field: "n",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains('n'));
        let e = DataError::NotEnoughSamples {
            needed: 10,
            available: 2,
        };
        assert!(e.to_string().contains("10"));
        let e: DataError = gmreg_tensor::TensorError::Empty { op: "x" }.into();
        assert!(e.to_string().contains("tensor"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}

//! CSV import/export for tabular datasets.
//!
//! Lets the pipeline run on *real* UCI files when the user has them,
//! complementing the synthetic substitutes. The parser is self-contained
//! (RFC-4180-style quoting, configurable missing-value markers) and infers
//! a schema: a column whose non-missing values all parse as numbers is
//! continuous; anything else is categorical with categories indexed by
//! first appearance.

use crate::encode::{Column, RawDataset};
use crate::error::{DataError, Result};
use std::collections::HashMap;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter.
    pub delimiter: char,
    /// Whether the first record is a header row (skipped).
    pub has_header: bool,
    /// Strings treated as missing values (after trimming).
    pub missing_markers: Vec<String>,
    /// Zero-based index of the label column.
    pub label_column: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            missing_markers: vec!["?".into(), "".into(), "NA".into(), "na".into()],
            label_column: 0,
        }
    }
}

/// Splits one CSV record, honoring double-quoted fields with `""` escapes.
fn split_record(line: &str, delim: char) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            if cur.is_empty() {
                in_quotes = true;
            } else {
                return Err(DataError::InvalidConfig {
                    field: "csv",
                    reason: format!("stray quote mid-field in record: {line:?}"),
                });
            }
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(DataError::InvalidConfig {
            field: "csv",
            reason: format!("unterminated quoted field in record: {line:?}"),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Parses CSV text into a [`RawDataset`] with inferred column types.
///
/// Labels are read from `options.label_column`; distinct label strings are
/// mapped to class indices by first appearance, with one round-trip
/// exception: when the distinct labels are exactly the dense integer set
/// `{0..k-1}` — the form [`to_csv`] emits — each label *is* its own class
/// id. Export → import therefore preserves class ids regardless of which
/// class happens to appear in the first record.
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<RawDataset> {
    let mut lines = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty());
    if options.has_header {
        lines.next();
    }
    let records: Vec<Vec<String>> = lines
        .map(|l| split_record(l, options.delimiter))
        .collect::<Result<_>>()?;
    let first = records.first().ok_or(DataError::NotEnoughSamples {
        needed: 1,
        available: 0,
    })?;
    let width = first.len();
    if options.label_column >= width {
        return Err(DataError::InvalidConfig {
            field: "label_column",
            reason: format!(
                "index {} out of range for {width} columns",
                options.label_column
            ),
        });
    }
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(DataError::InvalidConfig {
                field: "csv",
                reason: format!("record {i} has {} fields, expected {width}", r.len()),
            });
        }
    }

    // Labels. A dense-integer label set maps identically (round-trip
    // stability for `to_csv` output); anything else by first appearance.
    let raw_labels: Vec<&str> = records
        .iter()
        .map(|r| r[options.label_column].trim())
        .collect();
    let mut distinct: Vec<&str> = raw_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let dense_ints: Option<Vec<usize>> = distinct
        .iter()
        .map(|s| s.parse::<usize>().ok())
        .collect::<Option<Vec<usize>>>()
        .filter(|ids| {
            // Distinct strings must stay distinct as numbers ("0" vs "00")
            // and tile 0..k-1 exactly.
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len() == distinct.len() && sorted.iter().copied().eq(0..distinct.len())
        });
    let mut y = Vec::with_capacity(records.len());
    let n_classes = if dense_ints.is_some() {
        for raw in &raw_labels {
            y.push(raw.parse::<usize>().expect("checked dense-integer above"));
        }
        distinct.len().max(1)
    } else {
        let mut label_ids: HashMap<&str, usize> = HashMap::new();
        for raw in &raw_labels {
            let next = label_ids.len();
            y.push(*label_ids.entry(raw).or_insert(next));
        }
        label_ids.len().max(1)
    };

    let is_missing = |s: &str| -> bool { options.missing_markers.iter().any(|m| m == s.trim()) };

    // Feature columns, with type inference.
    let mut columns = Vec::with_capacity(width - 1);
    for ci in 0..width {
        if ci == options.label_column {
            continue;
        }
        let cells: Vec<&str> = records.iter().map(|r| r[ci].trim()).collect();
        let numeric = cells
            .iter()
            .filter(|c| !is_missing(c))
            .all(|c| c.parse::<f64>().is_ok());
        let any_present = cells.iter().any(|c| !is_missing(c));
        if numeric && any_present {
            let values = cells
                .iter()
                .map(|c| {
                    if is_missing(c) {
                        None
                    } else {
                        Some(c.parse::<f64>().expect("checked above"))
                    }
                })
                .collect();
            columns.push(Column::Continuous { values });
        } else {
            let mut ids: HashMap<String, u32> = HashMap::new();
            let values: Vec<Option<u32>> = cells
                .iter()
                .map(|c| {
                    if is_missing(c) {
                        None
                    } else {
                        let next = ids.len() as u32;
                        Some(*ids.entry((*c).to_string()).or_insert(next))
                    }
                })
                .collect();
            // A column with zero observed categories (all missing) still
            // needs arity >= 1 for the encoder.
            let arity = ids.len().max(1);
            columns.push(Column::Categorical { arity, values });
        }
    }
    RawDataset::new(columns, y, n_classes)
}

/// Renders a [`RawDataset`] back to CSV (features then label, `?` for
/// missing, categorical values as `c<INDEX>`).
pub fn to_csv(ds: &RawDataset) -> String {
    let mut out = String::new();
    // header
    for (i, col) in ds.columns().iter().enumerate() {
        let kind = match col {
            Column::Continuous { .. } => "num",
            Column::Categorical { .. } => "cat",
        };
        out.push_str(&format!("{kind}{i},"));
    }
    out.push_str("label\n");
    for row in 0..ds.len() {
        for col in ds.columns() {
            match col {
                Column::Continuous { values } => match values[row] {
                    Some(v) => out.push_str(&format!("{v},")),
                    None => out.push_str("?,"),
                },
                Column::Categorical { values, .. } => match values[row] {
                    Some(v) => out.push_str(&format!("c{v},")),
                    None => out.push_str("?,"),
                },
            }
        }
        out.push_str(&format!("{}\n", ds.y()[row]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
label,age,color,score
yes,34,red,0.5
no,?,blue,1.25
yes,51,red,?
no,28,\"green, dark\",2.0
";

    #[test]
    fn parses_types_and_missing() {
        let ds = parse_csv(SAMPLE, &CsvOptions::default()).expect("parses");
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.y(), &[0, 1, 0, 1]);
        let cols = ds.columns();
        assert_eq!(cols.len(), 3);
        match &cols[0] {
            Column::Continuous { values } => {
                assert_eq!(values[0], Some(34.0));
                assert_eq!(values[1], None);
            }
            _ => panic!("age should be continuous"),
        }
        match &cols[1] {
            Column::Categorical { arity, values } => {
                assert_eq!(*arity, 3); // red, blue, "green, dark"
                assert_eq!(values[0], Some(0));
                assert_eq!(values[1], Some(1));
                assert_eq!(values[3], Some(2));
            }
            _ => panic!("color should be categorical"),
        }
        // encodes end-to-end
        let enc = ds.encode().expect("encodes");
        assert_eq!(enc.len(), 4);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let fields = split_record(r#"a,"b,c","d""e",f"#, ',').expect("parses");
        assert_eq!(fields, vec!["a", "b,c", "d\"e", "f"]);
        assert!(split_record(r#"a,"unterminated"#, ',').is_err());
        assert!(split_record(r#"a,b"mid",c"#, ',').is_err());
    }

    #[test]
    fn record_width_is_enforced() {
        let bad = "label,x\nyes,1\nno,2,3\n";
        assert!(parse_csv(bad, &CsvOptions::default()).is_err());
    }

    #[test]
    fn label_column_selection() {
        let text = "x,label\n1,a\n2,b\n";
        let opts = CsvOptions {
            label_column: 1,
            ..CsvOptions::default()
        };
        let ds = parse_csv(text, &opts).expect("parses");
        assert_eq!(ds.y(), &[0, 1]);
        let bad = CsvOptions {
            label_column: 5,
            ..CsvOptions::default()
        };
        assert!(parse_csv(text, &bad).is_err());
    }

    #[test]
    fn dense_integer_labels_keep_their_ids() {
        // `to_csv` emits class ids as labels; re-importing must not remap
        // them by appearance order even when class 1 shows up first.
        let opts = CsvOptions {
            label_column: 1,
            ..CsvOptions::default()
        };
        let ds = parse_csv("x,label\n1.0,1\n2.0,0\n3.0,1\n", &opts).expect("parses");
        assert_eq!(ds.y(), &[1, 0, 1]);
        // Sparse numeric labels ({1, 2}) are not the dense set {0, 1}:
        // they fall back to first-appearance ids.
        let ds = parse_csv("x,label\n1.0,2\n2.0,1\n", &opts).expect("parses");
        assert_eq!(ds.y(), &[0, 1]);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(parse_csv("", &CsvOptions::default()).is_err());
        assert!(parse_csv("header,only\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn round_trip_through_to_csv() {
        let ds = parse_csv(SAMPLE, &CsvOptions::default()).expect("parses");
        let text = to_csv(&ds);
        // label column is last in the rendered form
        let opts = CsvOptions {
            label_column: 3,
            missing_markers: vec!["?".into()],
            ..CsvOptions::default()
        };
        let back = parse_csv(&text, &opts).expect("round trip");
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.y(), ds.y());
        assert_eq!(back.encoded_features(), ds.encoded_features());
    }

    #[test]
    fn semicolon_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = parse_csv("a;1\nb;2\n", &opts).expect("parses");
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.y(), &[0, 1]);
    }
}

//! Raw tabular data and the paper's preprocessing pipeline:
//! one-hot encoding of categorical features (missing values get their own
//! class), mean imputation plus zero-mean/unit-variance standardization of
//! continuous features (Section V-A).

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use gmreg_tensor::Tensor;

/// One raw feature column, before encoding. Missing values are `None`.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Categorical values in `0..arity`.
    Categorical {
        /// Number of distinct categories (excluding "missing").
        arity: usize,
        /// Per-sample values; `None` marks a missing observation.
        values: Vec<Option<u32>>,
    },
    /// Real-valued measurements.
    Continuous {
        /// Per-sample values; `None` marks a missing observation.
        values: Vec<Option<f64>>,
    },
}

impl Column {
    /// Number of samples in this column.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { values, .. } => values.len(),
            Column::Continuous { values } => values.len(),
        }
    }

    /// True when the column holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of encoded features this column expands to: `arity + 1` for
    /// categorical columns that contain missing values, `arity` otherwise,
    /// and 1 for continuous columns.
    pub fn encoded_width(&self) -> usize {
        match self {
            Column::Categorical { arity, values } => {
                arity + usize::from(values.iter().any(|v| v.is_none()))
            }
            Column::Continuous { .. } => 1,
        }
    }
}

/// A raw tabular dataset: typed columns plus binary/multiclass labels.
#[derive(Debug, Clone, PartialEq)]
pub struct RawDataset {
    columns: Vec<Column>,
    y: Vec<usize>,
    n_classes: usize,
}

impl RawDataset {
    /// Builds a raw dataset, validating that every column has one value per
    /// label and that categorical values are within their declared arity.
    pub fn new(columns: Vec<Column>, y: Vec<usize>, n_classes: usize) -> Result<Self> {
        for (ci, col) in columns.iter().enumerate() {
            if col.len() != y.len() {
                return Err(DataError::SampleCountMismatch {
                    features: col.len(),
                    labels: y.len(),
                });
            }
            if let Column::Categorical { arity, values } = col {
                if *arity == 0 {
                    return Err(DataError::InvalidConfig {
                        field: "arity",
                        reason: format!("column {ci} declares zero categories"),
                    });
                }
                if let Some(v) = values.iter().flatten().find(|&&v| v as usize >= *arity) {
                    return Err(DataError::InvalidConfig {
                        field: "values",
                        reason: format!("column {ci}: category {v} out of arity {arity}"),
                    });
                }
            }
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= n_classes) {
            return Err(DataError::LabelOutOfRange {
                label: bad,
                n_classes,
            });
        }
        Ok(RawDataset {
            columns,
            y,
            n_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// The raw columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The labels.
    pub fn y(&self) -> &[usize] {
        &self.y
    }

    /// Total encoded feature count (the "# Features" of Table II).
    pub fn encoded_features(&self) -> usize {
        self.columns.iter().map(Column::encoded_width).sum()
    }

    /// Runs the full preprocessing pipeline and returns a dense dataset:
    ///
    /// * categorical → one-hot; a missing value activates a dedicated
    ///   "missing" indicator column;
    /// * continuous → missing values imputed with the column mean, then the
    ///   column standardized to zero mean and unit variance.
    pub fn encode(&self) -> Result<Dataset> {
        let n = self.len();
        let m = self.encoded_features();
        let mut data = vec![0.0f32; n * m];
        let mut base = 0usize;

        for col in &self.columns {
            match col {
                Column::Categorical { arity, values } => {
                    let has_missing = values.iter().any(|v| v.is_none());
                    let width = arity + usize::from(has_missing);
                    for (i, v) in values.iter().enumerate() {
                        let slot = match v {
                            Some(c) => *c as usize,
                            None => *arity, // dedicated missing class
                        };
                        data[i * m + base + slot] = 1.0;
                    }
                    base += width;
                }
                Column::Continuous { values } => {
                    let present: Vec<f64> = values.iter().flatten().copied().collect();
                    let mean = if present.is_empty() {
                        0.0
                    } else {
                        present.iter().sum::<f64>() / present.len() as f64
                    };
                    let var = if present.len() > 1 {
                        present.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                            / present.len() as f64
                    } else {
                        0.0
                    };
                    let std = var.sqrt();
                    for (i, v) in values.iter().enumerate() {
                        let raw = v.unwrap_or(mean);
                        let z = if std > 1e-12 { (raw - mean) / std } else { 0.0 };
                        data[i * m + base] = z as f32;
                    }
                    base += 1;
                }
            }
        }
        debug_assert_eq!(base, m);
        let x = Tensor::from_vec(data, [n, m])?;
        Dataset::new(x, self.y.clone(), self.n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> RawDataset {
        RawDataset::new(
            vec![
                Column::Categorical {
                    arity: 3,
                    values: vec![Some(0), Some(2), None, Some(1)],
                },
                Column::Continuous {
                    values: vec![Some(1.0), Some(3.0), None, Some(5.0)],
                },
            ],
            vec![0, 1, 0, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn encoded_width_accounts_for_missing() {
        let r = raw();
        // categorical: 3 + missing indicator = 4; continuous: 1
        assert_eq!(r.encoded_features(), 5);
        assert_eq!(r.columns()[0].encoded_width(), 4);
        assert_eq!(r.columns()[1].encoded_width(), 1);
        assert!(!r.columns()[0].is_empty());
        let no_missing = Column::Categorical {
            arity: 3,
            values: vec![Some(0), Some(1)],
        };
        assert_eq!(no_missing.encoded_width(), 3);
    }

    #[test]
    fn one_hot_layout() {
        let d = raw().encode().unwrap();
        assert_eq!(d.x().dims(), &[4, 5]);
        // sample 0: category 0 -> [1,0,0,0]
        assert_eq!(&d.sample(0).unwrap()[..4], &[1.0, 0.0, 0.0, 0.0]);
        // sample 2: missing -> missing indicator
        assert_eq!(&d.sample(2).unwrap()[..4], &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn continuous_standardized_with_mean_imputation() {
        let d = raw().encode().unwrap();
        // present values {1, 3, 5}: mean 3, the missing entry imputes to 3
        // -> standardized column has mean 0, and the imputed entry is 0.
        let col: Vec<f32> = (0..4).map(|i| d.sample(i).unwrap()[4]).collect();
        let mean: f32 = col.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert_eq!(col[2], 0.0);
        assert!(col[0] < 0.0 && col[3] > 0.0);
    }

    #[test]
    fn constant_column_encodes_to_zero() {
        let r = RawDataset::new(
            vec![Column::Continuous {
                values: vec![Some(2.0), Some(2.0)],
            }],
            vec![0, 1],
            2,
        )
        .unwrap();
        let d = r.encode().unwrap();
        assert_eq!(d.sample(0).unwrap(), &[0.0]);
        assert_eq!(d.sample(1).unwrap(), &[0.0]);
    }

    #[test]
    fn validation_errors() {
        // value out of arity
        assert!(RawDataset::new(
            vec![Column::Categorical {
                arity: 2,
                values: vec![Some(2)],
            }],
            vec![0],
            2
        )
        .is_err());
        // zero arity
        assert!(RawDataset::new(
            vec![Column::Categorical {
                arity: 0,
                values: vec![None],
            }],
            vec![0],
            2
        )
        .is_err());
        // mismatched lengths
        assert!(RawDataset::new(
            vec![Column::Continuous {
                values: vec![Some(1.0)],
            }],
            vec![0, 1],
            2
        )
        .is_err());
        // label out of range
        assert!(RawDataset::new(
            vec![Column::Continuous {
                values: vec![Some(1.0)],
            }],
            vec![3],
            2
        )
        .is_err());
    }

    #[test]
    fn all_missing_continuous_column() {
        let r = RawDataset::new(
            vec![Column::Continuous {
                values: vec![None, None],
            }],
            vec![0, 1],
            2,
        )
        .unwrap();
        let d = r.encode().unwrap();
        assert_eq!(d.sample(0).unwrap(), &[0.0]);
    }
}

//! Ablation benches for the design choices DESIGN.md calls out: the
//! component count K (paper fixes 4), Gamma-prior smoothing on/off, and
//! the three initialization methods' E-step cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmreg_core::gm::{e_step, m_step, EmAccumulators, GmConfig, GmRegularizer, InitMethod};
use gmreg_core::{Regularizer, StepCtx};
use gmreg_tensor::SampleExt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn weights(m: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(21);
    (0..m)
        .map(|i| {
            let std = if i % 4 == 0 { 0.8 } else { 0.05 };
            rng.normal(0.0, std) as f32
        })
        .collect()
}

/// K ablation: full GM step cost scales linearly in the component count.
fn bench_k_ablation(c: &mut Criterion) {
    let m = 50_000;
    let w = weights(m);
    let mut grad = vec![0.0f32; m];
    let mut group = c.benchmark_group("gm_step_by_k");
    for k in [1usize, 2, 4, 8] {
        let mut reg = GmRegularizer::new(
            m,
            0.1,
            GmConfig {
                k,
                ..GmConfig::default()
            },
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let mut it = 0u64;
            b.iter(|| {
                grad.fill(0.0);
                reg.accumulate_grad(black_box(&w), &mut grad, StepCtx::new(it, 0));
                it += 1;
            })
        });
    }
    group.finish();
}

/// Gamma-smoothing ablation: the M-step with and without the prior's
/// pseudo-counts (a = 1, b -> 0 disables them). Cost is identical; the
/// bench documents that the smoothing is free — its value is numerical,
/// not performance (see gmreg-core's `gamma_prior_caps_lambda_blowup`).
fn bench_m_step_smoothing(c: &mut Criterion) {
    let m = 100_000;
    let w = weights(m);
    let gm = InitMethod::Linear.mixture(4, 10.0).expect("valid mixture");
    let acc: EmAccumulators = e_step(&gm, &w, None);
    let alpha = vec![(m as f64).sqrt(); 4];
    c.bench_function("m_step_with_gamma_prior", |b| {
        b.iter(|| black_box(m_step(black_box(&acc), 1.0 + 5.0, 500.0, &alpha)))
    });
    c.bench_function("m_step_without_gamma_prior", |b| {
        b.iter(|| black_box(m_step(black_box(&acc), 1.0, 1e-12, &alpha)))
    });
}

/// Init-method ablation: first-E-step cost under each initialization.
fn bench_init_methods(c: &mut Criterion) {
    let m = 89_440;
    let w = weights(m);
    let mut group = c.benchmark_group("e_step_by_init");
    for init in InitMethod::ALL {
        let gm = init.mixture(4, 10.0).expect("valid mixture");
        group.bench_with_input(BenchmarkId::from_parameter(init.name()), &init, |b, _| {
            b.iter(|| black_box(e_step(black_box(&gm), black_box(&w), None)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_k_ablation,
    bench_m_step_smoothing,
    bench_init_methods
);
criterion_main!(benches);

//! Micro-benchmarks of the tensor substrate: blocked matmul vs. the naive
//! reference, the implicit-transpose variants, and reductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmreg_tensor::{matmul_naive, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    // "serial" pins the single-band blocked kernel; "auto" goes through
    // the production dispatcher (row-banded parallel when the feature and
    // shape allow). 512 is the parallel layer's acceptance shape.
    for &n in &[32usize, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&mut rng, [n, n], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [n, n], 0.0, 1.0);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_serial(&b).expect("shapes match")))
        });
        group.bench_with_input(BenchmarkId::new("auto", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b).expect("shapes match")))
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
                bch.iter(|| black_box(matmul_naive(&a, &b).expect("shapes match")))
            });
        }
    }
    group.finish();
}

fn bench_transposed_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::randn(&mut rng, [128, 256], 0.0, 1.0);
    let b = Tensor::randn(&mut rng, [128, 64], 0.0, 1.0);
    c.bench_function("matmul_tn_128x256x64", |bch| {
        bch.iter(|| black_box(a.matmul_tn(&b).expect("shapes match")))
    });
    let bt = Tensor::randn(&mut rng, [64, 256], 0.0, 1.0);
    c.bench_function("matmul_nt_128x256x64", |bch| {
        bch.iter(|| black_box(a.matmul_nt(&bt).expect("shapes match")))
    });
}

fn bench_reductions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let t = Tensor::randn(&mut rng, [1024, 512], 0.0, 1.0);
    c.bench_function("sum_axis0_1024x512", |b| {
        b.iter(|| black_box(t.sum_axis0().expect("rank 2")))
    });
    c.bench_function("argmax_rows_1024x512", |b| {
        b.iter(|| black_box(t.argmax_rows().expect("rank 2")))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_transposed_variants,
    bench_reductions
);
criterion_main!(benches);

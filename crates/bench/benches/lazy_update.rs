//! The paper's own ablation as a Criterion bench: per-iteration cost of
//! Algorithm 2 at different update intervals on the two paper-sized
//! workloads (Figs. 5-7 in bench form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmreg_bench::scale::TimingParams;
use gmreg_bench::timing::{im_sweep, Workload};
use std::hint::black_box;

fn bench_im(c: &mut Criterion) {
    let params = TimingParams {
        curve_epochs: 2,
        convergence_epochs: 2,
        batches_per_epoch: 5,
        batch: 8,
    };
    let mut group = c.benchmark_group("lazy_epochs");
    group.sample_size(10);
    for w in [
        Workload {
            name: "alex_89440".into(),
            m: 89_440,
        },
        Workload {
            name: "resnet_270896".into(),
            m: 270_896,
        },
    ] {
        for im in [1u64, 50] {
            group.bench_with_input(BenchmarkId::new(w.name.clone(), im), &im, |b, &im| {
                b.iter(|| black_box(im_sweep(&w, &[im], params, 1)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_im);
criterion_main!(benches);

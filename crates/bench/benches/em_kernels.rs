//! Micro-benchmarks of the GM regularizer's hot kernels: the E-step sweep
//! (responsibilities + cached g_reg), the M-step, and the responsibility
//! function itself — the costs Algorithm 2's lazy schedule amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmreg_core::gm::{e_step, e_step_serial, m_step, GaussianMixture};
use gmreg_tensor::SampleExt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn weights(m: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..m)
        .map(|i| {
            let std = if i % 2 == 0 { 0.05 } else { 0.8 };
            rng.normal(0.0, std) as f32
        })
        .collect()
}

fn mixture(k: usize) -> GaussianMixture {
    let pi = vec![1.0 / k as f64; k];
    let lambda: Vec<f64> = (0..k).map(|i| 10.0 * 2f64.powi(i as i32)).collect();
    GaussianMixture::new(pi, lambda).expect("valid mixture")
}

fn bench_e_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_step");
    // The paper's two models' weight dimensionalities, a small case, and a
    // production-scale vector (the parallel layer's target shape). The
    // "serial" rows pin the single-thread kernel; "auto" goes through the
    // production dispatcher (parallel when the feature and shape allow).
    for &m in &[10_000usize, 89_440, 270_896, 1_000_000] {
        let w = weights(m);
        let gm = mixture(4);
        let mut greg = vec![0.0f32; m];
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("serial", m), &m, |b, _| {
            b.iter(|| {
                let acc = e_step_serial(black_box(&gm), black_box(&w), Some(&mut greg));
                black_box(acc);
            })
        });
        group.bench_with_input(BenchmarkId::new("auto", m), &m, |b, _| {
            b.iter(|| {
                let acc = e_step(black_box(&gm), black_box(&w), Some(&mut greg));
                black_box(acc);
            })
        });
    }
    group.finish();
}

fn bench_e_step_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_step_by_k");
    let m = 50_000;
    let w = weights(m);
    for &k in &[1usize, 2, 4, 8] {
        let gm = mixture(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(e_step(black_box(&gm), black_box(&w), None)))
        });
    }
    group.finish();
}

fn bench_m_step(c: &mut Criterion) {
    let gm = mixture(4);
    let w = weights(100_000);
    let acc = e_step(&gm, &w, None);
    let alpha = vec![(w.len() as f64).sqrt(); 4];
    c.bench_function("m_step_k4", |b| {
        b.iter(|| black_box(m_step(black_box(&acc), 1.5, 500.0, &alpha)))
    });
}

fn bench_responsibility(c: &mut Criterion) {
    let gm = mixture(4);
    let mut out = Vec::new();
    c.bench_function("responsibilities_single", |b| {
        b.iter(|| {
            gm.responsibilities(black_box(0.07), &mut out);
            black_box(&out);
        })
    });
    c.bench_function("reg_coefficient_single", |b| {
        b.iter(|| black_box(gm.reg_coefficient(black_box(0.07))))
    });
}

criterion_group!(
    benches,
    bench_e_step,
    bench_e_step_by_k,
    bench_m_step,
    bench_responsibility
);
criterion_main!(benches);

//! Micro-benchmarks of the nn substrate's layer forward/backward passes at
//! the sizes the paper's models use.

use criterion::{criterion_group, criterion_main, Criterion};
use gmreg_nn::{BatchNorm2d, Conv2d, Dense, Layer, Lrn, Pool2d, WeightInit};
use gmreg_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // conv2 of Alex-CIFAR-10 at 16x16: the stack's dominant cost.
    let mut conv =
        Conv2d::new("conv2", 32, 32, 5, 1, 2, WeightInit::He, &mut rng).expect("valid layer");
    let x = Tensor::randn(&mut rng, [8, 32, 16, 16], 0.0, 1.0);
    let y = conv.forward(&x, true).expect("forward");
    c.bench_function("conv2d_fwd_8x32x16x16", |b| {
        b.iter(|| black_box(conv.forward(&x, true).expect("forward")))
    });
    c.bench_function("conv2d_bwd_8x32x16x16", |b| {
        b.iter(|| black_box(conv.backward(&y).expect("backward")))
    });
}

fn bench_dense(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut dense = Dense::new("fc", 1024, 10, WeightInit::He, &mut rng).expect("valid layer");
    let x = Tensor::randn(&mut rng, [64, 1024], 0.0, 1.0);
    let y = dense.forward(&x, true).expect("forward");
    c.bench_function("dense_fwd_64x1024x10", |b| {
        b.iter(|| black_box(dense.forward(&x, true).expect("forward")))
    });
    c.bench_function("dense_bwd_64x1024x10", |b| {
        b.iter(|| black_box(dense.backward(&y).expect("backward")))
    });
}

fn bench_norm_layers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn(&mut rng, [8, 32, 16, 16], 0.0, 1.0);
    let mut bn = BatchNorm2d::new("bn", 32).expect("valid layer");
    c.bench_function("batchnorm_fwd_8x32x16x16", |b| {
        b.iter(|| black_box(bn.forward(&x, true).expect("forward")))
    });
    let mut lrn = Lrn::alexnet("lrn");
    c.bench_function("lrn_fwd_8x32x16x16", |b| {
        b.iter(|| black_box(lrn.forward(&x, true).expect("forward")))
    });
    let mut pool = Pool2d::max("mp", 3, 2).expect("valid layer");
    c.bench_function("maxpool_fwd_8x32x16x16", |b| {
        b.iter(|| black_box(pool.forward(&x, true).expect("forward")))
    });
}

criterion_group!(benches, bench_conv, bench_dense, bench_norm_layers);
criterion_main!(benches);

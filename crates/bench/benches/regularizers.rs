//! Per-step cost of every regularizer at the paper's weight
//! dimensionalities: the fixed-norm baselines vs. the GM regularizer in
//! eager and lazy modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmreg_core::gm::{GmConfig, GmRegularizer, LazySchedule};
use gmreg_core::{ElasticNetReg, HuberReg, L1Reg, L2Reg, Regularizer, StepCtx};
use gmreg_tensor::SampleExt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn weights(m: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..m).map(|_| rng.normal(0.0, 0.1) as f32).collect()
}

fn bench_baselines(c: &mut Criterion) {
    let m = 89_440;
    let w = weights(m);
    let mut grad = vec![0.0f32; m];
    let mut group = c.benchmark_group("baseline_step_89440");
    let mut regs: Vec<(&str, Box<dyn Regularizer>)> = vec![
        ("l1", Box::new(L1Reg::new(0.01).expect("valid"))),
        ("l2", Box::new(L2Reg::new(0.01).expect("valid"))),
        (
            "elastic_net",
            Box::new(ElasticNetReg::new(0.01, 0.5).expect("valid")),
        ),
        ("huber", Box::new(HuberReg::new(0.01, 0.1).expect("valid"))),
    ];
    for (name, reg) in regs.iter_mut() {
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            let mut it = 0u64;
            b.iter(|| {
                grad.fill(0.0);
                reg.accumulate_grad(black_box(&w), &mut grad, StepCtx::new(it, 0));
                it += 1;
                black_box(&grad);
            })
        });
    }
    group.finish();
}

fn bench_gm_modes(c: &mut Criterion) {
    let m = 89_440;
    let w = weights(m);
    let mut grad = vec![0.0f32; m];
    let mut group = c.benchmark_group("gm_step_89440");
    for (name, lazy) in [
        ("eager", LazySchedule::eager()),
        ("lazy_im50", LazySchedule::new(0, 50, 50).expect("valid")),
    ] {
        let mut reg = GmRegularizer::new(
            m,
            0.1,
            GmConfig {
                lazy,
                ..GmConfig::default()
            },
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let mut it = 1u64; // avoid it=0 always triggering the E-step
            b.iter(|| {
                grad.fill(0.0);
                reg.accumulate_grad(black_box(&w), &mut grad, StepCtx::new(it, 1));
                it += 1;
                black_box(&grad);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines, bench_gm_modes);
criterion_main!(benches);

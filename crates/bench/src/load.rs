//! Closed-loop load generator for the `gmreg-serve` daemon.
//!
//! [`run_load`] drives N client threads against a serving endpoint at a
//! target aggregate request rate for a fixed duration. Each request is one
//! `POST /predict` carrying deterministic pseudo-random rows (seeded, no
//! RNG dependency, so two runs against the same server are byte-identical
//! request streams). Per-request latency is recorded both into the
//! process-local telemetry registry (`load.request.ns` histogram) and as
//! raw samples from which exact p50/p95/p99 are computed for the report.
//!
//! [`write_bench_serve`] serializes the run as `BENCH_SERVE.json`, the
//! serving counterpart of `BENCH_PR1.json`, with `bench_diff`-friendly
//! metric names:
//!
//! ```json
//! {
//!   "config": {"threads": 2, "rate_rps": 200.0, "duration_secs": 5.0,
//!              "rows_per_request": 1, "dim": 8, "seed": 42},
//!   "serve": {"requests": 950, "errors": 0, "error_rate": 0.0,
//!             "throughput_rps": 189.7,
//!             "latency_ms": {"p50": 1.1, "p95": 2.0, "p99": 3.2},
//!             "p99_budget_ms": 250.0, "latency_headroom": 78.1}
//! }
//! ```
//!
//! `latency_headroom = p99_budget_ms / p99_ms` exists because `bench_diff`
//! floors (`--min`) assert *minimums*: CI pins "p99 under budget" as
//! `--min 'serve.latency_headroom=1'` instead of needing a maximum.

use serde::Serialize;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-run parameters (the `gmreg-load` binary's flags).
#[derive(Debug, Clone, Serialize)]
pub struct LoadConfig {
    /// Serving endpoint, e.g. `127.0.0.1:9900`.
    pub addr: String,
    /// Client threads.
    pub threads: usize,
    /// Target aggregate request rate across all threads, in requests/s.
    /// `0.0` means unpaced (each thread fires as fast as replies return).
    pub rate_rps: f64,
    /// Wall-clock run length in seconds.
    pub duration_secs: f64,
    /// Rows per `/predict` request body.
    pub rows_per_request: usize,
    /// Features per row; must match the served model.
    pub dim: usize,
    /// Seed for the deterministic request-stream generator.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:9900".to_string(),
            threads: 2,
            rate_rps: 200.0,
            duration_secs: 5.0,
            rows_per_request: 1,
            dim: 8,
            seed: 42,
        }
    }
}

/// Latency percentiles in milliseconds, exact over the raw samples.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Outcome of one load run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Requests answered `200 OK`.
    pub requests: u64,
    /// Requests that failed (connect error, non-200, short read).
    pub errors: u64,
    /// `errors / (requests + errors)` — the fraction of the attempted
    /// stream that failed, `1.0` when nothing was attempted. Gated by
    /// `gmreg-load --max-error-rate` and floorable via `bench_diff`.
    pub error_rate: f64,
    /// Achieved aggregate throughput over the run window.
    pub throughput_rps: f64,
    /// End-to-end request latency percentiles.
    pub latency_ms: LatencyMs,
    /// The p99 budget the run was gated against.
    pub p99_budget_ms: f64,
    /// `p99_budget_ms / latency_ms.p99` — at least 1.0 means "within
    /// budget"; gated in CI via `bench_diff --min`.
    pub latency_headroom: f64,
}

/// The on-disk `BENCH_SERVE.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchServe {
    /// Run parameters, for reproducibility.
    pub config: LoadConfig,
    /// Measured results.
    pub serve: LoadReport,
}

/// splitmix64: deterministic, dependency-free request-stream generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders one `/predict` body with `rows` rows of `dim` features drawn
/// deterministically from `seed` in roughly `[-2, 2)`.
pub fn predict_body(seed: u64, rows: usize, dim: usize) -> String {
    let mut state = seed;
    let mut out = String::with_capacity(16 + rows * dim * 8);
    out.push_str("{\"inputs\": [");
    for r in 0..rows {
        if r > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for c in 0..dim {
            if c > 0 {
                out.push_str(", ");
            }
            let v = (splitmix64(&mut state) % 4000) as f64 / 1000.0 - 2.0;
            out.push_str(&format!("{v}"));
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// One blocking `POST /predict`; returns the latency on 200, an error
/// description otherwise.
fn one_request(addr: &str, body: &str) -> Result<Duration, String> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(
            format!(
                "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    if response.starts_with("HTTP/1.1 200") {
        Ok(started.elapsed())
    } else {
        Err(format!(
            "status: {}",
            response.lines().next().unwrap_or("<empty>")
        ))
    }
}

/// Exact percentile (nearest-rank) over sorted samples, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// Drive the endpoint per `cfg` and summarize. `p99_budget_ms` only feeds
/// the report's headroom field; it does not stop the run.
pub fn run_load(cfg: &LoadConfig, p99_budget_ms: f64) -> LoadReport {
    let deadline = Instant::now() + Duration::from_secs_f64(cfg.duration_secs);
    // Aggregate pacing split evenly over threads; 0 disables pacing.
    let interval = if cfg.rate_rps > 0.0 {
        Some(Duration::from_secs_f64(cfg.threads as f64 / cfg.rate_rps))
    } else {
        None
    };

    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let addr = cfg.addr.clone();
        let (rows, dim) = (cfg.rows_per_request, cfg.dim);
        let thread_seed = cfg.seed.wrapping_add(0x5151 * (t as u64 + 1));
        handles.push(std::thread::spawn(move || {
            let mut latencies_ns: Vec<u64> = Vec::new();
            let mut errors = 0u64;
            let mut seq = 0u64;
            let mut next_fire = Instant::now();
            while Instant::now() < deadline {
                if let Some(interval) = interval {
                    let now = Instant::now();
                    if now < next_fire {
                        std::thread::sleep(next_fire - now);
                    }
                    next_fire += interval;
                }
                let body = predict_body(thread_seed.wrapping_add(seq), rows, dim);
                seq += 1;
                match one_request(&addr, &body) {
                    Ok(latency) => {
                        let ns = latency.as_nanos() as u64;
                        latencies_ns.push(ns);
                        #[cfg(feature = "telemetry")]
                        gmreg_telemetry::histogram_record("load.request.ns", ns as f64);
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies_ns, errors)
        }));
    }

    let mut all_ns: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for handle in handles {
        let (ns, e) = handle.join().expect("load client thread panicked");
        all_ns.extend(ns);
        errors += e;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    all_ns.sort_unstable();

    let latency_ms = LatencyMs {
        p50: percentile_ms(&all_ns, 0.50),
        p95: percentile_ms(&all_ns, 0.95),
        p99: percentile_ms(&all_ns, 0.99),
    };
    let attempted = all_ns.len() as u64 + errors;
    LoadReport {
        requests: all_ns.len() as u64,
        errors,
        error_rate: if attempted > 0 {
            errors as f64 / attempted as f64
        } else {
            1.0
        },
        throughput_rps: all_ns.len() as f64 / elapsed,
        latency_ms,
        p99_budget_ms,
        latency_headroom: if latency_ms.p99 > 0.0 {
            p99_budget_ms / latency_ms.p99
        } else {
            0.0
        },
    }
}

/// Write the report as pretty JSON to `path` (`BENCH_SERVE.json` by
/// convention, so `bench_diff` can gate it like `BENCH_PR1.json`).
pub fn write_bench_serve(doc: &BenchServe, path: &std::path::Path) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_body_is_deterministic_and_parseable_json() {
        let a = predict_body(7, 2, 3);
        let b = predict_body(7, 2, 3);
        assert_eq!(a, b);
        assert_ne!(a, predict_body(8, 2, 3));
        let doc = crate::diff::Json::parse(&a).unwrap();
        let flat = crate::diff::flatten(&doc);
        // 2 rows x 3 features of numeric leaves.
        assert_eq!(flat.len(), 6, "{flat:?}");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert_eq!(percentile_ms(&ns, 0.50), 50.0);
        assert_eq!(percentile_ms(&ns, 0.99), 99.0);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
        assert_eq!(percentile_ms(&[5_000_000], 0.50), 5.0);
    }

    #[test]
    fn bench_serve_json_flattens_with_gateable_paths() {
        let doc = BenchServe {
            config: LoadConfig::default(),
            serve: LoadReport {
                requests: 10,
                errors: 0,
                error_rate: 0.0,
                throughput_rps: 123.4,
                latency_ms: LatencyMs {
                    p50: 1.0,
                    p95: 2.0,
                    p99: 3.0,
                },
                p99_budget_ms: 250.0,
                latency_headroom: 250.0 / 3.0,
            },
        };
        let json = serde_json::to_string_pretty(&doc).unwrap();
        let flat = crate::diff::flatten(&crate::diff::Json::parse(&json).unwrap());
        assert_eq!(flat["serve.requests"], 10.0);
        assert_eq!(flat["serve.latency_ms.p99"], 3.0);
        assert!(flat["serve.latency_headroom"] > 1.0);
        // The paths CI floors on must stay gateable by substring match.
        assert!(flat.keys().any(|k| k.contains("serve.requests")));
        assert!(flat.keys().any(|k| k.contains("serve.latency_headroom")));
        // And percentile paths must diff as lower-is-better.
        assert_eq!(
            crate::diff::direction("serve.latency_ms.p99"),
            crate::diff::Direction::LowerIsBetter
        );
        assert_eq!(
            crate::diff::direction("serve.error_rate"),
            crate::diff::Direction::LowerIsBetter
        );
        assert_eq!(
            crate::diff::direction("serve.throughput_rps"),
            crate::diff::Direction::HigherIsBetter
        );
    }

    #[test]
    fn run_load_against_dead_endpoint_reports_errors_not_panics() {
        // Port 9 (discard) on localhost is almost certainly closed; every
        // request should fail fast and be counted, never panic.
        let cfg = LoadConfig {
            addr: "127.0.0.1:9".to_string(),
            threads: 2,
            rate_rps: 0.0,
            duration_secs: 0.2,
            ..LoadConfig::default()
        };
        let report = run_load(&cfg, 250.0);
        assert_eq!(report.requests, 0);
        assert!(report.errors > 0);
        assert_eq!(report.error_rate, 1.0, "every attempt failed");
        assert_eq!(report.latency_ms.p99, 0.0);
    }
}
